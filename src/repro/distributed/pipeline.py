"""The reusable per-query execution pipeline.

One :class:`QueryPipeline` owns the whole lifecycle of a single query —
plan (through the system's plan cache), verify, execute, and on
fault-aware runs the retry / failover / checkpoint machinery — exactly
the body that used to live inline in
:meth:`~repro.distributed.system.DistributedSystem.execute`.  Extracting
it buys two things:

* **Reuse.**  The asyncio service layer (:mod:`repro.service`) runs
  thousands of concurrent queries; each worker builds one pipeline per
  admitted request, optionally injecting a plan product another request
  already computed (single-flight coalescing, :meth:`QueryPipeline.use_plan`)
  without re-entering the planner.
* **Staging.**  Planning and execution are separately callable, so a
  caller can plan early (admission-time cost estimation, coalescing) and
  execute later — re-verifying against the *current* policy in between,
  which is what makes mid-stream policy churn safe
  (:meth:`QueryPipeline.run` always re-verifies before anything ships).

The pipeline holds no mutable system state: policy, planner, plan cache
and tables are read from the owning system at call time, so a policy
mutation between :meth:`plan` and :meth:`run` is *seen* (the run
re-verifies and, when the plan no longer holds, replans through the
cache's epoch probe rather than shipping a stale transfer).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from repro.algebra.tree import LeafNode, QueryTreePlan
from repro.core.assignment import Assignment
from repro.core.safety import verify_assignment
from repro.distributed.faults import FaultInjector
from repro.distributed.health import HealthTracker, ObserveOnlyHealth
from repro.engine.checkpoint import CheckpointJournal
from repro.engine.data import Table
from repro.engine.deadline import DeadlineBudget
from repro.engine.executor import DistributedExecutor, ExecutionResult
from repro.engine.resilience import RetryPolicy
from repro.exceptions import (
    ChaosInterrupt,
    DeadlineExceededError,
    DegradedExecutionError,
    InfeasiblePlanError,
    PlanError,
    ResilienceConfigError,
    TransferFailedError,
    UnsafeAssignmentError,
)


class QueryPipeline:
    """Plan → verify → execute for one query against one system.

    Args:
        system: the owning
            :class:`~repro.distributed.system.DistributedSystem`.
        query: SQL text or bound :class:`~repro.algebra.builder.QuerySpec`.
        recipient: optional final consumer of the result.
        search_join_orders / verify / faults / retry / max_failovers /
            deadline / health / checkpoint / resume_from / trace /
            profiler: exactly the keyword surface of
            :meth:`~repro.distributed.system.DistributedSystem.execute`,
            which now merely builds a pipeline and calls :meth:`run`.
            With a :class:`~repro.profiling.QueryProfiler` attached,
            every run opens a profile (estimates from exact table
            statistics unless the profiler carries its own
            ``base_stats``), records the executed operators and
            transfers, and stamps the finished
            :class:`~repro.profiling.QueryProfile` onto
            ``result.profile`` — emitting ``repro_profile_*`` metrics, a
            ``profile`` span and ``plan_misestimate`` events when a
            trace is also installed.

    Raises:
        ResilienceConfigError: resilience options given without a fault
            injector (budgets and breakers live in the injector's
            logical clock).
    """

    def __init__(
        self,
        system,
        query,
        recipient: Optional[str] = None,
        search_join_orders: bool = False,
        verify: bool = True,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        max_failovers: int = 3,
        deadline: Optional[Union[float, DeadlineBudget]] = None,
        health: Optional[HealthTracker] = None,
        checkpoint: bool = False,
        resume_from: Optional[CheckpointJournal] = None,
        trace=None,
        chaos=None,
        profiler=None,
    ) -> None:
        if faults is None and (
            deadline is not None
            or health is not None
            or checkpoint
            or resume_from is not None
        ):
            raise ResilienceConfigError(
                "deadline, health, checkpoint and resume_from require a fault "
                "injector: budgets and breakers are accounted in the "
                "injector's logical clock"
            )
        if deadline is not None and not isinstance(deadline, DeadlineBudget):
            deadline = DeadlineBudget(deadline)
        self._system = system
        self._query = query
        self._recipient = recipient
        self._search_join_orders = search_join_orders
        self._verify = verify
        self._faults = faults
        self._retry = retry if retry is not None else RetryPolicy()
        self._max_failovers = max_failovers
        self._deadline = deadline
        self._health = health
        self._checkpoint = checkpoint
        self._resume_from = resume_from
        self._trace = trace if trace is not None else system._trace
        self._chaos = chaos
        self._profiler = profiler
        self._profile_span = None
        self._product: Optional[Tuple[QueryTreePlan, Assignment, object]] = None
        self._coalesced = False

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    @property
    def planned(self) -> bool:
        """Whether a plan product is already attached."""
        return self._product is not None

    @property
    def coalesced(self) -> bool:
        """Whether the attached plan came from another request's fill."""
        return self._coalesced

    def plan(self) -> Tuple[QueryTreePlan, Assignment, object]:
        """The query's ``(tree, assignment, planner trace)``, computed
        through the system's plan cache on first call and memoized on
        the pipeline afterwards.

        Raises:
            InfeasiblePlanError: when no safe assignment exists.
        """
        if self._product is None:
            self._product = self._system.plan(
                self._query,
                search_join_orders=self._search_join_orders,
                trace=self._trace,
            )
        return self._product

    def use_plan(self, tree, assignment, planner_trace) -> None:
        """Attach a plan product computed by another pipeline.

        Single-flight coalescing: a follower request whose fingerprint
        matched an in-flight leader adopts the leader's product instead
        of planning.  :meth:`run` still re-verifies the assignment
        against the *current* policy before anything ships, so adopting
        a product can never relax safety — at worst a policy mutation
        since the leader planned forces this pipeline to replan.

        Raises:
            PlanError: when this pipeline already planned.
        """
        if self._product is not None:
            raise PlanError("pipeline already holds a plan product")
        self._product = (tree, assignment, planner_trace)
        self._coalesced = True

    def _current_plan(self) -> Tuple[QueryTreePlan, Assignment, object]:
        """The attached product, revalidated against the current policy.

        An adopted (coalesced) product may predate a policy mutation;
        the independent verifier decides, and on failure the pipeline
        replans through the system's plan cache — whose epoch probe has
        by then evicted the stale entry — instead of shipping a revoked
        transfer.
        """
        tree, assignment, planner_trace = self.plan()
        if self._coalesced:
            try:
                verify_assignment(
                    self._system.policy, assignment, recipient=self._recipient
                )
            except UnsafeAssignmentError:
                self._product = None
                self._coalesced = False
                tree, assignment, planner_trace = self.plan()
        return tree, assignment, planner_trace

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> ExecutionResult:
        """Execute end-to-end, audited (see
        :meth:`~repro.distributed.system.DistributedSystem.execute` for
        the full behavior and error contract)."""
        system = self._system
        trace = self._trace
        faults = self._faults
        if trace is not None and faults is not None:
            # The injector's deterministic clock timestamps the whole
            # run — unless the caller pinned an explicit clock already.
            trace.maybe_use_clock(lambda: faults.clock)
        if self._profiler is not None and faults is not None:
            # Same determinism for profiles: a pinned-clock run yields a
            # byte-stable profile artifact.
            self._profiler.maybe_use_clock(lambda: faults.clock)
        if trace is not None and self._deadline is not None:
            self._deadline.bind_trace(trace)
        if trace is not None and self._health is not None:
            self._health.bind_trace(trace)
        tree, assignment, _ = self._current_plan()
        if faults is None:
            if self._verify:
                verify_assignment(
                    system.policy, assignment, recipient=self._recipient
                )
            self._fire_chaos("pre", None)
            self._begin_profile(assignment)
            executor = DistributedExecutor(
                assignment,
                system.tables(),
                policy=system.policy,
                enforce=True,
                trace=trace,
                profiler=self._profiler,
            )
            result = executor.run(recipient=self._recipient)
            self._fire_chaos("post", None)
            return self._stamp(self._finish_profile(result))
        journal: Optional[CheckpointJournal] = None
        resume_from = self._resume_from
        if resume_from is not None:
            if trace is not None:
                resume_from.bind_trace(trace)
            # Re-audit before anything ships: a revoked authorization
            # refuses the journal outright (CheckpointError).
            resume_from.verify(system.policy, tree)
            journal = resume_from
        elif self._checkpoint or self._deadline is not None:
            journal = CheckpointJournal.for_plan(tree)
            if trace is not None:
                journal.bind_trace(trace)
        reuse: Dict[int, Table] = {}
        if self._health is not None or resume_from is not None:
            assignment = self._initial_assignment(
                tree, assignment, faults, self._health, resume_from
            )
            if resume_from is not None:
                materialized = set(assignment.materialized_nodes())
                reuse = {
                    entry.node_id: entry.table
                    for entry in resume_from
                    if entry.node_id in materialized
                }
        if self._verify:
            verify_assignment(system.policy, assignment, recipient=self._recipient)
        self._fire_chaos("pre", journal)
        self._begin_profile(assignment)
        result = self._execute_resilient(
            tree, assignment, journal=journal, reuse=reuse
        )
        # The "post" stage models the crash-consistency window: the run
        # completed but its completion was never recorded, so a recovery
        # must resume from the journal without double-shipping subtrees.
        self._fire_chaos("post", journal)
        return self._stamp(self._finish_profile(result))

    def _fire_chaos(self, stage: str, journal: Optional[CheckpointJournal]) -> None:
        if self._chaos is None:
            return
        try:
            self._chaos.fire("execute", stage=stage)
        except ChaosInterrupt as interrupt:
            interrupt.checkpoint = journal
            raise

    def _stamp(self, result: ExecutionResult) -> ExecutionResult:
        cache = self._system.plan_cache
        result.plan_cache = cache.snapshot() if cache is not None else None
        return result

    # ------------------------------------------------------------------
    # Profiling (no-ops without an attached profiler)
    # ------------------------------------------------------------------

    def _begin_profile(self, assignment: Assignment) -> None:
        profiler = self._profiler
        if profiler is None:
            return
        from repro.engine.coster import TableStats, estimate_assignment_detail

        base = profiler.base_stats
        if base is None:
            # Exact statistics of the live instances: the estimate then
            # isolates the coster's *model* error (System-R selectivity
            # assumptions), not stale-input error.
            base = {
                name: TableStats.of_table(table)
                for name, table in self._system.tables().items()
            }
        estimate = estimate_assignment_detail(
            assignment, base, selectivities=profiler.selectivities
        )
        query = self._query if isinstance(self._query, str) else str(self._query)
        profiler.start(query, estimate)
        trace = self._trace
        if trace is not None:
            self._profile_span = trace.begin(
                "profile",
                "profiler",
                estimated_bytes=estimate.total_bytes,
            )

    def _finish_profile(self, result: ExecutionResult) -> ExecutionResult:
        profiler = self._profiler
        if profiler is None:
            return result
        profile = profiler.finish()
        result.profile = profile
        trace = self._trace
        if trace is not None:
            span = self._profile_span
            if span is not None:
                span.attrs["actual_bytes"] = profile.actual_bytes
                span.attrs["canview_probes"] = profile.canview_probes
                span.attrs["misestimates"] = len(profile.misestimates)
                trace.end(span)
                self._profile_span = None
            trace.count("repro_profile_runs_total")
            trace.count("repro_profile_operators_total", len(profile.operators))
            trace.count("repro_profile_transfers_total", len(profile.transfers))
            for flag in profile.misestimates:
                trace.count("repro_plan_misestimate_total")
                trace.event(
                    "plan_misestimate",
                    "profiler",
                    node=f"n{flag['node_id']}",
                    link=f"{flag['sender']}->{flag['receiver']}",
                    kind=flag["kind"],
                    estimated_bytes=flag["estimated_bytes"],
                    actual_bytes=flag["actual_bytes"],
                    ratio=flag["ratio"],
                )
        return result

    # ------------------------------------------------------------------
    # Fault-aware machinery (moved verbatim from DistributedSystem)
    # ------------------------------------------------------------------

    def _initial_assignment(
        self,
        tree: QueryTreePlan,
        assignment: Assignment,
        faults: FaultInjector,
        health: Optional[HealthTracker],
        journal: Optional[CheckpointJournal],
    ) -> Assignment:
        """Health- and checkpoint-aware refinement of the default plan.

        Prefers assignments that route around quarantined (and already
        crashed) servers and that pin checkpointed subtrees for reuse,
        falling back toward the default assignment when the preferences
        over-constrain the search.  Purely advisory: the weakest rung is
        the default plan itself, so health state never makes a feasible
        query infeasible.
        """
        avoid = set(faults.down_servers())
        if health is not None:
            avoid |= set(health.quarantined_servers())
        pins = journal.pinned(excluded=avoid) if journal is not None else {}
        attempts = []
        if avoid and pins:
            attempts.append((avoid, pins))
        if pins:
            attempts.append((set(), pins))
        if avoid:
            attempts.append((avoid, {}))
        for excluded, pinned in attempts:
            try:
                planner = self._system._make_planner(
                    excluded_servers=tuple(sorted(excluded)),
                    pinned=pinned,
                    obs=self._trace,
                )
                candidate, _ = planner.plan(tree)
                return candidate
            except InfeasiblePlanError:
                continue
        return assignment

    @staticmethod
    def _forced_through_quarantine(
        assignment: Assignment, health: HealthTracker
    ) -> bool:
        """Whether the assignment routes over quarantined resources.

        True when a quarantined server executes part of the plan, or a
        quarantined directed link connects two involved servers — i.e.
        the breakers would refuse shipments this plan needs.
        """
        used = set(assignment.servers_used())
        if used & set(health.quarantined_servers()):
            return True
        return any(
            sender in used and receiver in used
            for sender, receiver in health.quarantined_links()
        )

    def _execute_resilient(
        self,
        tree: QueryTreePlan,
        assignment: Assignment,
        journal: Optional[CheckpointJournal] = None,
        reuse: Optional[Dict[int, Table]] = None,
    ) -> ExecutionResult:
        """Run with retry + authorization-safe failover.

        Each round executes the current assignment through the fault
        layer.  On a failed shipment the query is re-planned restricted
        to the surviving servers, pinning completed subtrees whose
        results sit at live servers (re-execution resumes from the last
        completed subtree); if pinning over-constrains the search the
        round falls back to a full restricted re-plan.  Safety is never
        relaxed: every re-planned assignment is independently verified
        and audited, and exhausting all rounds raises
        :class:`~repro.exceptions.DegradedExecutionError`.

        With ``health``, failover also avoids quarantined servers
        (advisory — see :meth:`_replan_restricted`); with ``deadline``,
        an exhausted budget propagates as
        :class:`~repro.exceptions.DeadlineExceededError` carrying
        ``journal`` for resume.
        """
        system = self._system
        trace = self._trace
        faults = self._faults
        health = self._health
        reuse = dict(reuse) if reuse else {}
        failovers = 0
        while True:
            gate = health
            if health is not None and self._forced_through_quarantine(
                assignment, health
            ):
                # No safe plan avoids the quarantined resources, so this
                # round runs them anyway; the breakers keep observing
                # but must not fail-fast the only viable route.
                gate = ObserveOnlyHealth(health)
            executor = DistributedExecutor(
                assignment,
                system.tables(),
                policy=system.policy,
                enforce=True,
                faults=faults,
                retry=self._retry,
                reuse=reuse,
                health=gate,
                deadline=self._deadline,
                checkpoint=journal,
                trace=trace,
                profiler=self._profiler,
            )
            round_span = None
            if trace is not None:
                round_span = trace.begin(
                    "execute_attempt", "engine", round=failovers,
                    reused_subtrees=len(reuse),
                )
            try:
                result = executor.run(recipient=self._recipient)
                if round_span is not None:
                    trace.end(round_span, delivered=True)
                result.failovers = failovers
                return result
            except DeadlineExceededError as error:
                if round_span is not None:
                    trace.end(
                        round_span, delivered=False, error="deadline-exceeded"
                    )
                # Hand the journal of completed, audited subtrees to the
                # caller: resume picks up from here with a fresh budget.
                error.checkpoint = journal
                raise
            except TransferFailedError as error:
                if round_span is not None:
                    trace.end(
                        round_span, delivered=False, error="transfer-failed"
                    )
                failovers += 1
                if trace is not None:
                    trace.count("repro_failovers_total")
                    trace.event(
                        "failover", "engine", round=failovers,
                        cause=str(error),
                        down_servers=sorted(faults.down_servers()),
                    )
                if failovers > self._max_failovers:
                    degraded = DegradedExecutionError(
                        f"execution failed after {self._max_failovers} failover "
                        f"rounds; last failure: {error}",
                        excluded_servers=faults.down_servers(),
                        failovers=failovers - 1,
                    )
                    degraded.checkpoint = journal
                    raise degraded from error
                excluded = set(faults.down_servers())
                quarantined = (
                    set(health.quarantined_servers()) if health is not None else set()
                )
                completed = executor.completed_subtrees()
                completed.update(
                    {
                        node_id: (assignment.materialized_server(node_id), table)
                        for node_id, table in reuse.items()
                    }
                )
                if journal is not None:
                    for entry in journal:
                        completed.setdefault(
                            entry.node_id, (entry.server, entry.table)
                        )
                pinned = {
                    node_id: server
                    for node_id, (server, _) in completed.items()
                    if not isinstance(tree.node(node_id), LeafNode)
                }
                try:
                    assignment, pinned = self._replan_restricted(
                        tree, excluded, quarantined, pinned, error
                    )
                except DegradedExecutionError as degraded:
                    degraded.checkpoint = journal
                    raise
                if self._verify:
                    verify_assignment(
                        system.policy, assignment, recipient=self._recipient
                    )
                reuse = {
                    node_id: completed[node_id][1]
                    for node_id in assignment.materialized_nodes()
                    if node_id in completed
                }

    def _replan_restricted(
        self,
        tree: QueryTreePlan,
        excluded: set,
        quarantined: set,
        pinned: Mapping[int, str],
        cause: TransferFailedError,
    ) -> Tuple[Assignment, Mapping[int, str]]:
        """Re-plan on surviving servers, preferring subtree reuse.

        The attempt ladder, most- to least-preferred:

        1. avoid crashed *and* quarantined servers, pin completed
           subtrees held by the remainder;
        2. same avoidance, no pins (reuse over-constrained the search);
        3. avoid only crashed servers, pin surviving subtrees;
        4. avoid only crashed servers, no pins.

        Quarantine is advisory — rungs 3 and 4 ignore it, so a breaker
        can never degrade a query that still has a safe plan on the
        actually-live servers.  Crashed servers are a hard exclusion on
        every rung; raises
        :class:`~repro.exceptions.DegradedExecutionError` when no rung
        admits a safe assignment.
        """
        hard = set(excluded)
        soft = set(quarantined) - hard
        attempts = []
        if soft:
            avoid = hard | soft
            pins_avoiding = {
                node_id: server
                for node_id, server in pinned.items()
                if server not in avoid
            }
            if pins_avoiding:
                attempts.append((avoid, pins_avoiding))
            attempts.append((avoid, {}))
        pins_surviving = {
            node_id: server
            for node_id, server in pinned.items()
            if server not in hard
        }
        if pins_surviving:
            attempts.append((hard, pins_surviving))
        attempts.append((hard, {}))
        last_error: Optional[InfeasiblePlanError] = None
        for excl, pins in attempts:
            try:
                planner = self._system._make_planner(
                    excluded_servers=tuple(sorted(excl)), pinned=pins,
                    obs=self._trace,
                )
                assignment, _ = planner.plan(tree)
                return assignment, pins
            except InfeasiblePlanError as error:
                last_error = error
        raise DegradedExecutionError(
            "no safe assignment survives the current faults "
            f"(excluded: {sorted(hard)}); last failure: {cause}",
            excluded_servers=hard,
        ) from last_error
