"""Shuffle planning: HyperCube single-round vs multi-round fallback.

Given a certified :class:`~repro.sharding.checker.ShardCertificate`,
:func:`plan_shuffle` describes how each relation's data reaches the
shard where it joins:

* ``hypercube`` mode is the degenerate (and optimal) HyperCube grid for
  co-partitioned inputs: every sharded relation is already **local** to
  the right shard — zero shuffle rounds — and every unsharded relation
  is **broadcast** to each shard, exactly one round of fan-out.
* ``multiround`` mode is the classic join-at-a-time fallback: before
  each join step whose incoming relation is sharded, the accumulated
  intermediate is **repartitioned** on the step's join key so matching
  rows meet; compatible hash schemes guarantee the repartition uses the
  same routing function the base shards do.

:func:`execute_multiround` actually runs the fallback at the engine
level, reusing the batch-first operator interface of
:mod:`repro.engine.operators` for the per-partition block streams: each
shard's join step is a :class:`~repro.engine.operators.HashJoinOperator`
pipeline over :class:`~repro.engine.operators.TableScan` streams, and
repartition/broadcast shipments are audited with the group-lifted
``CanView`` before any row moves — an unauthorized shuffle raises
:class:`~repro.exceptions.ShardingError` so the coordinator falls back
to single-copy execution instead of leaking.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.builder import QuerySpec
from repro.algebra.schema import Catalog
from repro.core.profile import RelationProfile
from repro.engine.data import Table
from repro.engine.operators import (
    DEFAULT_BATCH_SIZE,
    HashJoinOperator,
    TableScan,
    materialize,
)
from repro.exceptions import ShardingError
from repro.sharding.checker import MODE_HYPERCUBE, ShardCertificate
from repro.sharding.scheme import HashPartitionScheme, PartitionScheme, merge_shards

#: Shuffle actions.
ACTION_LOCAL = "local"
ACTION_BROADCAST = "broadcast"
ACTION_REPARTITION = "repartition"


class ShuffleStep:
    """How one relation's rows reach the shards that join them."""

    __slots__ = ("relation", "action", "shards")

    def __init__(self, relation: str, action: str, shards: int) -> None:
        self.relation = relation
        self.action = action
        self.shards = shards

    def __repr__(self) -> str:
        return f"ShuffleStep({self.relation} {self.action} x{self.shards})"


class ShufflePlan:
    """The shuffle schedule for one certified partitioned execution.

    Attributes:
        mode: the certificate mode the plan was built for.
        steps: one :class:`ShuffleStep` per relation, FROM order.
        rounds: shuffle rounds needed (0 for pure-local hypercube over
            sharded relations only, 1 when broadcasts are needed, one
            extra round per repartition in multiround mode).
    """

    __slots__ = ("mode", "steps", "rounds")

    def __init__(self, mode: str, steps: Sequence[ShuffleStep]) -> None:
        self.mode = mode
        self.steps = tuple(steps)
        repartitions = sum(1 for s in self.steps if s.action == ACTION_REPARTITION)
        broadcasts = sum(1 for s in self.steps if s.action == ACTION_BROADCAST)
        self.rounds = repartitions + (1 if broadcasts else 0)

    def describe(self) -> str:
        """One line per relation, FROM order."""
        return "; ".join(
            f"{s.relation}:{s.action}" for s in self.steps
        ) + f" ({self.mode}, {self.rounds} round{'s' if self.rounds != 1 else ''})"

    def __repr__(self) -> str:
        return f"ShufflePlan({self.describe()})"


def plan_shuffle(
    spec: QuerySpec,
    schemes: Mapping[str, PartitionScheme],
    certificate: ShardCertificate,
) -> ShufflePlan:
    """Build the shuffle schedule a certificate's mode supports."""
    shard_counts = [schemes[name].shards for name in certificate.sharded]
    shards = shard_counts[0] if shard_counts else 1
    steps: List[ShuffleStep] = []
    if certificate.mode == MODE_HYPERCUBE:
        for name in spec.relations:
            action = ACTION_LOCAL if name in schemes else ACTION_BROADCAST
            steps.append(ShuffleStep(name, action, shards))
        return ShufflePlan(MODE_HYPERCUBE, steps)
    for index, name in enumerate(spec.relations):
        if name not in schemes:
            steps.append(ShuffleStep(name, ACTION_BROADCAST, shards))
        elif index == 0:
            steps.append(ShuffleStep(name, ACTION_LOCAL, schemes[name].shards))
        else:
            steps.append(ShuffleStep(name, ACTION_REPARTITION, schemes[name].shards))
    return ShufflePlan(certificate.mode, steps)


class ShuffleStats:
    """Row/byte accounting for one multi-round execution."""

    __slots__ = ("rounds", "repartitions", "broadcasts", "shipped_rows", "shipped_bytes")

    def __init__(self) -> None:
        self.rounds = 0
        self.repartitions = 0
        self.broadcasts = 0
        self.shipped_rows = 0
        self.shipped_bytes = 0

    def summary_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "repartitions": self.repartitions,
            "broadcasts": self.broadcasts,
            "shipped_rows": self.shipped_rows,
            "shipped_bytes": self.shipped_bytes,
        }


def _require_group_view(policy, profile, servers, exempt, context: str) -> None:
    """Group-lifted CanView gate: every non-exempt server must view
    ``profile`` or the shuffle refuses to move a single row."""
    for server in servers:
        if server in exempt:
            continue
        if not policy.can_view(profile, server):
            raise ShardingError(
                f"{context}: server {server!r} is not authorized for the "
                "shipped view; refusing the shuffle"
            )


def _mapped_key(
    scheme: PartitionScheme, step, accumulated_attrs
) -> List[str]:
    """The accumulated-side attributes aligning with ``scheme``'s key
    through the join step's conditions (certified to exist)."""
    key: List[str] = []
    conditions = sorted(step, key=lambda c: (c.first, c.second))
    for attr in scheme.attributes:
        partner: Optional[str] = None
        for condition in conditions:
            if condition.first == attr and condition.second in accumulated_attrs:
                partner = condition.second
                break
            if condition.second == attr and condition.first in accumulated_attrs:
                partner = condition.first
                break
        if partner is None:
            raise ShardingError(
                f"partition key attribute {attr!r} of {scheme.relation!r} is "
                "not equated by its join step (certificate mismatch)"
            )
        key.append(partner)
    return key


def execute_multiround(
    tables: Mapping[str, Table],
    spec: QuerySpec,
    schemes: Mapping[str, PartitionScheme],
    policy,
    catalog: Catalog,
    trace=None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Tuple[Table, ShuffleStats]:
    """Run the multi-round fallback: repartition, then join per shard.

    Left-deep evaluation with the accumulated intermediate horizontally
    partitioned throughout: a sharded incoming relation triggers a
    repartition of the intermediate onto the incoming scheme's grid, an
    unsharded one is broadcast.  Joins run per shard as batch-operator
    pipelines; selection and projection apply once at the end (algebraic
    equivalence to the pushed-down plan, since select/project distribute
    over union).

    Every shipment is audited with the group-lifted CanView *before* it
    happens — an unauthorized shuffle raises
    :class:`~repro.exceptions.ShardingError` with nothing moved.

    Returns:
        ``(result_table, stats)``.
    """
    relations = spec.relations
    first = relations[0]
    stats = ShuffleStats()
    first_schema = catalog.relation(first)
    acc_profile = RelationProfile.of_base_relation(first_schema)
    if first in schemes:
        scheme = schemes[first]
        fragments = scheme.split(tables[first])
        hosts = [scheme.placement(i) for i in range(scheme.shards)]
    else:
        fragments = [tables[first]]
        hosts = [first_schema.server]

    for step, incoming in zip(spec.join_paths, relations[1:]):
        schema = catalog.relation(incoming)
        incoming_profile = RelationProfile.of_base_relation(schema)
        if incoming in schemes:
            scheme = schemes[incoming]
            # Audit first: the repartitioned intermediate lands on every
            # group member, so the whole group must be able to view it.
            _require_group_view(
                policy,
                acc_profile,
                scheme.group.servers,
                exempt=(),
                context=f"repartition before joining {incoming!r}",
            )
            key = _mapped_key(scheme, step, acc_profile.attributes)
            router = HashPartitionScheme(
                "__intermediate__",
                key,
                scheme.shards,
                scheme.group,
                function=getattr(scheme, "function", "crc32"),
            )
            new_hosts = [scheme.placement(i) for i in range(scheme.shards)]
            routed: List[Optional[Table]] = [None] * scheme.shards
            for source_index, fragment in enumerate(fragments):
                source = hosts[source_index % len(hosts)]
                for target_index, piece in enumerate(router.split(fragment)):
                    if len(piece) and new_hosts[target_index] != source:
                        stats.shipped_rows += len(piece)
                        stats.shipped_bytes += piece.byte_size()
                    current = routed[target_index]
                    routed[target_index] = (
                        piece if current is None else current.union(piece)
                    )
            fragments = [
                piece if piece is not None else Table(fragments[0].attributes, ())
                for piece in routed
            ]
            hosts = new_hosts
            right_shards = scheme.split(tables[incoming])
            stats.repartitions += 1
            stats.rounds += 1
            if trace is not None:
                trace.count("repro_shard_repartition_total")
                trace.event(
                    "shard_repartition",
                    "sharding",
                    relation=incoming,
                    shards=scheme.shards,
                    key=",".join(key),
                )
        else:
            # Broadcast: the full relation reaches every current host.
            _require_group_view(
                policy,
                incoming_profile,
                set(hosts),
                exempt={schema.server},
                context=f"broadcast of {incoming!r}",
            )
            right_shards = [tables[incoming]] * len(fragments)
            copies = sum(1 for h in set(hosts) if h != schema.server)
            if copies:
                stats.broadcasts += 1
                stats.shipped_rows += copies * len(tables[incoming])
                stats.shipped_bytes += copies * tables[incoming].byte_size()
            if trace is not None:
                trace.count("repro_shard_broadcast_total")
        joined: List[Table] = []
        for left, right in zip(fragments, right_shards):
            operator = HashJoinOperator(
                TableScan(left, batch_size=batch_size),
                TableScan(right, batch_size=batch_size),
                step,
            )
            joined.append(materialize(operator))
        fragments = joined
        acc_profile = acc_profile.join(incoming_profile, step)

    merged = merge_shards(fragments)
    if merged is None:  # pragma: no cover - spec guarantees >= 1 relation
        raise ShardingError("multi-round execution produced no fragments")
    if stats.broadcasts and stats.rounds == 0:
        stats.rounds = 1
    return merged.select(spec.where).project(spec.select), stats
