"""The parallel-correctness checker: certify before you fan out.

*Parallel-Correctness and Transferability for Conjunctive Queries*
(Ameloot et al.) gives the condition this module enforces: a one-round
distributed evaluation of a join equals the single-copy evaluation iff
every potentially-joining pair of tuples *meets* at some server.  For
hash/range co-partitioning that reduces to a decidable structural
check — equal join keys must route to equal shard indexes — plus, in
this repository's model, an authorization condition: hosting a shard is
an information release, so no placement may expose a view some group
member is not already authorized for.

:class:`ParallelCorrectnessChecker` certifies a candidate distribution
policy (a ``relation -> PartitionScheme`` mapping) for one bound query
and returns a :class:`ShardCertificate` naming the execution mode the
proof supports:

* ``hypercube`` — every directly-joined pair of sharded relations is
  co-partitioned (same hash family, shard count, and a key bijection
  through the join conditions) and the alignment graph is connected:
  tuples that join already meet, so one single-round, shuffle-free
  partition-parallel execution is correct (unsharded relations are
  broadcast, the degenerate HyperCube grid).
* ``multiround`` — the schemes are mutually *compatible* (one hash
  family, one shard count) but not pre-aligned; each join step's
  partition key is covered by that step's conditions, so a per-step
  repartition (the multi-round fallback of
  :mod:`repro.sharding.shuffle`) restores the meeting property.
* rejected — anything the checker cannot prove: a join key split
  across incompatible hash functions or mismatched range boundaries, a
  partition key a join never equates, or a shard placement that would
  widen visibility.  Rejected schemes **never execute partitioned**;
  the coordinator falls back to single-copy execution.

The authorization side rides on the existing chase machinery: the
checker certifies against the :func:`~repro.core.closure.close_policy`
fixpoint (Section 3.2's join derivation), evaluating the group-lifted
``CanView`` of :class:`~repro.sharding.scheme.PartitionGroup` on every
sharded relation's base profile.  Verdicts are a pure function of the
rule set, the catalog and the schemes — epoch bumps that do not change
the rules cannot change a verdict (a property the suite asserts).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.builder import QuerySpec
from repro.algebra.schema import Catalog
from repro.core.closure import close_policy
from repro.core.profile import RelationProfile
from repro.exceptions import PartitionSchemeError
from repro.sharding.scheme import PartitionScheme

#: Certificate modes.
MODE_HYPERCUBE = "hypercube"
MODE_MULTIROUND = "multiround"
MODE_TRIVIAL = "trivial"  # no sharded relation in the query
MODE_REJECTED = "rejected"


class ShardCertificate:
    """The checker's verdict for one (query, schemes) pair.

    Attributes:
        certified: whether a partitioned execution is provably
            equivalent to single-copy *and* authorization-safe.
        mode: ``hypercube`` / ``multiround`` when certified,
            ``trivial`` when the query touches no sharded relation,
            ``rejected`` otherwise.
        reason: why certification failed (empty when certified).
        sharded: the sharded relations the query touches, in FROM order.
        details: human-readable proof notes, deterministic order.
        policy_epoch: the policy epoch the verdict was computed under
            (recorded for observability; the verdict itself depends only
            on the rules).
    """

    __slots__ = ("certified", "mode", "reason", "sharded", "details", "policy_epoch")

    def __init__(
        self,
        certified: bool,
        mode: str,
        reason: str = "",
        sharded: Sequence[str] = (),
        details: Sequence[str] = (),
        policy_epoch: int = 0,
    ) -> None:
        self.certified = certified
        self.mode = mode
        self.reason = reason
        self.sharded = tuple(sharded)
        self.details = tuple(details)
        self.policy_epoch = policy_epoch

    def __bool__(self) -> bool:
        return self.certified

    def summary_dict(self) -> dict:
        """Flat JSON-safe rendering (always the same keys)."""
        return {
            "certified": self.certified,
            "mode": self.mode,
            "reason": self.reason,
            "sharded": list(self.sharded),
            "policy_epoch": self.policy_epoch,
        }

    def __repr__(self) -> str:
        verdict = self.mode if self.certified else f"rejected: {self.reason}"
        return f"ShardCertificate({verdict}, sharded={list(self.sharded)})"


class ParallelCorrectnessChecker:
    """Certify distribution policies for one catalog + policy.

    Args:
        policy: the authorization policy.  Pass the system's already
            chase-closed policy with ``assume_closed=True`` (the normal
            path inside :class:`~repro.distributed.system.DistributedSystem`);
            an explicit policy is closed here first, reusing
            :func:`~repro.core.closure.close_policy`.
        catalog: the schema catalog (supplies join edges and placements).
        assume_closed: skip the closure step.
        trace: optional :class:`~repro.obs.trace.TraceContext`; each
            certification runs in a ``certify`` span and bumps
            ``repro_shard_certify_total{verdict=...}``.
    """

    def __init__(
        self,
        policy,
        catalog: Catalog,
        assume_closed: bool = False,
        trace=None,
    ) -> None:
        self._catalog = catalog
        self._trace = trace
        self._policy = (
            policy if assume_closed else close_policy(policy, catalog, obs=trace)
        )

    @property
    def policy(self):
        """The chase-closed policy verdicts are computed against."""
        return self._policy

    def certify(
        self, spec: QuerySpec, schemes: Mapping[str, PartitionScheme]
    ) -> ShardCertificate:
        """Certify ``schemes`` for ``spec`` (see the module docstring).

        Schemes for relations the query does not touch are ignored.
        Malformed schemes (unknown relation/attributes) reject rather
        than raise — an uncertifiable distribution policy is a verdict,
        not a caller error.
        """
        trace = self._trace
        if trace is None:
            return self._certify(spec, schemes)
        with trace.span("certify", "sharding") as span:
            certificate = self._certify(spec, schemes)
            span.attrs["mode"] = certificate.mode
            span.attrs["certified"] = certificate.certified
            verdict = "certified" if certificate.certified else "rejected"
            trace.count("repro_shard_certify_total", verdict=verdict)
            trace.event(
                "shard_certified" if certificate.certified else "shard_rejected",
                "sharding",
                mode=certificate.mode,
                reason=certificate.reason,
                sharded=",".join(certificate.sharded),
            )
        return certificate

    # ------------------------------------------------------------------
    # The proof obligations
    # ------------------------------------------------------------------

    def _certify(
        self, spec: QuerySpec, schemes: Mapping[str, PartitionScheme]
    ) -> ShardCertificate:
        catalog = self._catalog
        epoch = getattr(self._policy, "epoch", 0)
        sharded = [name for name in spec.relations if name in schemes]
        if not sharded:
            return ShardCertificate(
                True, MODE_TRIVIAL, sharded=(), policy_epoch=epoch
            )

        def rejected(reason: str, details: Sequence[str] = ()) -> ShardCertificate:
            return ShardCertificate(
                False,
                MODE_REJECTED,
                reason=reason,
                sharded=sharded,
                details=details,
                policy_epoch=epoch,
            )

        # -- gate 0: schemes must be well-formed against the catalog ----
        for name in sharded:
            try:
                schemes[name].validate_against(catalog)
            except PartitionSchemeError as error:
                return rejected(f"invalid scheme for {name!r}: {error}")

        details: List[str] = []
        attrs_of = {
            name: frozenset(catalog.relation(name).attributes)
            for name in spec.relations
        }
        conditions = sorted(
            spec.full_join_path(), key=lambda c: (c.first, c.second)
        )

        # -- gate 1: pairwise structural compatibility ------------------
        # Every directly-joined pair of sharded relations must share a
        # compatibility signature (hash family + shard count + key
        # arity, or identical range boundaries): a join key split across
        # incompatible routing functions sends equal keys to different
        # shards, which no later shuffle of these schemes can repair.
        aligned_pairs = set()
        joined_pairs = set()
        for i, left in enumerate(sharded):
            for right in sharded[i + 1 :]:
                mapping: Dict[str, set] = {}
                for condition in conditions:
                    a, b = condition.first, condition.second
                    if a in attrs_of[left] and b in attrs_of[right]:
                        mapping.setdefault(a, set()).add(b)
                    elif b in attrs_of[left] and a in attrs_of[right]:
                        mapping.setdefault(b, set()).add(a)
                if not mapping:
                    continue
                joined_pairs.add((left, right))
                left_scheme, right_scheme = schemes[left], schemes[right]
                if (
                    left_scheme.compatibility_signature()
                    != right_scheme.compatibility_signature()
                ):
                    return rejected(
                        f"join between {left!r} and {right!r} splits its key "
                        f"across incompatible schemes "
                        f"({left_scheme.describe()} vs {right_scheme.describe()})",
                        details,
                    )
                pairwise = zip(left_scheme.attributes, right_scheme.attributes)
                if all(b in mapping.get(a, ()) for a, b in pairwise):
                    aligned_pairs.add((left, right))
                    details.append(
                        f"{left}~{right}: co-partitioned on "
                        f"{list(left_scheme.attributes)}"
                    )

        # -- gate 2: authorization (group-lifted, chase-closed) ---------
        # Hosting a shard of R at a group member is a release of R's
        # base projection to that member; the chase-closed policy must
        # already grant it (the home server stores the single copy and
        # is exempt).  This is the "no placement widens visibility"
        # obligation, checked with the group-conjunction CanView.
        for name in sharded:
            schema = catalog.relation(name)
            profile = RelationProfile.of_base_relation(schema)
            for server in schemes[name].group.servers:
                if server == schema.server:
                    continue
                if not self._policy.can_view(profile, server):
                    return rejected(
                        f"placing a shard of {name!r} at {server!r} would widen "
                        f"visibility: the closed policy does not grant "
                        f"{server!r} the base view of {name!r}",
                        details,
                    )
            details.append(
                f"{name}: group {schemes[name].group.name} holds the base view"
            )

        # -- gate 3: pick the mode the structure supports ---------------
        if len(sharded) == 1 or (
            joined_pairs == aligned_pairs and self._connected(sharded, aligned_pairs)
        ):
            return ShardCertificate(
                True,
                MODE_HYPERCUBE,
                sharded=sharded,
                details=details,
                policy_epoch=epoch,
            )

        # Not pre-aligned: a per-step repartition can still restore the
        # meeting property, but only when one routing family governs
        # every scheme and each step's partition key is equated by that
        # step's join conditions.
        signatures = {schemes[name].compatibility_signature() for name in sharded}
        kinds = {schemes[name].kind for name in sharded}
        if kinds != {"hash"} or len({s[1:3] for s in signatures}) != 1:
            return rejected(
                "schemes are neither co-partitioned nor repartitionable "
                "under one hash family",
                details,
            )
        accumulated = set(attrs_of[spec.relations[0]])
        for step, incoming in zip(spec.join_paths, spec.relations[1:]):
            if incoming in schemes:
                scheme = schemes[incoming]
                step_conditions = list(step)
                for attr in scheme.attributes:
                    covered = any(
                        (c.first == attr and c.second in accumulated)
                        or (c.second == attr and c.first in accumulated)
                        for c in step_conditions
                    )
                    if not covered:
                        return rejected(
                            f"partition key attribute {attr!r} of {incoming!r} "
                            "is not equated by its join step; repartitioning "
                            "cannot align the shards",
                            details,
                        )
            accumulated |= attrs_of[incoming]
        details.append("repartition per join step restores the meeting property")
        return ShardCertificate(
            True,
            MODE_MULTIROUND,
            sharded=sharded,
            details=details,
            policy_epoch=epoch,
        )

    @staticmethod
    def _connected(
        sharded: Sequence[str], aligned_pairs: set
    ) -> bool:
        """Whether the aligned pairs connect every sharded relation.

        A sharded relation aligned with nothing would shard-join the
        rest as a cross product of fragments, losing cross-shard pairs.
        """
        if len(sharded) <= 1:
            return True
        parent: Dict[str, str] = {name: name for name in sharded}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for left, right in aligned_pairs:
            parent[find(left)] = find(right)
        roots = {find(name) for name in sharded}
        return len(roots) == 1


def certify_schemes(
    spec: QuerySpec,
    schemes: Mapping[str, PartitionScheme],
    policy,
    catalog: Catalog,
    assume_closed: bool = False,
    trace=None,
) -> ShardCertificate:
    """One-shot convenience wrapper over
    :class:`ParallelCorrectnessChecker`."""
    checker = ParallelCorrectnessChecker(
        policy, catalog, assume_closed=assume_closed, trace=trace
    )
    return checker.certify(spec, schemes)
