"""Partition-aware cost estimation for sharded execution.

Sizing a partitioned plan is a small extension of the single-copy
estimator: under a certified scheme each shard sees ``rows / shards`` of
every sharded relation (hash and range routing both aim for balance),
plus a full copy of every broadcast relation, so the *makespan* driver
is the per-shard working set rather than the total.  The estimates here
are deliberately coarse — their job is mode selection (partitioned vs
single-copy), not plan ranking, which stays with
:class:`~repro.core.costplanner.CostAwareSafePlanner`.

Row counts come from the PR 9 runtime-statistics feedback loop when
available: pass anything with ``relation_rows(name)`` (in practice a
:class:`~repro.profiling.StatsStore`) and harvested observations replace
the static fallbacks, so a store warmed by profiles immediately re-ranks
the partitioned-vs-single decision the same way it re-ranks join orders.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.algebra.builder import QuerySpec
from repro.sharding.checker import MODE_HYPERCUBE, MODE_MULTIROUND, ShardCertificate
from repro.sharding.scheme import PartitionScheme

#: Assumed rows for a relation with no observed or provided statistics.
DEFAULT_ROWS = 1000.0

#: A partitioned run must beat single-copy by at least this factor of
#: estimated per-shard work before :func:`choose_execution_mode`
#: recommends it — below the threshold the shuffle and coordination
#: overhead eats the win.
MIN_SPEEDUP = 1.2


class ShardCostEstimate:
    """Coarse cost picture of one certified partitioned execution.

    Attributes:
        mode: the certificate mode the estimate was built for.
        shards: the shard count of the partitioned grid.
        total_rows: estimated input rows across all relations.
        per_shard_rows: estimated input rows the busiest shard scans
            (sharded relations contribute ``rows / shards``, broadcast
            relations contribute their full size).
        shuffle_rows: estimated rows crossing the network beyond the
            single-copy baseline (broadcast fan-out plus multiround
            repartitions).
        speedup: ``total_rows / per_shard_rows`` — the idealized
            makespan improvement over single-copy execution.
    """

    __slots__ = ("mode", "shards", "total_rows", "per_shard_rows", "shuffle_rows", "speedup")

    def __init__(
        self,
        mode: str,
        shards: int,
        total_rows: float,
        per_shard_rows: float,
        shuffle_rows: float,
    ) -> None:
        self.mode = mode
        self.shards = shards
        self.total_rows = total_rows
        self.per_shard_rows = per_shard_rows
        self.shuffle_rows = shuffle_rows
        self.speedup = total_rows / per_shard_rows if per_shard_rows > 0 else 1.0

    def summary_dict(self) -> dict:
        return {
            "mode": self.mode,
            "shards": self.shards,
            "total_rows": self.total_rows,
            "per_shard_rows": self.per_shard_rows,
            "shuffle_rows": self.shuffle_rows,
            "speedup": self.speedup,
        }

    def __repr__(self) -> str:
        return (
            f"ShardCostEstimate({self.mode} x{self.shards}, "
            f"speedup={self.speedup:.2f})"
        )


def _relation_rows(name: str, stats, tables) -> float:
    """Best available row count for ``name``: observed, actual, default."""
    if stats is not None:
        observed = stats.relation_rows(name)
        if observed is not None and observed > 0:
            return float(observed)
    if tables is not None:
        table = tables.get(name)
        if table is not None:
            return float(len(table))
    return DEFAULT_ROWS


def estimate_sharded_cost(
    spec: QuerySpec,
    schemes: Mapping[str, PartitionScheme],
    certificate: ShardCertificate,
    stats=None,
    tables=None,
) -> ShardCostEstimate:
    """Estimate the per-shard working set of a certified execution.

    Args:
        spec: the parsed query.
        schemes: partition schemes by relation name.
        certificate: the checker's verdict (its ``sharded`` tuple decides
            which relations count as partitioned).
        stats: optional statistics source with ``relation_rows(name)``
            (e.g. a :class:`~repro.profiling.StatsStore`).
        tables: optional mapping of relation name to
            :class:`~repro.engine.data.Table`, used when ``stats`` has
            no observation for a relation.
    """
    sharded = set(certificate.sharded)
    shard_counts = [schemes[name].shards for name in certificate.sharded if name in schemes]
    shards = shard_counts[0] if shard_counts else 1
    total = 0.0
    per_shard = 0.0
    shuffle = 0.0
    for name in spec.relations:
        rows = _relation_rows(name, stats, tables)
        total += rows
        if name in sharded:
            per_shard += rows / max(shards, 1)
            if certificate.mode == MODE_MULTIROUND and name != spec.relations[0]:
                # Each later sharded join forces a repartition of the
                # accumulated intermediate; approximate it by the
                # incoming relation's size (the intermediate is at least
                # key-compatible with it).
                shuffle += rows
        else:
            # Broadcast: every shard receives the full relation.
            per_shard += rows
            shuffle += rows * max(shards - 1, 0)
    return ShardCostEstimate(certificate.mode, shards, total, per_shard, shuffle)


def choose_execution_mode(
    spec: QuerySpec,
    schemes: Mapping[str, PartitionScheme],
    certificate: ShardCertificate,
    stats=None,
    tables=None,
    min_speedup: float = MIN_SPEEDUP,
) -> str:
    """Recommend ``"partitioned"``, ``"multiround"`` or ``"single_copy"``.

    Uncertified schemes always map to single-copy — cost never overrides
    the correctness checker.  Certified schemes are recommended only
    when the estimated makespan speedup clears ``min_speedup``.
    """
    if not certificate.certified or not certificate.sharded:
        return "single_copy"
    estimate = estimate_sharded_cost(spec, schemes, certificate, stats=stats, tables=tables)
    if estimate.speedup < min_speedup:
        return "single_copy"
    if certificate.mode == MODE_HYPERCUBE:
        return "partitioned"
    return "multiround"
