"""Partition-parallel execution, certified or not at all.

:class:`ShardedExecutor` is the coordinator that turns a certified
partition scheme set into a partition-parallel run of an existing
:class:`~repro.distributed.system.DistributedSystem` query.  Its
fallback ladder (each rung provably no wider than the one below):

1. **hypercube** — the checker certified co-partitioned schemes: one
   full distributed execution *per shard*.  Each shard gets its own
   catalog (sharded relations re-placed at their group member), its own
   Figure 6 safe assignment planned under the shared chase-closed
   policy, the standard independent verifier, and its own
   :class:`~repro.engine.executor.DistributedExecutor` — so the
   audit-before-ship invariant, retry, breaker and batch-streaming
   machinery all apply *per shard*.  Shard results merge by union,
   which is exactly single-copy semantics for certified schemes.
2. **multiround** — compatible but unaligned schemes: the engine-level
   repartitioning fallback of :func:`~repro.sharding.shuffle.execute_multiround`,
   every shuffle audited with the group-lifted CanView first.
3. **single_copy** — anything else (uncertified schemes, an infeasible
   shard plan, an unauthorized shuffle): the ordinary
   :meth:`~repro.distributed.system.DistributedSystem.execute` path.
   Uncertified schemes therefore *never* execute partitioned — the
   trace carries a ``shard_fallback`` event and no ``shard`` span, the
   property the differential suite asserts.

Observability: ``repro_shard_*`` counters (queries by mode, partitions,
rows, fallbacks by reason) and a ``shard_execute`` span wrapping one
``shard`` span per partition.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.builder import QuerySpec, build_plan
from repro.algebra.schema import Catalog
from repro.core.planner import SafePlanner
from repro.core.profile import RelationProfile
from repro.core.safety import verify_assignment
from repro.engine.data import Table
from repro.engine.executor import DistributedExecutor, ExecutionResult
from repro.engine.operators import DEFAULT_BATCH_SIZE
from repro.exceptions import (
    InfeasiblePlanError,
    PartitionSchemeError,
    ShardingError,
)
from repro.sharding.checker import (
    MODE_HYPERCUBE,
    MODE_MULTIROUND,
    ParallelCorrectnessChecker,
    ShardCertificate,
)
from repro.sharding.scheme import PartitionScheme, merge_shards
from repro.sharding.shuffle import ShufflePlan, execute_multiround, plan_shuffle

#: Execution modes reported by :class:`ShardedResult`.
EXEC_PARTITIONED = "partitioned"
EXEC_MULTIROUND = "multiround"
EXEC_SINGLE_COPY = "single_copy"


class ShardedResult:
    """Outcome of one sharded (or fallen-back) execution.

    Attributes:
        mode: ``partitioned`` (hypercube, per-shard distributed runs),
            ``multiround`` (engine-level repartition fallback) or
            ``single_copy``.
        table: the merged query result (identical to single-copy
            execution — the differential suite's core claim).
        result_server: where the result materialized (the recipient
            when one was given).
        certificate: the checker's verdict.
        shuffle: the shuffle plan (``None`` on single-copy fallback).
        shard_results: per-shard :class:`ExecutionResult` records
            (``partitioned`` mode only).
        single_result: the ordinary execution result (``single_copy``
            mode only).
        fallback_reason: why the ladder fell to single-copy ("" when it
            did not).
        makespan: simulated parallel completion time — the *slowest
            shard's* wall time for partitioned runs, total wall time
            otherwise.
        elapsed: total wall time spent executing (all shards summed).
        shuffle_stats: row/byte shuffle accounting (``multiround`` only).
    """

    __slots__ = (
        "mode",
        "table",
        "result_server",
        "certificate",
        "shuffle",
        "shard_results",
        "single_result",
        "fallback_reason",
        "makespan",
        "elapsed",
        "shuffle_stats",
    )

    def __init__(
        self,
        mode: str,
        table: Table,
        result_server: str,
        certificate: ShardCertificate,
        shuffle: Optional[ShufflePlan] = None,
        shard_results: Sequence[ExecutionResult] = (),
        single_result: Optional[ExecutionResult] = None,
        fallback_reason: str = "",
        makespan: float = 0.0,
        elapsed: float = 0.0,
        shuffle_stats=None,
    ) -> None:
        self.mode = mode
        self.table = table
        self.result_server = result_server
        self.certificate = certificate
        self.shuffle = shuffle
        self.shard_results = tuple(shard_results)
        self.single_result = single_result
        self.fallback_reason = fallback_reason
        self.makespan = makespan
        self.elapsed = elapsed
        self.shuffle_stats = shuffle_stats

    @property
    def shards(self) -> int:
        """Partitions executed (0 outside ``partitioned`` mode)."""
        return len(self.shard_results)

    @property
    def audit(self):
        """Merged audit view over every underlying run.

        Duck-typed like :class:`~repro.core.safety.AuditLog` (exposes
        ``violations``), so a :class:`ShardedResult` slots into
        callers — the service layer's outcome rendering, notably — that
        expect an :class:`~repro.engine.executor.ExecutionResult`.
        """
        if self.single_result is not None:
            return self.single_result.audit
        return _MergedAudit(self)

    def violations(self) -> int:
        """Total audit violations across every underlying run (0 on a
        healthy system — enforcement raises before recording)."""
        total = 0
        for result in self.shard_results:
            if result.audit is not None:
                total += len(result.audit.violations)
        if self.single_result is not None and self.single_result.audit is not None:
            total += len(self.single_result.audit.violations)
        return total

    def transfers(self) -> int:
        """Cross-server shipments across every underlying run."""
        total = sum(len(r.transfers) for r in self.shard_results)
        if self.single_result is not None:
            total += len(self.single_result.transfers)
        if self.shuffle_stats is not None:
            total += self.shuffle_stats.repartitions + self.shuffle_stats.broadcasts
        return total

    def summary_dict(self) -> dict:
        """Stable flat summary; every key always present."""
        shipped = sum(r.transfers.total_bytes() for r in self.shard_results)
        if self.single_result is not None:
            shipped += self.single_result.transfers.total_bytes()
        if self.shuffle_stats is not None:
            shipped += self.shuffle_stats.shipped_bytes
        return {
            "mode": self.mode,
            "certified": self.certificate.certified,
            "fallback_reason": self.fallback_reason,
            "shards": self.shards,
            "rounds": self.shuffle.rounds if self.shuffle is not None else 0,
            "rows": len(self.table),
            "transfers": self.transfers(),
            "bytes": shipped,
            "violations": self.violations(),
            "result_server": self.result_server,
            "makespan": self.makespan,
            "elapsed": self.elapsed,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedResult({self.mode}, {len(self.table)} rows, "
            f"{self.shards} shards, makespan={self.makespan:.4f})"
        )


class _MergedAudit:
    """Read-only audit facade concatenating per-shard violation lists."""

    __slots__ = ("violations",)

    def __init__(self, result: "ShardedResult") -> None:
        merged = []
        for shard_result in result.shard_results:
            if shard_result.audit is not None:
                merged.extend(shard_result.audit.violations)
        self.violations = merged


def shard_catalog(
    catalog: Catalog, schemes: Mapping[str, PartitionScheme], shard: int
) -> Catalog:
    """The catalog as shard ``shard`` sees it: sharded relations
    re-placed at their group member, everything else untouched.

    Schemas are copied (``placed_at``), never shared — catalogs intern
    attribute sets into their own universe, and mutating the source
    catalog's schemas would corrupt its bitset kernel.
    """
    shifted = Catalog()
    for schema in catalog.relations():
        scheme = schemes.get(schema.name)
        target = scheme.placement(shard) if scheme is not None else schema.server
        shifted.add_relation(schema.placed_at(target))
    for edge in catalog.join_edges():
        shifted.add_join_edge(edge.first, edge.second)
    return shifted


class ShardedExecutor:
    """Coordinate partition-parallel execution over one system.

    Args:
        system: the :class:`~repro.distributed.system.DistributedSystem`
            holding catalog, chase-closed policy and loaded instances.
        schemes: the candidate distribution policy, ``relation name ->
            PartitionScheme``.  Validated eagerly: a scheme keyed under
            a different relation's name is a configuration error.
        trace: optional :class:`~repro.obs.trace.TraceContext`.
        batch_size: block size for the per-shard executors.
        allow_multiround: whether rung 2 of the ladder is available
            (off forces unaligned-but-compatible schemes straight to
            single-copy).
        faults: optional fault injector shared by every shard's
            executor — each shard's shipments then retry under
            ``retry`` independently.
        retry: retry policy for fault-aware shard runs.
        health: optional health tracker shared across shards (one
            breaker state per link, fed by every shard).
    """

    def __init__(
        self,
        system,
        schemes: Mapping[str, PartitionScheme],
        trace=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        allow_multiround: bool = True,
        faults=None,
        retry=None,
        health=None,
    ) -> None:
        for name, scheme in schemes.items():
            if not isinstance(scheme, PartitionScheme):
                raise PartitionSchemeError(
                    f"scheme for {name!r} is not a PartitionScheme: {scheme!r}"
                )
            if scheme.relation != name:
                raise PartitionSchemeError(
                    f"scheme keyed under {name!r} partitions {scheme.relation!r}"
                )
        self._system = system
        self._schemes = dict(schemes)
        self._trace = trace
        self._batch_size = batch_size
        self._allow_multiround = allow_multiround
        self._faults = faults
        self._retry = retry
        self._health = health
        self._checker = ParallelCorrectnessChecker(
            system.policy, system.catalog, assume_closed=True, trace=trace
        )
        # shard -> (tree, assignment) memo, keyed by query fingerprint
        # and policy epoch (re-planned after any grant/revoke).
        self._plan_memo: Dict[Tuple[object, int, int], Tuple[object, object]] = {}

    @property
    def schemes(self) -> Dict[str, PartitionScheme]:
        """The distribution policy under coordination."""
        return dict(self._schemes)

    def certify(self, query) -> ShardCertificate:
        """The checker's verdict for ``query`` under these schemes."""
        return self._checker.certify(self._system.parse(query), self._schemes)

    # ------------------------------------------------------------------
    # The fallback ladder
    # ------------------------------------------------------------------

    def execute(self, query, recipient: Optional[str] = None) -> ShardedResult:
        """Run ``query`` partition-parallel when certified, single-copy
        otherwise (see the module docstring for the ladder)."""
        spec = self._system.parse(query)
        certificate = self._checker.certify(spec, self._schemes)
        trace = self._trace
        if not certificate.certified or not certificate.sharded:
            reason = certificate.reason or "query touches no sharded relation"
            return self._fallback(query, recipient, certificate, reason)
        if certificate.mode == MODE_HYPERCUBE:
            try:
                return self._execute_hypercube(spec, recipient, certificate)
            except InfeasiblePlanError as error:
                return self._fallback(
                    query, recipient, certificate, f"infeasible shard plan: {error}"
                )
        if certificate.mode == MODE_MULTIROUND and self._allow_multiround:
            try:
                return self._execute_multiround(spec, recipient, certificate)
            except ShardingError as error:
                return self._fallback(query, recipient, certificate, str(error))
        return self._fallback(
            query, recipient, certificate, f"mode {certificate.mode!r} disabled"
        )

    def _fallback(
        self, query, recipient, certificate: ShardCertificate, reason: str
    ) -> ShardedResult:
        trace = self._trace
        if trace is not None:
            trace.event("shard_fallback", "sharding", reason=reason)
            trace.count("repro_shard_fallback_total")
            trace.count("repro_shard_queries_total", mode=EXEC_SINGLE_COPY)
        start = time.perf_counter()
        result = self._system.execute(query, recipient=recipient, trace=trace)
        elapsed = time.perf_counter() - start
        return ShardedResult(
            EXEC_SINGLE_COPY,
            result.table,
            result.result_server,
            certificate,
            single_result=result,
            fallback_reason=reason,
            makespan=elapsed,
            elapsed=elapsed,
        )

    def _execute_hypercube(
        self, spec: QuerySpec, recipient: Optional[str], certificate: ShardCertificate
    ) -> ShardedResult:
        system = self._system
        trace = self._trace
        schemes = {name: self._schemes[name] for name in certificate.sharded}
        shards = schemes[certificate.sharded[0]].shards
        shuffle = plan_shuffle(spec, schemes, certificate)
        tables = system.tables()
        splits = {name: scheme.split(tables[name]) for name, scheme in schemes.items()}

        span = None
        if trace is not None:
            span = trace.begin(
                "shard_execute", "sharding", shards=shards, mode=EXEC_PARTITIONED
            )
        try:
            plans = [self._shard_plan(spec, shard, schemes) for shard in range(shards)]
            results: List[ExecutionResult] = []
            makespan = 0.0
            elapsed = 0.0
            for shard, (tree, assignment) in enumerate(plans):
                shard_tables = dict(tables)
                for name in splits:
                    shard_tables[name] = splits[name][shard]
                shard_span = None
                if trace is not None:
                    shard_span = trace.begin(
                        "shard", "sharding", shard=shard,
                        server=schemes[certificate.sharded[0]].placement(shard),
                    )
                start = time.perf_counter()
                try:
                    executor = DistributedExecutor(
                        assignment,
                        shard_tables,
                        policy=system.policy,
                        enforce=True,
                        faults=self._faults,
                        retry=self._retry,
                        health=self._health,
                        trace=trace,
                        batch_size=self._batch_size,
                    )
                    result = executor.run(recipient=recipient)
                finally:
                    took = time.perf_counter() - start
                    if trace is not None and shard_span is not None:
                        trace.end(shard_span)
                makespan = max(makespan, took)
                elapsed += took
                if trace is not None and shard_span is not None:
                    shard_span.attrs["rows"] = len(result.table)
                results.append(result)
            merged = merge_shards(result.table for result in results)
            if merged is None:  # pragma: no cover - shards >= 2 always
                raise ShardingError("no shard produced a result")
            result_server = recipient if recipient is not None else results[0].result_server
            if trace is not None:
                trace.count("repro_shard_queries_total", mode=EXEC_PARTITIONED)
                trace.count("repro_shard_partitions_total", shards)
                trace.count("repro_shard_rows_total", len(merged))
                trace.event(
                    "shard_parallel_commit",
                    "sharding",
                    shards=shards,
                    rows=len(merged),
                    mode=EXEC_PARTITIONED,
                )
        finally:
            if trace is not None and span is not None:
                trace.end(span)
        return ShardedResult(
            EXEC_PARTITIONED,
            merged,
            result_server,
            certificate,
            shuffle=shuffle,
            shard_results=results,
            makespan=makespan,
            elapsed=elapsed,
        )

    def _shard_plan(
        self,
        spec: QuerySpec,
        shard: int,
        schemes: Mapping[str, PartitionScheme],
    ) -> Tuple[object, object]:
        """Plan one shard's tree under the shared policy.

        Each shard sees its own catalog (shifted placements) but plans
        under the *same* chase-closed policy; the resulting assignment
        passes the independent verifier before anything runs, so shard
        placement cannot relax Definition 4.3.
        """
        system = self._system
        epoch = getattr(system.policy, "epoch", 0)
        key = (spec.fingerprint(), shard, epoch)
        memo = self._plan_memo.get(key)
        if memo is not None:
            return memo
        catalog = shard_catalog(system.catalog, schemes, shard)
        tree = build_plan(catalog, spec)
        planner = SafePlanner(system.policy, obs=self._trace)
        assignment, _ = planner.plan(tree)
        verify_assignment(system.policy, assignment)
        if len(self._plan_memo) < 1024:
            self._plan_memo[key] = (tree, assignment)
        return tree, assignment

    def _execute_multiround(
        self, spec: QuerySpec, recipient: Optional[str], certificate: ShardCertificate
    ) -> ShardedResult:
        system = self._system
        trace = self._trace
        schemes = {name: self._schemes[name] for name in certificate.sharded}
        shuffle = plan_shuffle(spec, schemes, certificate)
        if recipient is not None:
            # The final delivery is a shipment like any other: audit it
            # against the result's profile before running anything.
            profile = RelationProfile.of_base_relation(
                system.catalog.relation(spec.relations[0])
            )
            for step, incoming in zip(spec.join_paths, spec.relations[1:]):
                profile = profile.join(
                    RelationProfile.of_base_relation(system.catalog.relation(incoming)),
                    step,
                )
            profile = profile.select(spec.where.attributes).project(spec.select)
            if not system.policy.can_view(profile, recipient):
                raise ShardingError(
                    f"recipient {recipient!r} is not authorized for the result view"
                )
        span = None
        if trace is not None:
            span = trace.begin("shard_execute", "sharding", mode=EXEC_MULTIROUND)
        start = time.perf_counter()
        try:
            table, stats = execute_multiround(
                system.tables(),
                spec,
                schemes,
                system.policy,
                system.catalog,
                trace=trace,
                batch_size=self._batch_size,
            )
        finally:
            if trace is not None and span is not None:
                trace.end(span)
        elapsed = time.perf_counter() - start
        if trace is not None:
            trace.count("repro_shard_queries_total", mode=EXEC_MULTIROUND)
            trace.count("repro_shard_rows_total", len(table))
        result_server = recipient if recipient is not None else "coordinator"
        return ShardedResult(
            EXEC_MULTIROUND,
            table,
            result_server,
            certificate,
            shuffle=shuffle,
            makespan=elapsed,
            elapsed=elapsed,
            shuffle_stats=stats,
        )
