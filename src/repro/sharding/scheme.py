"""Horizontal partition schemes and authorization-lifted server groups.

The paper places each relation as a single copy on one server; ROADMAP
item #2 extends the model with *horizontal sharding*: a relation's rows
are split across a :class:`PartitionGroup` of servers according to a
:class:`PartitionScheme` — hash or range on (join) attributes — so a
large join can run partition-parallel, one shard per group member.

Two invariants anchor everything in this module:

* **Routing respects value equality.**  The columnar engine's intern
  pool treats ``1``, ``1.0`` and ``True`` as one equivalence class
  (plain Python ``==``), and join keys match by class.  Shard routing
  therefore canonicalizes values to their class representative before
  hashing or comparing, so two rows that *would join* can never be
  routed apart by a representation difference (``shard_of`` is a
  function of the value class, which the differential suite asserts on
  the alias corners).

* **Groups never widen visibility.**  A :class:`PartitionGroup` lifts
  ``CanView`` from single servers to the whole group by conjunction —
  the group can view a profile only if *every* member can.  Placing a
  shard at a member is an information release to that member, so the
  parallel-correctness checker (:mod:`repro.sharding.checker`) gates
  partitioned execution on the group-lifted check; no shard placement
  can expose a view some member is not individually authorized for.

Scheme constructors validate eagerly (empty groups, overlapping range
boundaries, unknown or duplicate attributes, degenerate shard counts all
raise :class:`~repro.exceptions.PartitionSchemeError`), mirroring the
fault-schedule constructor validation in
:mod:`repro.distributed.faults`.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.algebra.schema import Catalog
from repro.engine.data import Table
from repro.exceptions import PartitionSchemeError

#: Hard ceiling on shard counts — far above any sensible fan-out, low
#: enough that a typo (``shards=4000``) fails fast instead of building
#: thousands of empty tables.
MAX_SHARDS = 64


def canonical_shard_key(value: object) -> object:
    """The routing representative of ``value``'s equality class.

    The intern pool's classes are plain ``==`` classes, so ``1``,
    ``1.0`` and ``True`` must route identically: booleans collapse to
    ints, integral floats collapse to ints (which also folds ``-0.0``
    into ``0``), and everything else represents itself.
    """
    if value is None or value is True or value is False:
        return int(value) if value is not None else None
    if isinstance(value, bool):  # pragma: no cover - covered by identity above
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _hash_token(value: object) -> bytes:
    """A deterministic byte rendering of a canonical routing key.

    Type-tagged so ``1`` and ``"1"`` stay distinct (they are different
    equality classes), stable across processes (no reliance on
    ``hash()`` and its per-run string seed).
    """
    value = canonical_shard_key(value)
    if value is None:
        return b"\x00none"
    if isinstance(value, int):
        return b"i:" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f:" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8", "surrogatepass")
    return b"o:" + repr(value).encode("utf-8", "surrogatepass")


class PartitionGroup:
    """A named, ordered group of servers hosting one relation's shards.

    Shard ``i`` of a scheme over this group is placed at
    ``member(i)`` (round-robin when there are more shards than
    members).  The group's ``CanView`` is the *conjunction* of its
    members' — lifting authorization checks to the group can only ever
    shrink what is viewable, never widen it.
    """

    __slots__ = ("_name", "_servers")

    def __init__(self, name: str, servers: Sequence[str]) -> None:
        if not name or not isinstance(name, str):
            raise PartitionSchemeError(f"invalid partition group name: {name!r}")
        members = tuple(servers)
        if not members:
            raise PartitionSchemeError(
                f"partition group {name!r} has no member servers"
            )
        seen = set()
        for server in members:
            if not server or not isinstance(server, str):
                raise PartitionSchemeError(
                    f"partition group {name!r} has an invalid server: {server!r}"
                )
            if server in seen:
                raise PartitionSchemeError(
                    f"partition group {name!r} lists server {server!r} twice"
                )
            seen.add(server)
        self._name = name
        self._servers = members

    @property
    def name(self) -> str:
        """Group name (used in traces and error messages)."""
        return self._name

    @property
    def servers(self) -> Tuple[str, ...]:
        """Member servers, in placement order."""
        return self._servers

    def member(self, shard: int) -> str:
        """The server hosting shard ``shard`` (round-robin placement)."""
        return self._servers[shard % len(self._servers)]

    def can_view(self, policy, profile) -> bool:
        """Group-lifted ``CanView``: true only if every member may view.

        ``policy`` is anything exposing ``can_view(profile, server)``
        (normally a chase-closed :class:`~repro.core.authorization.Policy`).
        """
        return all(policy.can_view(profile, server) for server in self._servers)

    def can_view_batch(self, policy, profiles: Sequence) -> List[bool]:
        """Batched group lift: element-wise conjunction across members.

        Uses the policy's batched kernel when it has one so a group of
        ``k`` members answers ``n`` profiles in ``k`` kernel passes.
        """
        batch = getattr(policy, "can_view_batch", None)
        if batch is None:
            return [self.can_view(policy, profile) for profile in profiles]
        answers = [True] * len(profiles)
        for server in self._servers:
            for index, ok in enumerate(batch(profiles, server)):
                if not ok:
                    answers[index] = False
        return answers

    def __len__(self) -> int:
        return len(self._servers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionGroup):
            return NotImplemented
        return self._name == other._name and self._servers == other._servers

    def __hash__(self) -> int:
        return hash((self._name, self._servers))

    def __repr__(self) -> str:
        return f"PartitionGroup({self._name!r}, {list(self._servers)!r})"


class PartitionScheme:
    """Base class: how one relation's rows map to shard indexes.

    Subclasses implement :meth:`shard_of` over the canonical routing
    keys of the scheme's partition attributes.  Everything else —
    validation, splitting a :class:`~repro.engine.data.Table` into
    per-shard tables, placement — is shared.

    Args:
        relation: name of the partitioned relation.
        attributes: partition-key attributes, in alignment order (the
            checker aligns the k-th attribute of one scheme with the
            k-th of its join partner).
        shards: number of shards, ``2 <= shards <= MAX_SHARDS``.
        group: the :class:`PartitionGroup` hosting the shards.
    """

    kind = "abstract"

    __slots__ = ("_relation", "_attributes", "_shards", "_group")

    def __init__(
        self,
        relation: str,
        attributes: Sequence[str],
        shards: int,
        group: PartitionGroup,
    ) -> None:
        if not relation or not isinstance(relation, str):
            raise PartitionSchemeError(f"invalid relation name: {relation!r}")
        attrs = tuple(attributes)
        if not attrs:
            raise PartitionSchemeError(
                f"partition scheme for {relation!r} has no partition attributes"
            )
        if len(set(attrs)) != len(attrs):
            raise PartitionSchemeError(
                f"partition scheme for {relation!r} repeats attributes: {list(attrs)}"
            )
        if not isinstance(shards, int) or isinstance(shards, bool):
            raise PartitionSchemeError(
                f"shard count must be an int, got {shards!r}"
            )
        if shards < 2 or shards > MAX_SHARDS:
            raise PartitionSchemeError(
                f"shard count must be in [2, {MAX_SHARDS}], got {shards}"
            )
        if not isinstance(group, PartitionGroup):
            raise PartitionSchemeError(
                f"group must be a PartitionGroup, got {type(group).__name__}"
            )
        self._relation = relation
        self._attributes = attrs
        self._shards = shards
        self._group = group

    # -- accessors ------------------------------------------------------

    @property
    def relation(self) -> str:
        """The partitioned relation's name."""
        return self._relation

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Partition-key attributes in alignment order."""
        return self._attributes

    @property
    def shards(self) -> int:
        """Number of shards."""
        return self._shards

    @property
    def group(self) -> PartitionGroup:
        """The hosting server group."""
        return self._group

    def placement(self, shard: int) -> str:
        """The server hosting ``shard``."""
        return self._group.member(shard)

    # -- routing --------------------------------------------------------

    def shard_of(self, key: Tuple[object, ...]) -> int:
        """Shard index of one partition-key valuation (canonical-class
        semantics; subclasses implement)."""
        raise NotImplementedError

    def compatibility_signature(self) -> Tuple[object, ...]:
        """What must agree for two schemes to co-partition a join.

        Two schemes whose signatures differ can route equal join keys to
        different shard indexes, so the checker refuses to certify a
        partitioned join across them.
        """
        raise NotImplementedError

    def split(self, table: Table) -> List[Table]:
        """Partition ``table`` into ``shards`` disjoint tables.

        Routing reads the partition attributes of each (deduplicated)
        row, so the shards are pairwise disjoint and their union is
        exactly the input — the algebraic fact the differential suite
        leans on.

        Raises:
            PartitionSchemeError: if the table lacks a partition
                attribute.
        """
        columns = table.attributes
        try:
            positions = [columns.index(a) for a in self._attributes]
        except ValueError:
            missing = [a for a in self._attributes if a not in columns]
            raise PartitionSchemeError(
                f"table for {self._relation!r} is missing partition "
                f"attributes {missing} (has {list(columns)})"
            ) from None
        buckets: List[List[tuple]] = [[] for _ in range(self._shards)]
        shard_of = self.shard_of
        for row in table.rows:
            buckets[shard_of(tuple(row[p] for p in positions))].append(row)
        return [Table(columns, bucket) for bucket in buckets]

    def validate_against(self, catalog: Catalog) -> None:
        """Check the scheme names a real relation and real attributes.

        Raises:
            PartitionSchemeError: unknown relation, or a partition
                attribute the relation does not have.
        """
        if self._relation not in catalog:
            raise PartitionSchemeError(
                f"partition scheme names unknown relation {self._relation!r}"
            )
        schema = catalog.relation(self._relation)
        unknown = [a for a in self._attributes if a not in schema.attributes]
        if unknown:
            raise PartitionSchemeError(
                f"partition scheme for {self._relation!r} names attributes "
                f"{unknown} not in the relation (has {list(schema.attributes)})"
            )

    def describe(self) -> str:
        """One line for traces and the CLI."""
        flavor = getattr(self, "function", "")
        label = f"{self.kind}[{flavor}]" if flavor else self.kind
        return (
            f"{label}({', '.join(self._attributes)}) x{self._shards} "
            f"@ {self._group.name}[{', '.join(self._group.servers)}]"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._relation!r}: {self.describe()})"


class HashPartitionScheme(PartitionScheme):
    """Hash partitioning on one or more attributes.

    The hash family is named by ``function``; two hash schemes
    co-partition a join only when they share the family, the shard
    count and the key arity — a join key split across *incompatible*
    hash functions is exactly the adversarial case the checker must
    reject, because equal keys would land on different shards.

    The default family ``crc32`` is CRC-32 over the type-tagged
    canonical byte rendering of the key — deterministic across
    processes and runs, and constant on each intern-pool value class.
    """

    kind = "hash"

    __slots__ = ("_function", "_salt")

    def __init__(
        self,
        relation: str,
        attributes: Sequence[str],
        shards: int,
        group: PartitionGroup,
        function: str = "crc32",
    ) -> None:
        super().__init__(relation, attributes, shards, group)
        if not function or not isinstance(function, str):
            raise PartitionSchemeError(f"invalid hash function name: {function!r}")
        self._function = function
        self._salt = zlib.crc32(function.encode("utf-8"))

    @property
    def function(self) -> str:
        """The hash family name."""
        return self._function

    def shard_of(self, key: Tuple[object, ...]) -> int:
        digest = self._salt
        for value in key:
            token = _hash_token(value)
            digest = zlib.crc32(token, digest)
            digest = zlib.crc32(b"\x1f", digest)  # field separator
        return digest % self._shards

    def compatibility_signature(self) -> Tuple[object, ...]:
        return ("hash", self._function, self._shards, len(self._attributes))


class RangePartitionScheme(PartitionScheme):
    """Range partitioning on a single attribute.

    ``boundaries`` are the strictly-increasing split points: shard 0
    holds keys ``< boundaries[0]``, shard ``i`` holds
    ``boundaries[i-1] <= key < boundaries[i]``, the last shard holds the
    rest, so ``shards == len(boundaries) + 1``.  Equal or out-of-order
    boundaries describe *overlapping ranges* and are rejected at
    construction.  ``None`` keys (which can never match a join anyway)
    route to shard 0 by convention so routing stays total and
    deterministic.
    """

    kind = "range"

    __slots__ = ("_boundaries",)

    def __init__(
        self,
        relation: str,
        attribute: str,
        boundaries: Sequence[object],
        group: PartitionGroup,
    ) -> None:
        bounds = tuple(canonical_shard_key(b) for b in boundaries)
        if not bounds:
            raise PartitionSchemeError(
                f"range scheme for {relation!r} needs at least one boundary"
            )
        if any(b is None for b in bounds):
            raise PartitionSchemeError(
                f"range scheme for {relation!r} has a None boundary"
            )
        for left, right in zip(bounds, bounds[1:]):
            try:
                overlapping = not left < right
            except TypeError:
                raise PartitionSchemeError(
                    f"range scheme for {relation!r} mixes incomparable "
                    f"boundary types: {left!r} vs {right!r}"
                ) from None
            if overlapping:
                raise PartitionSchemeError(
                    f"range scheme for {relation!r} has overlapping ranges: "
                    f"boundary {right!r} does not exceed {left!r}"
                )
        super().__init__(relation, (attribute,), len(bounds) + 1, group)
        self._boundaries = bounds

    @property
    def boundaries(self) -> Tuple[object, ...]:
        """The canonicalized split points."""
        return self._boundaries

    def shard_of(self, key: Tuple[object, ...]) -> int:
        value = canonical_shard_key(key[0])
        if value is None:
            return 0
        try:
            return bisect_right(self._boundaries, value)
        except TypeError:
            raise PartitionSchemeError(
                f"range scheme for {self._relation!r} cannot order value "
                f"{value!r} against boundaries {list(self._boundaries)}"
            ) from None

    def compatibility_signature(self) -> Tuple[object, ...]:
        return ("range", self._boundaries, self._shards, 1)


def merge_shards(shards: Iterable[Table]) -> Optional[Table]:
    """Union per-shard result tables back into one relation.

    The engine's :meth:`~repro.engine.data.ColumnarTable.union`
    deduplicates on value classes and re-canonicalizes order, so merging
    is exactly the single-copy semantics regardless of how rows were
    routed.  Returns ``None`` for an empty iterable.
    """
    merged: Optional[Table] = None
    for shard in shards:
        merged = shard if merged is None else merged.union(shard)
    return merged
