"""Horizontal partitioning with policy-certified parallel execution.

This package adds sharded relations to the distributed model of the
paper without weakening it: a relation may be horizontally partitioned
across a *server group*, and the group — not any individual member —
becomes the unit the authorization model reasons about.  ``CanView`` is
lifted from servers to groups by conjunction (every member must be
authorized), so no shard placement ever widens visibility beyond what
the single-copy placement already granted.

The pieces:

* :mod:`~repro.sharding.scheme` — :class:`PartitionGroup`,
  :class:`HashPartitionScheme`, :class:`RangePartitionScheme` and the
  deterministic row routing / merge kernels.
* :mod:`~repro.sharding.checker` — the
  :class:`ParallelCorrectnessChecker`, which certifies a distribution
  policy *before* the planner commits: HyperCube-style single-round
  plans for co-partitioned inputs, a multi-round fallback for
  compatible-but-unaligned hash schemes, and a hard rejection for
  anything it cannot prove equivalent to single-copy execution.
* :mod:`~repro.sharding.shuffle` — shuffle planning and the audited
  multi-round engine-level fallback.
* :mod:`~repro.sharding.cost` — partition-aware sizing fed by the PR 9
  statistics store, for the partitioned-vs-single-copy decision.
* :mod:`~repro.sharding.executor` — :class:`ShardedExecutor`, the
  coordinator that certifies, plans per shard with the real
  :class:`~repro.core.planner.SafePlanner`, executes each shard through
  the real :class:`~repro.engine.executor.DistributedExecutor` (audit,
  retry, breaker and deadline machinery intact per shard), and merges.

Uncertifiable schemes **never** execute partitioned: the coordinator
falls back to plain single-copy execution and says so in the trace.
"""

from repro.sharding.checker import (
    MODE_HYPERCUBE,
    MODE_MULTIROUND,
    MODE_REJECTED,
    MODE_TRIVIAL,
    ParallelCorrectnessChecker,
    ShardCertificate,
    certify_schemes,
)
from repro.sharding.cost import (
    DEFAULT_ROWS,
    MIN_SPEEDUP,
    ShardCostEstimate,
    choose_execution_mode,
    estimate_sharded_cost,
)
from repro.sharding.executor import (
    EXEC_MULTIROUND,
    EXEC_PARTITIONED,
    EXEC_SINGLE_COPY,
    ShardedExecutor,
    ShardedResult,
    shard_catalog,
)
from repro.sharding.scheme import (
    MAX_SHARDS,
    HashPartitionScheme,
    PartitionGroup,
    PartitionScheme,
    RangePartitionScheme,
    canonical_shard_key,
    merge_shards,
)
from repro.sharding.shuffle import (
    ACTION_BROADCAST,
    ACTION_LOCAL,
    ACTION_REPARTITION,
    ShufflePlan,
    ShuffleStats,
    ShuffleStep,
    execute_multiround,
    plan_shuffle,
)

__all__ = [
    "ACTION_BROADCAST",
    "ACTION_LOCAL",
    "ACTION_REPARTITION",
    "DEFAULT_ROWS",
    "EXEC_MULTIROUND",
    "EXEC_PARTITIONED",
    "EXEC_SINGLE_COPY",
    "MAX_SHARDS",
    "MIN_SPEEDUP",
    "MODE_HYPERCUBE",
    "MODE_MULTIROUND",
    "MODE_REJECTED",
    "MODE_TRIVIAL",
    "HashPartitionScheme",
    "ParallelCorrectnessChecker",
    "PartitionGroup",
    "PartitionScheme",
    "RangePartitionScheme",
    "ShardCertificate",
    "ShardCostEstimate",
    "ShardedExecutor",
    "ShardedResult",
    "ShufflePlan",
    "ShuffleStats",
    "ShuffleStep",
    "canonical_shard_key",
    "certify_schemes",
    "choose_execution_mode",
    "estimate_sharded_cost",
    "execute_multiround",
    "merge_shards",
    "plan_shuffle",
    "shard_catalog",
]
