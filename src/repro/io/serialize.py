"""JSON-friendly dictionaries for the model's value objects.

Catalogs, policies (closed and open), and bound query specs round-trip
through plain dictionaries — the interchange format of the CLI
(:mod:`repro.cli`) and the natural way to version policies in a
repository.  All encodings are deterministic: sets are emitted sorted,
join paths as sorted condition pairs, so serialized policies diff
cleanly.

Schema sketch::

    catalog: {"relations": [{"name", "attributes", "primary_key",
                             "server"}], "join_edges": [[a, b], ...]}
    policy:  {"authorizations": [{"attributes": [...],
                                  "join_path": [[a, b], ...],
                                  "server": ...}]}
    open policy: {"denials": [... same rule shape ...]}
    spec:    {"relations": [...], "join_steps": [[[a, b], ...], ...],
              "select": [...], "where": [{"attribute", "op", "operand",
                                          "operand_is_attribute"}]}
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.algebra.builder import QuerySpec
from repro.algebra.joins import JoinPath
from repro.algebra.predicates import Comparison, Predicate
from repro.algebra.schema import Catalog, RelationSchema
from repro.core.authorization import Authorization, Policy
from repro.core.openpolicy import Denial, OpenPolicy
from repro.core.profile import RelationProfile
from repro.engine.checkpoint import CheckpointEntry, CheckpointJournal
from repro.engine.data import Table
from repro.exceptions import ReproError


def _path_pairs(path: JoinPath) -> List[List[str]]:
    return [[c.first, c.second] for c in path.sorted_conditions()]


def _path_from_pairs(pairs: Any) -> JoinPath:
    if not isinstance(pairs, list):
        raise ReproError(f"join path must be a list of pairs, got {type(pairs).__name__}")
    return JoinPath.of(*[tuple(pair) for pair in pairs])


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

def catalog_to_dict(catalog: Catalog) -> Dict[str, Any]:
    """Encode a catalog (relations sorted by name, edges sorted)."""
    return {
        "relations": [
            {
                "name": relation.name,
                "attributes": list(relation.attributes),
                "primary_key": list(relation.primary_key),
                "server": relation.server,
            }
            for relation in catalog.relations()
        ],
        "join_edges": [[edge.first, edge.second] for edge in catalog.join_edges()],
    }


def catalog_from_dict(data: Dict[str, Any]) -> Catalog:
    """Decode a catalog.

    Raises:
        ReproError: on missing keys; schema errors propagate as
            :class:`~repro.exceptions.SchemaError`.
    """
    if "relations" not in data:
        raise ReproError("catalog dictionary lacks 'relations'")
    catalog = Catalog()
    for entry in data["relations"]:
        catalog.add_relation(
            RelationSchema(
                entry["name"],
                entry["attributes"],
                primary_key=entry.get("primary_key"),
                server=entry.get("server"),
            )
        )
    for left, right in data.get("join_edges", []):
        catalog.add_join_edge(left, right)
    return catalog


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

def _rule_to_dict(rule: Authorization) -> Dict[str, Any]:
    return {
        "attributes": sorted(rule.attributes),
        "join_path": _path_pairs(rule.join_path),
        "server": rule.server,
    }


def policy_to_dict(policy: Policy) -> Dict[str, Any]:
    """Encode a closed policy (rules in policy iteration order)."""
    return {"authorizations": [_rule_to_dict(rule) for rule in policy]}


def policy_from_dict(data: Dict[str, Any]) -> Policy:
    """Decode a closed policy."""
    if "authorizations" not in data:
        raise ReproError("policy dictionary lacks 'authorizations'")
    policy = Policy()
    for entry in data["authorizations"]:
        policy.add(
            Authorization(
                entry["attributes"],
                _path_from_pairs(entry.get("join_path", [])),
                entry["server"],
            )
        )
    return policy


def open_policy_to_dict(policy: OpenPolicy) -> Dict[str, Any]:
    """Encode an open policy's denials."""
    return {"denials": [_rule_to_dict(denial) for denial in policy]}


def open_policy_from_dict(data: Dict[str, Any]) -> OpenPolicy:
    """Decode an open policy."""
    if "denials" not in data:
        raise ReproError("open policy dictionary lacks 'denials'")
    policy = OpenPolicy()
    for entry in data["denials"]:
        policy.deny(
            Denial(
                entry["attributes"],
                _path_from_pairs(entry.get("join_path", [])),
                entry["server"],
            )
        )
    return policy


# ---------------------------------------------------------------------------
# Query specs
# ---------------------------------------------------------------------------

def spec_to_dict(spec: QuerySpec) -> Dict[str, Any]:
    """Encode a bound query spec."""
    return {
        "relations": list(spec.relations),
        "join_steps": [_path_pairs(path) for path in spec.join_paths],
        "select": sorted(spec.select),
        "where": [
            {
                "attribute": comparison.attribute,
                "op": comparison.op,
                "operand": comparison.operand,
                "operand_is_attribute": comparison.operand_is_attribute,
            }
            for comparison in spec.where.comparisons
        ],
    }


def spec_from_dict(data: Dict[str, Any]) -> QuerySpec:
    """Decode a bound query spec."""
    for key in ("relations", "join_steps", "select"):
        if key not in data:
            raise ReproError(f"query spec dictionary lacks {key!r}")
    comparisons = [
        Comparison(
            entry["attribute"],
            entry["op"],
            entry["operand"],
            operand_is_attribute=entry.get("operand_is_attribute", False),
        )
        for entry in data.get("where", [])
    ]
    return QuerySpec(
        data["relations"],
        [_path_from_pairs(step) for step in data["join_steps"]],
        frozenset(data["select"]),
        Predicate(comparisons),
    )


# ---------------------------------------------------------------------------
# Tables, profiles, checkpoints
# ---------------------------------------------------------------------------

def table_to_dict(table: Table) -> Dict[str, Any]:
    """Encode a table (columns in table order, rows canonical)."""
    return {
        "attributes": list(table.attributes),
        "rows": [list(row) for row in table.rows],
    }


def table_from_dict(data: Dict[str, Any]) -> Table:
    """Decode a table."""
    if "attributes" not in data:
        raise ReproError("table dictionary lacks 'attributes'")
    return Table(
        data["attributes"], [tuple(row) for row in data.get("rows", [])]
    )


def table_to_columns(table: Table) -> Dict[str, Any]:
    """Encode a table as columnar, dictionary-compressed payloads.

    This is the wire shape of the batch-first engine: per attribute a
    ``values`` dictionary (distinct cell values in first-use order) and
    a ``codes`` array (one index per row, rows in canonical order).
    Repeated values ship once, so wide low-cardinality shipments
    compress well while staying plain JSON.  Deterministic like every
    other encoding in this module.
    """
    attributes = list(table.attributes)
    columns: Dict[str, Any] = {}
    for attribute in attributes:
        dictionary: List[Any] = []
        codes: List[int] = []
        index: Dict[Any, int] = {}
        for value in table.column(attribute):
            # Typed key: 1, 1.0 and True are distinct dictionary entries
            # even though they compare equal.
            key = (value.__class__.__name__, str(value))
            code = index.get(key)
            if code is None:
                code = len(dictionary)
                index[key] = code
                dictionary.append(value)
            codes.append(code)
        columns[attribute] = {"values": dictionary, "codes": codes}
    return {"attributes": attributes, "columns": columns}


def table_from_columns(data: Dict[str, Any]) -> Table:
    """Decode a columnar table payload (inverse of
    :func:`table_to_columns`).

    Raises:
        ReproError: on missing keys, a missing column, an out-of-range
            code, or ragged column lengths.
    """
    if "attributes" not in data:
        raise ReproError("columnar table dictionary lacks 'attributes'")
    attributes = list(data["attributes"])
    columns = data.get("columns", {})
    decoded: List[List[Any]] = []
    length = None
    for attribute in attributes:
        entry = columns.get(attribute)
        if entry is None:
            raise ReproError(f"columnar table payload lacks column {attribute!r}")
        values = entry.get("values", [])
        codes = entry.get("codes", [])
        if length is None:
            length = len(codes)
        elif len(codes) != length:
            raise ReproError(
                f"columnar table payload is ragged: column {attribute!r} has "
                f"{len(codes)} rows, expected {length}"
            )
        try:
            decoded.append([values[code] for code in codes])
        except (IndexError, TypeError) as exc:
            raise ReproError(
                f"columnar table payload has invalid codes for column {attribute!r}"
            ) from exc
    rows = list(zip(*decoded)) if decoded and decoded[0] else []
    return Table(attributes, rows)


def profile_to_dict(profile: RelationProfile) -> Dict[str, Any]:
    """Encode a Figure 4 relation profile ``[Rπ, R⋈, Rσ]``."""
    return {
        "attributes": sorted(profile.attributes),
        "join_path": _path_pairs(profile.join_path),
        "selection_attributes": sorted(profile.selection_attributes),
    }


def profile_from_dict(data: Dict[str, Any]) -> RelationProfile:
    """Decode a relation profile."""
    if "attributes" not in data:
        raise ReproError("profile dictionary lacks 'attributes'")
    return RelationProfile(
        data["attributes"],
        _path_from_pairs(data.get("join_path", [])),
        data.get("selection_attributes", ()),
    )


def checkpoint_to_dict(journal: CheckpointJournal) -> Dict[str, Any]:
    """Encode a checkpoint journal (entries sorted by node id).

    The profile of every entry rides along: resume re-audits each
    holder against the *current* policy from exactly this profile, so
    the journal must carry the information content it claims, not just
    the bytes.
    """
    return {
        "plan_signature": journal.signature,
        "entries": [
            {
                "node_id": entry.node_id,
                "server": entry.server,
                "profile": profile_to_dict(entry.profile),
                "table": table_to_dict(entry.table),
            }
            for entry in journal
        ],
    }


def checkpoint_from_dict(data: Dict[str, Any]) -> CheckpointJournal:
    """Decode a checkpoint journal.

    Decoding performs no authorization checks — the journal is untrusted
    until :meth:`~repro.engine.checkpoint.CheckpointJournal.verify` runs
    against the current plan and policy.
    """
    if "plan_signature" not in data:
        raise ReproError("checkpoint dictionary lacks 'plan_signature'")
    entries = [
        CheckpointEntry(
            int(entry["node_id"]),
            entry["server"],
            profile_from_dict(entry["profile"]),
            table_from_dict(entry["table"]),
        )
        for entry in data.get("entries", [])
    ]
    return CheckpointJournal(data["plan_signature"], entries)


# ---------------------------------------------------------------------------
# Service journals (chaos / crash-consistent recovery)
# ---------------------------------------------------------------------------

def service_journal_to_dict(journal) -> Dict[str, Any]:
    """Encode a :class:`~repro.chaos.journal.ServiceJournal`.

    Entries ride in admission order.  Queries serialize structurally
    (SQL text as-is, bound specs via :func:`spec_to_dict`) and parked
    checkpoint subtrees via :func:`checkpoint_to_dict` — everything a
    restarted service needs to re-verify and resume, nothing transient
    (futures never serialize).
    """
    entries = []
    for entry in journal.entries():
        if isinstance(entry.query, str):
            query: Dict[str, Any] = {"sql": entry.query}
        else:
            query = {"spec": spec_to_dict(entry.query)}
        entries.append(
            {
                "request_id": entry.request_id,
                "tenant": entry.tenant,
                "query": query,
                "recipient": entry.recipient,
                "admitted_epoch": entry.admitted_epoch,
                "state": entry.state,
                "outcome_status": entry.outcome_status,
                "attempts": entry.attempts,
                "checkpoint": (
                    checkpoint_to_dict(entry.checkpoint)
                    if entry.checkpoint is not None
                    else None
                ),
            }
        )
    return {"entries": entries}


def service_journal_from_dict(data: Dict[str, Any]):
    """Decode a :class:`~repro.chaos.journal.ServiceJournal`.

    Decoding performs no authorization checks — recovery re-verifies
    every incomplete entry against the current policy before anything
    runs (see :meth:`repro.service.service.QueryService.recover`).
    """
    from repro.chaos.journal import JournalEntry, ServiceJournal

    if "entries" not in data:
        raise ReproError("service journal dictionary lacks 'entries'")
    journal = ServiceJournal()
    for raw in data["entries"]:
        query_data = raw.get("query", {})
        if "sql" in query_data:
            query: Any = query_data["sql"]
        elif "spec" in query_data:
            query = spec_from_dict(query_data["spec"])
        else:
            raise ReproError(
                "service journal entry query needs 'sql' or 'spec'"
            )
        entry = JournalEntry(
            int(raw["request_id"]),
            raw["tenant"],
            query,
            raw.get("recipient"),
            int(raw.get("admitted_epoch", 0)),
        )
        entry.attempts = int(raw.get("attempts", 0))
        checkpoint = raw.get("checkpoint")
        if checkpoint is not None:
            entry.checkpoint = checkpoint_from_dict(checkpoint)
        if raw.get("state") == "completed":
            entry.state = "completed"
            entry.outcome_status = raw.get("outcome_status") or "ok"
        journal.restore(entry)
    return journal


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------

def save_json(data: Dict[str, Any], path: str) -> None:
    """Write a dictionary as pretty, key-stable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Dict[str, Any]:
    """Read a JSON dictionary.

    Raises:
        ReproError: when the file does not contain a JSON object.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ReproError(f"{path} does not contain a JSON object")
    return data
