"""JSON-friendly dictionaries for the model's value objects.

Catalogs, policies (closed and open), and bound query specs round-trip
through plain dictionaries — the interchange format of the CLI
(:mod:`repro.cli`) and the natural way to version policies in a
repository.  All encodings are deterministic: sets are emitted sorted,
join paths as sorted condition pairs, so serialized policies diff
cleanly.

Schema sketch::

    catalog: {"relations": [{"name", "attributes", "primary_key",
                             "server"}], "join_edges": [[a, b], ...]}
    policy:  {"authorizations": [{"attributes": [...],
                                  "join_path": [[a, b], ...],
                                  "server": ...}]}
    open policy: {"denials": [... same rule shape ...]}
    spec:    {"relations": [...], "join_steps": [[[a, b], ...], ...],
              "select": [...], "where": [{"attribute", "op", "operand",
                                          "operand_is_attribute"}]}
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.algebra.builder import QuerySpec
from repro.algebra.joins import JoinPath
from repro.algebra.predicates import Comparison, Predicate
from repro.algebra.schema import Catalog, RelationSchema
from repro.core.authorization import Authorization, Policy
from repro.core.openpolicy import Denial, OpenPolicy
from repro.core.profile import RelationProfile
from repro.engine.checkpoint import CheckpointEntry, CheckpointJournal
from repro.engine.data import Table
from repro.exceptions import ReproError


def _path_pairs(path: JoinPath) -> List[List[str]]:
    return [[c.first, c.second] for c in path.sorted_conditions()]


def _path_from_pairs(pairs: Any) -> JoinPath:
    if not isinstance(pairs, list):
        raise ReproError(f"join path must be a list of pairs, got {type(pairs).__name__}")
    return JoinPath.of(*[tuple(pair) for pair in pairs])


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

def catalog_to_dict(catalog: Catalog) -> Dict[str, Any]:
    """Encode a catalog (relations sorted by name, edges sorted)."""
    return {
        "relations": [
            {
                "name": relation.name,
                "attributes": list(relation.attributes),
                "primary_key": list(relation.primary_key),
                "server": relation.server,
            }
            for relation in catalog.relations()
        ],
        "join_edges": [[edge.first, edge.second] for edge in catalog.join_edges()],
    }


def catalog_from_dict(data: Dict[str, Any]) -> Catalog:
    """Decode a catalog.

    Raises:
        ReproError: on missing keys; schema errors propagate as
            :class:`~repro.exceptions.SchemaError`.
    """
    if "relations" not in data:
        raise ReproError("catalog dictionary lacks 'relations'")
    catalog = Catalog()
    for entry in data["relations"]:
        catalog.add_relation(
            RelationSchema(
                entry["name"],
                entry["attributes"],
                primary_key=entry.get("primary_key"),
                server=entry.get("server"),
            )
        )
    for left, right in data.get("join_edges", []):
        catalog.add_join_edge(left, right)
    return catalog


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

def _rule_to_dict(rule: Authorization) -> Dict[str, Any]:
    return {
        "attributes": sorted(rule.attributes),
        "join_path": _path_pairs(rule.join_path),
        "server": rule.server,
    }


def policy_to_dict(policy: Policy) -> Dict[str, Any]:
    """Encode a closed policy (rules in policy iteration order)."""
    return {"authorizations": [_rule_to_dict(rule) for rule in policy]}


def policy_from_dict(data: Dict[str, Any]) -> Policy:
    """Decode a closed policy."""
    if "authorizations" not in data:
        raise ReproError("policy dictionary lacks 'authorizations'")
    policy = Policy()
    for entry in data["authorizations"]:
        policy.add(
            Authorization(
                entry["attributes"],
                _path_from_pairs(entry.get("join_path", [])),
                entry["server"],
            )
        )
    return policy


def open_policy_to_dict(policy: OpenPolicy) -> Dict[str, Any]:
    """Encode an open policy's denials."""
    return {"denials": [_rule_to_dict(denial) for denial in policy]}


def open_policy_from_dict(data: Dict[str, Any]) -> OpenPolicy:
    """Decode an open policy."""
    if "denials" not in data:
        raise ReproError("open policy dictionary lacks 'denials'")
    policy = OpenPolicy()
    for entry in data["denials"]:
        policy.deny(
            Denial(
                entry["attributes"],
                _path_from_pairs(entry.get("join_path", [])),
                entry["server"],
            )
        )
    return policy


# ---------------------------------------------------------------------------
# Query specs
# ---------------------------------------------------------------------------

def spec_to_dict(spec: QuerySpec) -> Dict[str, Any]:
    """Encode a bound query spec."""
    return {
        "relations": list(spec.relations),
        "join_steps": [_path_pairs(path) for path in spec.join_paths],
        "select": sorted(spec.select),
        "where": [
            {
                "attribute": comparison.attribute,
                "op": comparison.op,
                "operand": comparison.operand,
                "operand_is_attribute": comparison.operand_is_attribute,
            }
            for comparison in spec.where.comparisons
        ],
    }


def spec_from_dict(data: Dict[str, Any]) -> QuerySpec:
    """Decode a bound query spec."""
    for key in ("relations", "join_steps", "select"):
        if key not in data:
            raise ReproError(f"query spec dictionary lacks {key!r}")
    comparisons = [
        Comparison(
            entry["attribute"],
            entry["op"],
            entry["operand"],
            operand_is_attribute=entry.get("operand_is_attribute", False),
        )
        for entry in data.get("where", [])
    ]
    return QuerySpec(
        data["relations"],
        [_path_from_pairs(step) for step in data["join_steps"]],
        frozenset(data["select"]),
        Predicate(comparisons),
    )


# ---------------------------------------------------------------------------
# Tables, profiles, checkpoints
# ---------------------------------------------------------------------------

def table_to_dict(table: Table) -> Dict[str, Any]:
    """Encode a table (columns in table order, rows canonical)."""
    return {
        "attributes": list(table.attributes),
        "rows": [list(row) for row in table.rows],
    }


def table_from_dict(data: Dict[str, Any]) -> Table:
    """Decode a table."""
    if "attributes" not in data:
        raise ReproError("table dictionary lacks 'attributes'")
    return Table(
        data["attributes"], [tuple(row) for row in data.get("rows", [])]
    )


def table_to_columns(table: Table) -> Dict[str, Any]:
    """Encode a table as columnar, dictionary-compressed payloads.

    This is the wire shape of the batch-first engine: per attribute a
    ``values`` dictionary (distinct cell values in first-use order) and
    a ``codes`` array (one index per row, rows in canonical order).
    Repeated values ship once, so wide low-cardinality shipments
    compress well while staying plain JSON.  Deterministic like every
    other encoding in this module.
    """
    attributes = list(table.attributes)
    columns: Dict[str, Any] = {}
    for attribute in attributes:
        dictionary: List[Any] = []
        codes: List[int] = []
        index: Dict[Any, int] = {}
        for value in table.column(attribute):
            # Typed key: 1, 1.0 and True are distinct dictionary entries
            # even though they compare equal.
            key = (value.__class__.__name__, str(value))
            code = index.get(key)
            if code is None:
                code = len(dictionary)
                index[key] = code
                dictionary.append(value)
            codes.append(code)
        columns[attribute] = {"values": dictionary, "codes": codes}
    return {"attributes": attributes, "columns": columns}


def table_from_columns(data: Dict[str, Any]) -> Table:
    """Decode a columnar table payload (inverse of
    :func:`table_to_columns`).

    Raises:
        ReproError: on missing keys, a missing column, an out-of-range
            code, or ragged column lengths.
    """
    if "attributes" not in data:
        raise ReproError("columnar table dictionary lacks 'attributes'")
    attributes = list(data["attributes"])
    columns = data.get("columns", {})
    decoded: List[List[Any]] = []
    length = None
    for attribute in attributes:
        entry = columns.get(attribute)
        if entry is None:
            raise ReproError(f"columnar table payload lacks column {attribute!r}")
        values = entry.get("values", [])
        codes = entry.get("codes", [])
        if length is None:
            length = len(codes)
        elif len(codes) != length:
            raise ReproError(
                f"columnar table payload is ragged: column {attribute!r} has "
                f"{len(codes)} rows, expected {length}"
            )
        try:
            decoded.append([values[code] for code in codes])
        except (IndexError, TypeError) as exc:
            raise ReproError(
                f"columnar table payload has invalid codes for column {attribute!r}"
            ) from exc
    rows = list(zip(*decoded)) if decoded and decoded[0] else []
    return Table(attributes, rows)


def profile_to_dict(profile: RelationProfile) -> Dict[str, Any]:
    """Encode a Figure 4 relation profile ``[Rπ, R⋈, Rσ]``."""
    return {
        "attributes": sorted(profile.attributes),
        "join_path": _path_pairs(profile.join_path),
        "selection_attributes": sorted(profile.selection_attributes),
    }


def profile_from_dict(data: Dict[str, Any]) -> RelationProfile:
    """Decode a relation profile."""
    if "attributes" not in data:
        raise ReproError("profile dictionary lacks 'attributes'")
    return RelationProfile(
        data["attributes"],
        _path_from_pairs(data.get("join_path", [])),
        data.get("selection_attributes", ()),
    )


def checkpoint_to_dict(journal: CheckpointJournal) -> Dict[str, Any]:
    """Encode a checkpoint journal (entries sorted by node id).

    The profile of every entry rides along: resume re-audits each
    holder against the *current* policy from exactly this profile, so
    the journal must carry the information content it claims, not just
    the bytes.
    """
    return {
        "plan_signature": journal.signature,
        "entries": [
            {
                "node_id": entry.node_id,
                "server": entry.server,
                "profile": profile_to_dict(entry.profile),
                "table": table_to_dict(entry.table),
            }
            for entry in journal
        ],
    }


def checkpoint_from_dict(data: Dict[str, Any]) -> CheckpointJournal:
    """Decode a checkpoint journal.

    Decoding performs no authorization checks — the journal is untrusted
    until :meth:`~repro.engine.checkpoint.CheckpointJournal.verify` runs
    against the current plan and policy.
    """
    if "plan_signature" not in data:
        raise ReproError("checkpoint dictionary lacks 'plan_signature'")
    entries = [
        CheckpointEntry(
            int(entry["node_id"]),
            entry["server"],
            profile_from_dict(entry["profile"]),
            table_from_dict(entry["table"]),
        )
        for entry in data.get("entries", [])
    ]
    return CheckpointJournal(data["plan_signature"], entries)


# ---------------------------------------------------------------------------
# Service journals (chaos / crash-consistent recovery)
# ---------------------------------------------------------------------------

def service_journal_to_dict(journal) -> Dict[str, Any]:
    """Encode a :class:`~repro.chaos.journal.ServiceJournal`.

    Entries ride in admission order.  Queries serialize structurally
    (SQL text as-is, bound specs via :func:`spec_to_dict`) and parked
    checkpoint subtrees via :func:`checkpoint_to_dict` — everything a
    restarted service needs to re-verify and resume, nothing transient
    (futures never serialize).
    """
    entries = []
    for entry in journal.entries():
        if isinstance(entry.query, str):
            query: Dict[str, Any] = {"sql": entry.query}
        else:
            query = {"spec": spec_to_dict(entry.query)}
        entries.append(
            {
                "request_id": entry.request_id,
                "tenant": entry.tenant,
                "query": query,
                "recipient": entry.recipient,
                "admitted_epoch": entry.admitted_epoch,
                "state": entry.state,
                "outcome_status": entry.outcome_status,
                "attempts": entry.attempts,
                "checkpoint": (
                    checkpoint_to_dict(entry.checkpoint)
                    if entry.checkpoint is not None
                    else None
                ),
            }
        )
    return {"entries": entries}


def service_journal_from_dict(data: Dict[str, Any]):
    """Decode a :class:`~repro.chaos.journal.ServiceJournal`.

    Decoding performs no authorization checks — recovery re-verifies
    every incomplete entry against the current policy before anything
    runs (see :meth:`repro.service.service.QueryService.recover`).
    """
    from repro.chaos.journal import JournalEntry, ServiceJournal

    if "entries" not in data:
        raise ReproError("service journal dictionary lacks 'entries'")
    journal = ServiceJournal()
    for raw in data["entries"]:
        query_data = raw.get("query", {})
        if "sql" in query_data:
            query: Any = query_data["sql"]
        elif "spec" in query_data:
            query = spec_from_dict(query_data["spec"])
        else:
            raise ReproError(
                "service journal entry query needs 'sql' or 'spec'"
            )
        entry = JournalEntry(
            int(raw["request_id"]),
            raw["tenant"],
            query,
            raw.get("recipient"),
            int(raw.get("admitted_epoch", 0)),
        )
        entry.attempts = int(raw.get("attempts", 0))
        checkpoint = raw.get("checkpoint")
        if checkpoint is not None:
            entry.checkpoint = checkpoint_from_dict(checkpoint)
        if raw.get("state") == "completed":
            entry.state = "completed"
            entry.outcome_status = raw.get("outcome_status") or "ok"
        journal.restore(entry)
    return journal


# ---------------------------------------------------------------------------
# Query profiles and the runtime stats store (EXPLAIN ANALYZE artifacts)
# ---------------------------------------------------------------------------

def _optional_float(value: Any) -> Any:
    return None if value is None else float(value)


def _optional_int(value: Any) -> Any:
    return None if value is None else int(value)


def query_profile_to_dict(profile) -> Dict[str, Any]:
    """Encode a :class:`~repro.profiling.QueryProfile`.

    Deterministic: operators sorted by node id, transfers in shipment
    order, relations and block counts sorted by key — so profile
    artifacts written via :func:`save_json` are byte-stable under a
    pinned clock.
    """
    return {
        "query": profile.query,
        "started": float(profile.started),
        "finished": float(profile.finished),
        "estimated_bytes": float(profile.estimated_bytes),
        "estimated_cost": float(profile.estimated_cost),
        "canview_probes": int(profile.canview_probes),
        "misestimate_factor": float(profile.misestimate_factor),
        "operators": [
            {
                "node_id": op.node_id,
                "kind": op.kind,
                "server": op.server,
                "rows": op.rows,
                "est_rows": _optional_float(op.est_rows),
                "left_rows": _optional_int(op.left_rows),
                "right_rows": _optional_int(op.right_rows),
                "selectivity": _optional_float(op.selectivity),
                "path_key": op.path_key,
                "relation": op.relation,
                "started": float(op.started),
                "finished": float(op.finished),
            }
            for op in profile.sorted_operators()
        ],
        "transfers": [
            {
                "node_id": t.node_id,
                "sender": t.sender,
                "receiver": t.receiver,
                "rows": t.rows,
                "bytes": float(t.bytes),
                "est_bytes": _optional_float(t.est_bytes),
                "kind": t.kind,
                "description": t.description,
            }
            for t in profile.transfers
        ],
        "relations": {
            name: {
                "rows": float(obs.rows),
                "distinct": dict(sorted(obs.distinct.items())),
                "widths": dict(sorted(obs.widths.items())),
            }
            for name, obs in sorted(profile.relations.items())
        },
        "block_counts": {
            kind: [int(counts[0]), int(counts[1])]
            for kind, counts in sorted(profile.block_counts.items())
        },
        "misestimates": [dict(flag) for flag in profile.misestimates],
    }


def query_profile_from_dict(data: Dict[str, Any]):
    """Decode a query profile (inverse of :func:`query_profile_to_dict`).

    Raises:
        ReproError: on missing keys.
    """
    from repro.profiling.profile import (
        OperatorProfile,
        QueryProfile,
        RelationObservation,
        TransferProfile,
    )

    for key in ("operators", "transfers"):
        if key not in data:
            raise ReproError(f"query profile dictionary lacks {key!r}")
    profile = QueryProfile(
        data.get("query", ""),
        float(data.get("misestimate_factor", 2.0)),
    )
    profile.started = float(data.get("started", 0.0))
    profile.finished = float(data.get("finished", 0.0))
    profile.estimated_bytes = float(data.get("estimated_bytes", 0.0))
    profile.estimated_cost = float(data.get("estimated_cost", 0.0))
    profile.canview_probes = int(data.get("canview_probes", 0))
    for entry in data["operators"]:
        record = OperatorProfile(
            int(entry["node_id"]),
            entry["kind"],
            entry["server"],
            int(entry["rows"]),
            est_rows=_optional_float(entry.get("est_rows")),
            left_rows=_optional_int(entry.get("left_rows")),
            right_rows=_optional_int(entry.get("right_rows")),
            selectivity=_optional_float(entry.get("selectivity")),
            path_key=entry.get("path_key"),
            relation=entry.get("relation"),
            started=float(entry.get("started", 0.0)),
            finished=float(entry.get("finished", 0.0)),
        )
        profile.operators[record.node_id] = record
    for entry in data["transfers"]:
        profile.transfers.append(
            TransferProfile(
                int(entry["node_id"]),
                entry["sender"],
                entry["receiver"],
                int(entry["rows"]),
                float(entry["bytes"]),
                est_bytes=_optional_float(entry.get("est_bytes")),
                kind=entry.get("kind", "unplanned"),
                description=entry.get("description", ""),
            )
        )
    for name, entry in data.get("relations", {}).items():
        profile.relations[name] = RelationObservation(
            name,
            float(entry["rows"]),
            entry.get("distinct", {}),
            entry.get("widths", {}),
        )
    for kind, counts in data.get("block_counts", {}).items():
        profile.block_counts[kind] = [int(counts[0]), int(counts[1])]
    profile.misestimates = [dict(flag) for flag in data.get("misestimates", [])]
    return profile


def stats_store_to_dict(store) -> Dict[str, Any]:
    """Encode a :class:`~repro.profiling.StatsStore` (its deterministic
    :meth:`~repro.profiling.StatsStore.snapshot` shape)."""
    return store.snapshot()


def stats_store_from_dict(data: Dict[str, Any]):
    """Decode a stats store.

    The decayed state is restored verbatim (the snapshot *is* the
    state): observed relations and selectivities are replayed at decay
    1.0 into a store configured with the serialized decay, so blending
    behavior continues exactly where it left off.

    Raises:
        ReproError: on missing keys.
    """
    from repro.profiling.stats import StatsStore

    if "relations" not in data or "selectivities" not in data:
        raise ReproError(
            "stats store dictionary lacks 'relations' or 'selectivities'"
        )
    store = StatsStore(decay=float(data.get("decay", 0.5)))
    # Direct state restore: bypass blending so the serialized averages
    # come back bit-exact.
    for name, entry in data["relations"].items():
        store._rows[name] = float(entry["rows"])
        store._distinct[name] = {
            attribute: float(value)
            for attribute, value in entry.get("distinct", {}).items()
        }
        store._widths[name] = {
            attribute: float(value)
            for attribute, value in entry.get("widths", {}).items()
        }
    for path_key, value in data["selectivities"].items():
        store._selectivities[path_key] = float(value)
    store.harvests = int(data.get("harvests", 0))
    return store


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------

def save_json(data: Dict[str, Any], path: str) -> None:
    """Write a dictionary as pretty, key-stable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Dict[str, Any]:
    """Read a JSON dictionary.

    Raises:
        ReproError: when the file does not contain a JSON object.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ReproError(f"{path} does not contain a JSON object")
    return data
