"""JSON (de)serialization of catalogs, policies and queries."""

from repro.io.serialize import (
    catalog_from_dict,
    catalog_to_dict,
    load_json,
    open_policy_from_dict,
    open_policy_to_dict,
    policy_from_dict,
    policy_to_dict,
    save_json,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "catalog_to_dict",
    "catalog_from_dict",
    "policy_to_dict",
    "policy_from_dict",
    "open_policy_to_dict",
    "open_policy_from_dict",
    "spec_to_dict",
    "spec_from_dict",
    "save_json",
    "load_json",
]
