"""Service-layer chaos: seeded fault schedules, crash-consistent
recovery, and an online invariant monitor.

The paper's guarantee — no server ever sees a relation its permissions
don't cover — must hold under arbitrary interleavings of faults, policy
churn and service restarts, not just on the happy path.  This package
turns that from a hope into a checkable condition:

* :class:`~repro.chaos.schedule.ChaosSchedule` — a deterministic,
  seed-driven extension of the PR 1
  :class:`~repro.distributed.faults.FaultInjector` that adds
  *service-level* events: worker-task cancellation mid-query,
  single-flight leader crashes, admission-queue stalls, policy
  grant/revoke storms, clock jumps and service kill/restart points.
  Same seed, same event log — every run replays.
* :class:`~repro.chaos.journal.ServiceJournal` — a write-ahead journal
  of admitted-request and completed-subtree state; a restarted
  :class:`~repro.service.service.QueryService` re-verifies every
  journaled plan against the *current* policy epoch and resumes or
  structurally rejects every in-flight request (no hangs, no unaudited
  replays).
* :class:`~repro.chaos.invariants.InvariantMonitor` — live assertions
  that every admitted request terminates, that no transfer ships
  without a covering authorization at the then-current epoch, that
  coalesced single-flight keys execute at most once per epoch, and
  that breaker/degrade transitions are legal; violations carry the
  chaos seed for one-command replay.
* :mod:`~repro.chaos.replay` — the seeded chaos-run harness behind the
  ABL16 bench, ``make test-chaos`` and the ``repro.cli chaos``
  subcommand, including deterministic replay of violation artifacts.

See ``docs/chaos.md`` for the runbook.
"""

from repro.chaos.invariants import (
    INV_AUTHORIZED_TRANSFER,
    INV_BREAKER_TRANSITION,
    INV_DEGRADE_LEVEL,
    INV_EPOCH_MONOTONIC,
    INV_SINGLE_EXECUTION,
    INV_TERMINATION,
    InvariantMonitor,
    Violation,
)
from repro.chaos.journal import JournalEntry, ServiceJournal
from repro.chaos.replay import ChaosReport, ChaosRunConfig, replay_artifact, run_chaos
from repro.chaos.schedule import (
    POINT_EXECUTE,
    POINT_LEADER,
    POINT_SUBMIT,
    POINT_WORKER,
    ChaosSchedule,
)
from repro.exceptions import ChaosError, ChaosInterrupt

__all__ = [
    "INV_AUTHORIZED_TRANSFER",
    "INV_BREAKER_TRANSITION",
    "INV_DEGRADE_LEVEL",
    "INV_EPOCH_MONOTONIC",
    "INV_SINGLE_EXECUTION",
    "INV_TERMINATION",
    "POINT_EXECUTE",
    "POINT_LEADER",
    "POINT_SUBMIT",
    "POINT_WORKER",
    "ChaosError",
    "ChaosInterrupt",
    "ChaosReport",
    "ChaosRunConfig",
    "ChaosSchedule",
    "InvariantMonitor",
    "JournalEntry",
    "ServiceJournal",
    "Violation",
    "replay_artifact",
    "run_chaos",
]
