"""Deterministic, seed-driven chaos schedules for the service layer.

:class:`ChaosSchedule` extends the PR 1
:class:`~repro.distributed.faults.FaultInjector` — so it slots into
every ``faults=`` parameter in the stack (pipelines run their resilient
path, deadlines and checkpoints account in its logical clock) — with
*service-level* chaos the wire-level injector cannot express:

========================  ==================================================
event                     hook (``fire`` point)
========================  ==================================================
clock jump                ``POINT_SUBMIT`` — the logical clock leaps forward
policy grant/revoke storm ``POINT_SUBMIT`` — the service applies the toggles
admission-queue stall     ``POINT_WORKER`` — a worker yields N event-loop
                          turns before touching its item
worker death mid-query    ``POINT_EXECUTE`` — the pipeline raises
                          :class:`~repro.exceptions.ChaosInterrupt`, before
                          (``pre``) or after (``post``) the execution body
single-flight leader      ``POINT_LEADER`` — the leader's compute raises a
crash                     chaos-tagged ``asyncio.CancelledError``
service kill/restart      polled by the driver via :meth:`kill_due`
========================  ==================================================

Chaos draws come from a *separate* seeded RNG, so adding service-level
chaos never perturbs the base class's transfer-drop sequence — a wire
schedule stays bit-identical whether or not service chaos rides along.
Every injected event is appended to :meth:`event_log` with the logical
clock at injection; two runs with the same seed and the same request
sequence produce identical logs, which is what makes one-command
violation replay possible (see ``docs/chaos.md``).
"""

from __future__ import annotations

import asyncio
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.distributed.faults import FaultInjector
from repro.distributed.network import NetworkModel
from repro.exceptions import ChaosError, ChaosInterrupt

#: Hook points, in request-lifecycle order.
POINT_SUBMIT = "submit"
POINT_WORKER = "worker"
POINT_LEADER = "leader"
POINT_EXECUTE = "execute"

_POINTS = (POINT_SUBMIT, POINT_WORKER, POINT_LEADER, POINT_EXECUTE)

#: Salt xored into the chaos RNG seed so chaos draws and the base
#: class's drop draws are decorrelated even for seed 0.
_CHAOS_SALT = 0x5EED_C4A0


def _check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ChaosError(f"{name} must be in [0, 1], got {value}")
    return float(value)


class ChaosSchedule(FaultInjector):
    """A seeded service-level chaos schedule.

    Args:
        seed: seeds both the base injector's drop RNG and (salted) the
            chaos-event RNG; same seed + same request sequence replays
            the same events.
        network / drop_probability: passed through to
            :class:`~repro.distributed.faults.FaultInjector`.
        cancel_probability: per-execution chance that the worker "dies"
            mid-query (a :class:`~repro.exceptions.ChaosInterrupt` from
            the pipeline hook).  Each execution draws twice — once
            before the body (``pre``: nothing ran) and once after it
            (``post``: the run completed but its completion was never
            recorded, the crash-consistency window).
        leader_crash_probability: per-flight chance that a single-flight
            leader's compute is cancelled mid-flight (exercises
            follower promotion).
        stall_probability: per-dequeue chance that a worker stalls.
        stall_ticks: event-loop turns a stalled worker yields.
        storm_probability: per-submit chance of a policy grant/revoke
            storm step.
        storm_rules: the :class:`~repro.core.authorization.Authorization`
            rules the storm toggles (each step grants a currently
            revoked rule or revokes a currently granted one).
        clock_jump_probability: per-submit chance the logical clock
            leaps forward.
        clock_jump: the leap size (logical clock units).
        kill_every: kill/restart the service after every N submissions
            (``None`` disables kill points).
        max_kills: cap on kill points (``None``: unlimited).
    """

    def __init__(
        self,
        seed: int = 0,
        network: Optional[NetworkModel] = None,
        drop_probability: float = 0.0,
        cancel_probability: float = 0.0,
        leader_crash_probability: float = 0.0,
        stall_probability: float = 0.0,
        stall_ticks: int = 3,
        storm_probability: float = 0.0,
        storm_rules: Sequence[object] = (),
        clock_jump_probability: float = 0.0,
        clock_jump: float = 0.0,
        kill_every: Optional[int] = None,
        max_kills: Optional[int] = None,
    ) -> None:
        super().__init__(
            seed=seed, network=network, drop_probability=drop_probability
        )
        self.cancel_probability = _check_probability(
            "cancel_probability", cancel_probability
        )
        self.leader_crash_probability = _check_probability(
            "leader_crash_probability", leader_crash_probability
        )
        self.stall_probability = _check_probability(
            "stall_probability", stall_probability
        )
        self.storm_probability = _check_probability(
            "storm_probability", storm_probability
        )
        self.clock_jump_probability = _check_probability(
            "clock_jump_probability", clock_jump_probability
        )
        if stall_ticks < 0:
            raise ChaosError(f"stall_ticks cannot be negative, got {stall_ticks}")
        if clock_jump < 0:
            raise ChaosError(f"clock_jump cannot be negative, got {clock_jump}")
        if kill_every is not None and kill_every < 1:
            raise ChaosError(f"kill_every must be >= 1, got {kill_every}")
        if max_kills is not None and max_kills < 0:
            raise ChaosError(f"max_kills cannot be negative, got {max_kills}")
        if storm_probability > 0.0 and not storm_rules:
            raise ChaosError("storm_probability > 0 requires storm_rules")
        self.stall_ticks = int(stall_ticks)
        self.clock_jump = float(clock_jump)
        self.kill_every = kill_every
        self.max_kills = max_kills
        self.storm_rules = tuple(storm_rules)
        self._chaos_rng = Random(seed ^ _CHAOS_SALT)
        self._granted: List[bool] = [False] * len(self.storm_rules)
        self._events: List[Dict[str, object]] = []
        self._submissions = 0
        self._kills = 0
        self._since_kill = 0

    # ------------------------------------------------------------------
    # The event surface
    # ------------------------------------------------------------------

    def fire(self, point: str, **info) -> Dict[str, object]:
        """Evaluate every chaos draw registered at ``point``.

        Returns a dict of *actions the caller must apply*:

        * ``"stall"`` (int) — event-loop turns to yield before
          proceeding (``POINT_WORKER``);
        * ``"storm"`` (list of ``(op, rule)`` with ``op`` in
          ``{"grant", "revoke"}``) — policy toggles to apply through
          the service's churn API (``POINT_SUBMIT``).

        Raises:
            ChaosInterrupt: at ``POINT_EXECUTE`` when the worker-death
                draw fires (``info["stage"]`` tags ``pre``/``post``).
            asyncio.CancelledError: at ``POINT_LEADER`` when the
                leader-crash draw fires; the error carries a ``chaos``
                attribute so the service can tell an injected crash
                from a real shutdown cancellation.
            ChaosError: for an unknown hook point.
        """
        if point not in _POINTS:
            raise ChaosError(f"unknown chaos point {point!r}")
        actions: Dict[str, object] = {}
        if point == POINT_SUBMIT:
            self._submissions += 1
            self._since_kill += 1
            if (
                self.clock_jump_probability > 0.0
                and self._chaos_rng.random() < self.clock_jump_probability
            ):
                self._clock += self.clock_jump
                self._record("clock-jump", point, jump=self.clock_jump)
            if (
                self.storm_probability > 0.0
                and self._chaos_rng.random() < self.storm_probability
            ):
                index = self._chaos_rng.randrange(len(self.storm_rules))
                op = "revoke" if self._granted[index] else "grant"
                self._granted[index] = not self._granted[index]
                self._record("policy-storm", point, op=op, rule=index)
                actions["storm"] = [(op, self.storm_rules[index])]
        elif point == POINT_WORKER:
            if (
                self.stall_probability > 0.0
                and self._chaos_rng.random() < self.stall_probability
            ):
                self._record("stall", point, ticks=self.stall_ticks)
                actions["stall"] = self.stall_ticks
        elif point == POINT_LEADER:
            if (
                self.leader_crash_probability > 0.0
                and self._chaos_rng.random() < self.leader_crash_probability
            ):
                self._record("leader-crash", point)
                error = asyncio.CancelledError(
                    "chaos: single-flight leader crashed mid-flight"
                )
                error.chaos = {"point": point, "clock": self._clock}
                raise error
        elif point == POINT_EXECUTE:
            stage = str(info.get("stage", "pre"))
            if (
                self.cancel_probability > 0.0
                and self._chaos_rng.random() < self.cancel_probability
            ):
                self._record("worker-death", point, stage=stage)
                raise ChaosInterrupt(
                    f"chaos: worker died mid-query ({stage}-execution)",
                    point=point,
                    stage=stage,
                )
        return actions

    def kill_due(self) -> bool:
        """Whether a service kill/restart point is due (consuming).

        The driver polls this between submissions; ``True`` means "kill
        the service now" and resets the per-kill submission counter, so
        each window of ``kill_every`` submissions ends in at most one
        kill.  Respects ``max_kills``.
        """
        if self.kill_every is None:
            return False
        if self.max_kills is not None and self._kills >= self.max_kills:
            return False
        if self._since_kill < self.kill_every:
            return False
        self._kills += 1
        self._since_kill = 0
        self._record("service-kill", "driver", kill=self._kills)
        return True

    def _record(self, kind: str, point: str, **detail) -> None:
        event: Dict[str, object] = {
            "clock": self._clock,
            "seq": self._submissions,
            "point": point,
            "kind": kind,
        }
        event.update(detail)
        self._events.append(event)

    # ------------------------------------------------------------------
    # Introspection / replay support
    # ------------------------------------------------------------------

    @property
    def seed(self) -> int:
        """The schedule's seed (replay handle)."""
        return self._seed

    @property
    def submissions(self) -> int:
        """Submit-point firings observed."""
        return self._submissions

    @property
    def kills(self) -> int:
        """Kill points consumed."""
        return self._kills

    def event_log(self) -> List[Dict[str, object]]:
        """Every injected event, in injection order (JSON-safe).

        Two runs with the same seed and request sequence produce
        identical logs — the determinism tests and the replay digest
        compare exactly this.
        """
        return [dict(event) for event in self._events]

    def summary(self) -> Dict[str, int]:
        """``kind -> count`` over the injected events."""
        counts: Dict[str, int] = {}
        for event in self._events:
            kind = str(event["kind"])
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def config_dict(self) -> Dict[str, object]:
        """The knobs needed to rebuild this schedule for a replay.

        Storm rules are carried structurally (server / attributes /
        join path) via :func:`repro.io.serialize._rule_to_dict`'s
        shape, so a violation artifact is self-contained.
        """
        from repro.io.serialize import _rule_to_dict

        return {
            "seed": self._seed,
            "drop_probability": self._drop_probability,
            "cancel_probability": self.cancel_probability,
            "leader_crash_probability": self.leader_crash_probability,
            "stall_probability": self.stall_probability,
            "stall_ticks": self.stall_ticks,
            "storm_probability": self.storm_probability,
            "storm_rules": [_rule_to_dict(rule) for rule in self.storm_rules],
            "clock_jump_probability": self.clock_jump_probability,
            "clock_jump": self.clock_jump,
            "kill_every": self.kill_every,
            "max_kills": self.max_kills,
        }

    def __repr__(self) -> str:
        return (
            f"ChaosSchedule(seed={self._seed}, events={len(self._events)}, "
            f"submissions={self._submissions}, kills={self._kills}, "
            f"clock={self._clock:.1f})"
        )


def chaos_event_key(events: Sequence[Dict[str, object]]) -> Tuple:
    """A hashable digest key of an event log (determinism assertions)."""
    return tuple(
        tuple(sorted((k, str(v)) for k, v in event.items())) for event in events
    )
