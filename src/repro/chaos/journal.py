"""The crash-consistent service journal.

A :class:`ServiceJournal` is the write-ahead log that makes a
:class:`~repro.service.service.QueryService` recoverable: *before* a
request enters the queue the service journals its admission (tenant,
query, recipient, the policy epoch in force), and when the request
reaches a terminal outcome the service journals completion.  Between
the two, a chaos-interrupted execution may park its completed, audited
checkpoint subtrees (the PR 3
:class:`~repro.engine.checkpoint.CheckpointJournal`) on the entry.

After a crash — :meth:`QueryService.kill` in the chaos harness, a
process death in production — a fresh service constructed over the same
journal replays *nothing blindly*:

* entries journaled **completed** are never re-executed (no duplicated
  transfers, no double answers);
* entries journaled **admitted but incomplete** are re-verified against
  the *current* policy epoch: the query replans through the live plan
  cache, any parked checkpoint subtrees re-audit via
  :meth:`CheckpointJournal.verify` (a revoked rule refuses the subtree
  rather than replaying a view the policy no longer grants), and the
  request resumes — or structurally rejects with a
  ``recovery-rejected`` :class:`~repro.service.admission.Rejection`.
  Either way the submitter's future resolves: no hangs.

The journal serializes to a plain dictionary
(:func:`repro.io.serialize.service_journal_to_dict`) so crash
consistency can be proven across a real process boundary: every test
round-trips the journal through JSON before recovering from it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import ReproError

#: Journal entry states.
ADMITTED = "admitted"
COMPLETED = "completed"


class JournalError(ReproError):
    """Misuse of the service journal (unknown request id, ...)."""


class JournalEntry:
    """One admitted request's durable state.

    Attributes:
        request_id: the service-assigned id (journal-unique).
        tenant: submitting tenant's name.
        query: SQL text or a bound
            :class:`~repro.algebra.builder.QuerySpec`.
        recipient: optional final consumer of the result.
        admitted_epoch: policy epoch at admission — recovery compares
            it against the *current* epoch and always re-verifies.
        state: :data:`ADMITTED` or :data:`COMPLETED`.
        outcome_status: terminal status once completed.
        checkpoint: optional
            :class:`~repro.engine.checkpoint.CheckpointJournal` of
            completed subtrees parked by an interrupted execution.
        attempts: chaos-interrupt requeues this request survived.
        future: the submitter's pending ``asyncio.Future`` (transient —
            never serialized; present only for same-process recovery).
    """

    __slots__ = (
        "request_id", "tenant", "query", "recipient", "admitted_epoch",
        "state", "outcome_status", "checkpoint", "attempts", "future",
    )

    def __init__(
        self,
        request_id: int,
        tenant: str,
        query,
        recipient: Optional[str],
        admitted_epoch: int,
    ) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.query = query
        self.recipient = recipient
        self.admitted_epoch = admitted_epoch
        self.state = ADMITTED
        self.outcome_status: Optional[str] = None
        self.checkpoint = None
        self.attempts = 0
        self.future = None

    @property
    def complete(self) -> bool:
        """Whether a terminal outcome was journaled."""
        return self.state == COMPLETED

    def __repr__(self) -> str:
        return (
            f"JournalEntry(#{self.request_id} {self.tenant} "
            f"{self.state}{':' + self.outcome_status if self.outcome_status else ''})"
        )


class ServiceJournal:
    """Write-ahead admitted/completed state for one service lineage.

    One journal outlives service instances: the chaos harness threads
    the same journal through every kill/restart cycle, exactly as a
    production deployment would re-open the same WAL file.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, JournalEntry] = {}
        self._next_id = 1

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[JournalEntry]:
        """All entries, in admission order."""
        return [self._entries[rid] for rid in sorted(self._entries)]

    def get(self, request_id: int) -> JournalEntry:
        """The entry for ``request_id``.

        Raises:
            JournalError: unknown id.
        """
        entry = self._entries.get(request_id)
        if entry is None:
            raise JournalError(f"unknown journal request id {request_id}")
        return entry

    # ------------------------------------------------------------------
    # The write-ahead surface (called by the service)
    # ------------------------------------------------------------------

    def record_admitted(
        self,
        tenant: str,
        query,
        recipient: Optional[str],
        admitted_epoch: int,
        future=None,
    ) -> int:
        """Journal one admission *before* the request queues; returns
        the assigned request id."""
        request_id = self._next_id
        self._next_id += 1
        entry = JournalEntry(request_id, tenant, query, recipient, admitted_epoch)
        entry.future = future
        self._entries[request_id] = entry
        return request_id

    def restore(self, entry: JournalEntry) -> None:
        """Reattach a deserialized entry under its original id
        (deserialization only — ids must not collide)."""
        if entry.request_id in self._entries:
            raise JournalError(
                f"journal already holds request id {entry.request_id}"
            )
        self._entries[entry.request_id] = entry
        self._next_id = max(self._next_id, entry.request_id + 1)

    def record_checkpoint(self, request_id: int, checkpoint) -> None:
        """Park an interrupted execution's completed subtrees on the
        entry (later checkpoints overwrite — they are supersets)."""
        entry = self.get(request_id)
        if checkpoint is not None and len(checkpoint):
            entry.checkpoint = checkpoint

    def record_attempt(self, request_id: int) -> int:
        """Count one chaos-interrupt requeue; returns the new total."""
        entry = self.get(request_id)
        entry.attempts += 1
        return entry.attempts

    def record_completed(self, request_id: int, status: str) -> None:
        """Journal a terminal outcome; the entry will never replay."""
        entry = self.get(request_id)
        entry.state = COMPLETED
        entry.outcome_status = status

    # ------------------------------------------------------------------
    # Recovery queries
    # ------------------------------------------------------------------

    def incomplete(self) -> List[JournalEntry]:
        """Entries admitted but never completed, in admission order —
        exactly the set a restarted service must resume or reject."""
        return [entry for entry in self.entries() if not entry.complete]

    def counts(self) -> Dict[str, int]:
        """``{admitted, completed, incomplete}`` totals."""
        completed = sum(1 for e in self._entries.values() if e.complete)
        return {
            "admitted": len(self._entries),
            "completed": completed,
            "incomplete": len(self._entries) - completed,
        }

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            f"ServiceJournal({counts['admitted']} admitted, "
            f"{counts['completed']} completed)"
        )
