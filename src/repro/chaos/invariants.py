"""The online invariant monitor.

Following the chase-based correctness framing (safety as a *checkable
condition*, not a hope), :class:`InvariantMonitor` turns the service's
safety story into live assertions evaluated while requests flow:

``termination``
    Every admitted request reaches a terminal outcome — a result or a
    structured :class:`~repro.service.admission.Rejection` — never a
    silent hang.  Checked continuously (an outcome without an admission
    is also a violation) and settled by :meth:`assert_quiescent` once
    the system drains.
``authorized-transfer``
    No transfer ships without a covering authorization at the
    then-current policy epoch.  Beyond trusting the executor's audit
    log, every delivered result is *independently re-probed*: each
    recorded transfer is re-authorized against the exact policy object
    the run was audited under (an :class:`~repro.engine.audit.AuditLog`
    probe the executor never sees).
``single-execution``
    Coalesced single-flight keys execute at most once per epoch: while
    a result flight is open for an execution key (which pins the policy
    epoch), no second execution of that key may start.  Keys may
    legitimately re-execute after their flight releases — the plan
    cache, not single-flight, is the long-term memo — so the invariant
    is over *concurrent* duplicates.
``breaker-transition`` / ``degrade-level``
    Health state machines only move along legal edges: breakers
    ``closed → open → half-open → {closed, open}``, degrade levels
    within the ladder ``{0, 1, 2}``.
``epoch-monotonic``
    Policy epochs only move forward; a backwards epoch would let a
    revoked plan revalidate.

Violations never raise into the serving path: they are recorded with
the chaos seed and logical clock for one-command replay, counted into
``repro_invariant_violations_total`` and emitted as trace events when
an ``obs`` context is attached.  The monitor is structurally zero-cost
when off — every call site guards with ``if monitor is not None`` (the
PR 4 pattern), so a service without a monitor carries no dispatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.distributed.health import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN
from repro.engine.audit import AuditLog
from repro.service.admission import DEGRADE_NORMAL, DEGRADE_SHED

#: Invariant identifiers (the ``invariant`` of every :class:`Violation`).
INV_TERMINATION = "termination"
INV_AUTHORIZED_TRANSFER = "authorized-transfer"
INV_SINGLE_EXECUTION = "single-execution"
INV_BREAKER_TRANSITION = "breaker-transition"
INV_DEGRADE_LEVEL = "degrade-level"
INV_EPOCH_MONOTONIC = "epoch-monotonic"

#: Legal circuit-breaker edges (see ``distributed/health.py``).
_LEGAL_BREAKER_EDGES = frozenset(
    [
        (STATE_CLOSED, STATE_OPEN),
        (STATE_OPEN, STATE_HALF_OPEN),
        (STATE_HALF_OPEN, STATE_CLOSED),
        (STATE_HALF_OPEN, STATE_OPEN),
    ]
)


class Violation:
    """One observed invariant violation.

    Attributes:
        invariant: the ``INV_*`` identifier.
        detail: what was observed.
        seed: the chaos seed in force (replay handle; ``None`` when no
            schedule is bound).
        clock: the chaos schedule's logical clock at observation.
        context: structured observation data (JSON-safe).
    """

    __slots__ = ("invariant", "detail", "seed", "clock", "context")

    def __init__(
        self,
        invariant: str,
        detail: str,
        seed: Optional[int] = None,
        clock: float = 0.0,
        context: Optional[dict] = None,
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.seed = seed
        self.clock = clock
        self.context = dict(context or {})

    def to_dict(self) -> dict:
        """JSON-safe rendering (rides in violation artifacts)."""
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "seed": self.seed,
            "clock": self.clock,
            "context": self.context,
        }

    def __repr__(self) -> str:
        return f"Violation({self.invariant}: {self.detail})"


class InvariantMonitor:
    """Live safety assertions over one :class:`QueryService`.

    Attach via ``QueryService(monitor=...)``; the service (and its
    single-flight gates) call the ``on_*`` / ``flight_*`` hooks at the
    lifecycle points documented on each method.  All hooks are cheap
    dict operations — the monitor never blocks the serving path and
    never raises into it.

    Args:
        metrics: optional
            :class:`~repro.obs.metrics.MetricsRegistry`; violations
            count into ``repro_invariant_violations_total`` (labelled
            by invariant) and checks into
            ``repro_invariant_checks_total``.
        trace: optional :class:`~repro.obs.trace.TraceContext`;
            violations emit ``invariant_violation`` events.
    """

    def __init__(self, metrics=None, trace=None) -> None:
        self._metrics = metrics
        self._trace = trace
        self._chaos = None
        self.violations: List[Violation] = []
        self._admitted: Dict[int, str] = {}
        self._settled: Dict[int, str] = {}
        self._checks = 0
        self._open_flights: Set[object] = set()
        self._open_executions: Dict[object, int] = {}
        self._executions: Dict[object, int] = {}
        self._last_epoch: Optional[int] = None
        self._transfers_probed = 0
        self._issued = 0
        # Probe-verdict memo: authorize() is a pure function of
        # (policy@epoch, sender, receiver, profile), and repeated
        # executions of the same cached plan re-ship value-equal
        # profiles, so identical probes recur constantly.  Values keep
        # the policy alive so the id()-based key component can never be
        # reused by a new object.
        self._probe_memo: Dict[tuple, tuple] = {}
        # Audit-identity memo: coalesced followers deliver the leader's
        # result object verbatim, so the same audit log would be
        # re-walked once per sharer.  The verdict is deterministic per
        # physical audit; values keep the audit alive so ids stay valid.
        self._audit_memo: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind_chaos(self, schedule) -> None:
        """Stamp future violations with ``schedule``'s seed and clock."""
        self._chaos = schedule

    @property
    def ok(self) -> bool:
        """Whether no violation has been observed."""
        return not self.violations

    @property
    def checks(self) -> int:
        """Hook invocations evaluated so far."""
        return self._checks

    def _violate(self, invariant: str, detail: str, **context) -> None:
        violation = Violation(
            invariant,
            detail,
            seed=self._chaos.seed if self._chaos is not None else None,
            clock=self._chaos.clock if self._chaos is not None else 0.0,
            context=context,
        )
        self.violations.append(violation)
        if self._metrics is not None:
            self._metrics.inc(
                "repro_invariant_violations_total", invariant=invariant
            )
        if self._trace is not None:
            self._trace.event(
                "invariant_violation", "chaos", invariant=invariant,
                detail=detail,
            )

    def _checked(self) -> None:
        # Hot hooks inline this body rather than paying a call per
        # request; keep the two in sync.
        self._checks += 1
        if self._metrics is not None:
            self._metrics.inc("repro_invariant_checks_total")

    # ------------------------------------------------------------------
    # Termination: every admitted request reaches a terminal outcome
    # ------------------------------------------------------------------

    def issue_id(self) -> int:
        """A lineage-unique request id for journal-less services.

        The monitor outlives kill/restart cycles, so ids it issues never
        collide across service instances — a restarted service with its
        own local counter would re-use ids and trip the termination
        invariant spuriously."""
        self._issued += 1
        return self._issued

    def on_admitted(self, request_id: int, tenant: str) -> None:
        """The service admitted ``request_id`` (pre-queue)."""
        self._checks += 1
        if self._metrics is not None:
            self._metrics.inc("repro_invariant_checks_total")
        if request_id in self._admitted or request_id in self._settled:
            self._violate(
                INV_TERMINATION,
                f"request {request_id} admitted twice",
                request_id=request_id,
                tenant=tenant,
            )
            return
        self._admitted[request_id] = tenant

    def adopt(self, request_id: int, tenant: str) -> None:
        """Recovery adopts a predecessor's admission obligation.

        Idempotent: when the same monitor was threaded through the
        kill/restart (the chaos harness does), the obligation is already
        tracked and this is a no-op; with a fresh monitor it registers
        the journaled admission so the recovery outcome settles cleanly
        instead of reading as "resolved without admission"."""
        self._checked()
        if request_id in self._admitted or request_id in self._settled:
            return
        self._admitted[request_id] = tenant

    def on_outcome(self, request_id: int, status: str) -> None:
        """The service resolved ``request_id`` with terminal ``status``."""
        self._checks += 1
        if self._metrics is not None:
            self._metrics.inc("repro_invariant_checks_total")
        if request_id in self._settled:
            self._violate(
                INV_TERMINATION,
                f"request {request_id} resolved twice "
                f"({self._settled[request_id]} then {status})",
                request_id=request_id,
                status=status,
            )
            return
        if request_id not in self._admitted:
            self._violate(
                INV_TERMINATION,
                f"request {request_id} resolved without admission",
                request_id=request_id,
                status=status,
            )
            return
        del self._admitted[request_id]
        self._settled[request_id] = status

    def pending(self) -> List[int]:
        """Admitted requests without a terminal outcome (live view)."""
        return sorted(self._admitted)

    def assert_quiescent(self) -> None:
        """Settle the termination invariant: call once the service has
        drained (or been recovered) — any admitted request still without
        an outcome is a violation, as is any flight or execution left
        open."""
        self._checked()
        for request_id, tenant in sorted(self._admitted.items()):
            self._violate(
                INV_TERMINATION,
                f"request {request_id} (tenant {tenant}) admitted but never "
                "resolved",
                request_id=request_id,
                tenant=tenant,
            )
        self._admitted.clear()
        for key, depth in sorted(self._open_executions.items(), key=str):
            if depth > 0:
                self._violate(
                    INV_SINGLE_EXECUTION,
                    f"execution for key {key!r} still open at quiescence",
                    depth=depth,
                )
        self._open_executions.clear()
        self._open_flights.clear()

    # ------------------------------------------------------------------
    # Authorized transfers: re-probe every delivered result
    # ------------------------------------------------------------------

    def on_result(self, request_id: int, result) -> None:
        """An ``ok`` outcome delivered ``result`` — re-verify its audit.

        Checks the executor's own log (no recorded violations, every
        transfer stamped) and then *independently re-probes* each
        transfer against the policy the run was audited under, through
        a fresh non-enforcing :class:`~repro.engine.audit.AuditLog`.
        Because pipeline execution is synchronous, that policy object
        is exactly the then-current policy of the transfers' epoch.
        """
        self._checks += 1
        if self._metrics is not None:
            self._metrics.inc("repro_invariant_checks_total")
        audit = getattr(result, "audit", None)
        if audit is None:
            self._violate(
                INV_AUTHORIZED_TRANSFER,
                f"request {request_id} delivered an unaudited result",
                request_id=request_id,
            )
            return
        # Coalesced followers deliver the leader's result object, so the
        # same physical audit arrives once per sharer; a clean verdict is
        # deterministic per audit, so re-walking it per follower buys
        # nothing.  Dirty audits fall through so every affected request
        # logs its own violation.
        hit = self._audit_memo.get(id(audit))
        if hit is not None and hit[0] is audit:
            self._transfers_probed += hit[1]
            return
        if audit.violations:
            self._violate(
                INV_AUTHORIZED_TRANSFER,
                f"request {request_id} shipped {len(audit.violations)} "
                "transfer(s) the audit flagged",
                request_id=request_id,
                violations=len(audit.violations),
            )
        clean = not audit.violations
        checked = audit.checked
        policy = audit.policy
        policy_id = id(policy)
        epoch = getattr(policy, "epoch", None)
        memo = self._probe_memo
        if len(memo) > 4096:
            memo.clear()
        self._transfers_probed += len(checked)
        probe = None
        for transfer in checked:
            key = (
                policy_id, epoch, transfer.sender, transfer.receiver,
                transfer.profile,
            )
            hit = memo.get(key)
            if hit is not None:
                allowed = hit[1]
            else:
                if probe is None:
                    probe = AuditLog(policy, enforce=False)
                allowed, _ = probe.authorize(
                    transfer.sender, transfer.receiver, transfer.profile
                )
                memo[key] = (policy, allowed)
            if not allowed:
                clean = False
                self._violate(
                    INV_AUTHORIZED_TRANSFER,
                    f"transfer {transfer.sender} -> {transfer.receiver} of "
                    f"{transfer.profile} has no covering authorization at "
                    "its epoch",
                    request_id=request_id,
                    sender=transfer.sender,
                    receiver=transfer.receiver,
                )
        if clean:
            if len(self._audit_memo) > 2048:
                self._audit_memo.clear()
            self._audit_memo[id(audit)] = (audit, len(checked))

    # ------------------------------------------------------------------
    # Single execution per coalesced key
    # ------------------------------------------------------------------

    def flight_started(self, key: object) -> None:
        """A single-flight leader began computing ``key`` (observer
        protocol of :class:`~repro.service.singleflight.SingleFlight`)."""
        self._checks += 1
        if self._metrics is not None:
            self._metrics.inc("repro_invariant_checks_total")
        self._open_flights.add(key)

    def flight_finished(self, key: object) -> None:
        """The leader for ``key`` resolved (any way)."""
        self._checks += 1
        if self._metrics is not None:
            self._metrics.inc("repro_invariant_checks_total")
        self._open_flights.discard(key)

    def flight_promoted(self, key: object) -> None:
        """A follower took over a cancelled leader's flight."""
        self._checked()

    def on_execution_start(self, exec_key: object) -> None:
        """The service is about to run the pipeline for ``exec_key``
        (the ``(fingerprint, recipient, epoch)`` result-flight key)."""
        self._checks += 1
        if self._metrics is not None:
            self._metrics.inc("repro_invariant_checks_total")
        open_now = self._open_executions.get(exec_key, 0)
        if open_now >= 1:
            self._violate(
                INV_SINGLE_EXECUTION,
                f"execution key {exec_key!r} started a second concurrent "
                "execution — coalescing must share the leader's run",
                depth=open_now + 1,
            )
        self._open_executions[exec_key] = open_now + 1
        self._executions[exec_key] = self._executions.get(exec_key, 0) + 1

    def on_execution_end(self, exec_key: object) -> None:
        """The pipeline run for ``exec_key`` returned (or raised)."""
        self._checks += 1
        if self._metrics is not None:
            self._metrics.inc("repro_invariant_checks_total")
        open_now = self._open_executions.get(exec_key, 0)
        if open_now <= 0:
            self._violate(
                INV_SINGLE_EXECUTION,
                f"execution key {exec_key!r} ended without a start",
            )
            return
        self._open_executions[exec_key] = open_now - 1

    # ------------------------------------------------------------------
    # Legal health-state transitions
    # ------------------------------------------------------------------

    def on_breaker(self, tenant: str, old: str, new: str) -> None:
        """A tenant breaker moved ``old -> new`` (wired through
        :meth:`CircuitBreaker.set_transition_observer`)."""
        self._checked()
        if (old, new) not in _LEGAL_BREAKER_EDGES:
            self._violate(
                INV_BREAKER_TRANSITION,
                f"tenant {tenant!r} breaker took illegal edge "
                f"{old} -> {new}",
                tenant=tenant,
                old=old,
                new=new,
            )

    def on_degrade(self, old: int, new: int) -> None:
        """The service's degrade level moved ``old -> new``."""
        self._checked()
        if not DEGRADE_NORMAL <= new <= DEGRADE_SHED:
            self._violate(
                INV_DEGRADE_LEVEL,
                f"degrade level left the ladder: {old} -> {new}",
                old=old,
                new=new,
            )

    def on_epoch(self, old: int, new: int) -> None:
        """The policy epoch moved ``old -> new`` (grant/revoke)."""
        self._checked()
        if new < old:
            self._violate(
                INV_EPOCH_MONOTONIC,
                f"policy epoch moved backwards: {old} -> {new}",
                old=old,
                new=new,
            )
        elif self._last_epoch is not None and new < self._last_epoch:
            self._violate(
                INV_EPOCH_MONOTONIC,
                f"policy epoch moved backwards: {self._last_epoch} -> {new}",
                old=old,
                new=new,
            )
        self._last_epoch = max(
            new, self._last_epoch if self._last_epoch is not None else new
        )

    # ------------------------------------------------------------------
    # Reporting / replay
    # ------------------------------------------------------------------

    def report(self) -> dict:
        """JSON-safe monitor state (benches, artifacts, tests)."""
        return {
            "ok": self.ok,
            "checks": self._checks,
            "violations": [v.to_dict() for v in self.violations],
            "pending": self.pending(),
            "settled": len(self._settled),
            "transfers_probed": self._transfers_probed,
            "distinct_exec_keys": len(self._executions),
        }

    def write_artifact(self, path: str, extra: Optional[dict] = None) -> str:
        """Write a violation-replay artifact.

        The artifact carries every violation, the bound chaos
        schedule's full config and event log, and a ready-to-run replay
        command — one file is everything needed to reproduce the run
        deterministically (``repro.cli chaos --replay <path>``).
        """
        from repro.io.serialize import save_json

        payload: dict = {"report": self.report()}
        if self._chaos is not None:
            payload["chaos"] = {
                "config": self._chaos.config_dict(),
                "events": self._chaos.event_log(),
                "summary": self._chaos.summary(),
            }
            payload["replay"] = (
                f"python -m repro.cli chaos --replay {path}"
            )
        if extra:
            payload["run"] = dict(extra)
        save_json(payload, path)
        return path

    def __repr__(self) -> str:
        return (
            f"InvariantMonitor(checks={self._checks}, "
            f"violations={len(self.violations)}, pending={len(self._admitted)})"
        )
