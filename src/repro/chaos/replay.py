"""The seeded chaos-run harness: drive, kill, recover, report, replay.

:func:`run_chaos` is the engine behind ``make test-chaos``, the ABL16
bench and the ``repro.cli chaos`` subcommand: it drives a configured
request mix through a :class:`~repro.service.service.QueryService`
wired with a :class:`~repro.chaos.schedule.ChaosSchedule`, a
:class:`~repro.chaos.journal.ServiceJournal` (when recovery is on) and
an :class:`~repro.chaos.invariants.InvariantMonitor`; at every
kill point it crashes the service mid-flight and recovers a fresh
instance over the same journal.  The whole run lives in the schedule's
logical clock and seeded RNGs, so the same
:class:`ChaosRunConfig` produces the same :meth:`ChaosReport.digest` —
which is what makes :func:`replay_artifact` a one-command, bit-exact
reproduction of any recorded violation.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.invariants import InvariantMonitor
from repro.chaos.journal import ServiceJournal
from repro.chaos.schedule import ChaosSchedule
from repro.exceptions import ChaosError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.service.service import OK, QueryService, ServiceError
from repro.service.tenants import TenantConfig
from repro.testing import grant

#: The default request mix (the ABL14 serving mix: one heavy join, one
#: two-join prefix, two cheap probes) over the medical workload.
DEFAULT_QUERIES = (
    "SELECT Patient, Physician, Plan, HealthAid "
    "FROM Insurance JOIN Nat_registry ON Holder = Citizen "
    "JOIN Hospital ON Citizen = Patient",
    "SELECT Holder, Plan, Citizen "
    "FROM Insurance JOIN Nat_registry ON Holder = Citizen",
    "SELECT Patient, Physician FROM Hospital",
    "SELECT Citizen, HealthAid FROM Nat_registry",
)

DEFAULT_TENANTS = (
    TenantConfig("gold", priority=2, rate=1e6, burst=1_000_000),
    TenantConfig("silver", priority=1, rate=1e6, burst=1_000_000),
    TenantConfig("bronze", priority=0, rate=1e6, burst=1_000_000),
)

#: The default policy-storm rule: a widening grant *not* in the base
#: medical policy, toggled on/off by storm events.
DEFAULT_STORM_RULES = (grant("S_D", "Citizen HealthAid"),)


class ChaosRunConfig:
    """Everything a chaos run needs — and everything a replay needs.

    The config is JSON-round-trippable (:meth:`to_dict` /
    :meth:`from_dict`), which is what makes violation artifacts
    self-contained replay handles.

    Args:
        seed: the schedule seed (the replay handle).
        requests: total requests driven through the service.
        workers: service worker coroutines.
        recovery: thread a :class:`ServiceJournal` through kill/restart
            cycles (on), or let kills shed in-flight work (off — the
            ABL16 baseline).
        kill_every / max_kills: service kill/restart cadence (see
            :meth:`ChaosSchedule.kill_due`).
        cancel_probability / leader_crash_probability /
        stall_probability / storm_probability /
        clock_jump_probability / clock_jump / stall_ticks: forwarded to
            :class:`ChaosSchedule`.
        spins: event-loop turns yielded between submissions (gives
            workers deterministic room to interleave).
        max_queue: service queue bound.
        max_chaos_retries: per-request chaos-interrupt budget.
        queries: the request mix (cycled via the seeded workload RNG).
        storm_rules: rules the policy storm toggles (default: one
            widening medical grant).
    """

    __slots__ = (
        "seed", "requests", "workers", "recovery", "kill_every",
        "max_kills", "cancel_probability", "leader_crash_probability",
        "stall_probability", "stall_ticks", "storm_probability",
        "clock_jump_probability", "clock_jump", "spins", "max_queue",
        "max_chaos_retries", "queries", "storm_rules",
    )

    def __init__(
        self,
        seed: int = 0,
        requests: int = 200,
        workers: int = 8,
        recovery: bool = True,
        kill_every: Optional[int] = None,
        max_kills: Optional[int] = None,
        cancel_probability: float = 0.0,
        leader_crash_probability: float = 0.0,
        stall_probability: float = 0.0,
        stall_ticks: int = 3,
        storm_probability: float = 0.0,
        clock_jump_probability: float = 0.0,
        clock_jump: float = 0.0,
        spins: int = 3,
        max_queue: int = 512,
        max_chaos_retries: int = 3,
        queries: Sequence[str] = DEFAULT_QUERIES,
        storm_rules: Sequence[object] = DEFAULT_STORM_RULES,
    ) -> None:
        if requests < 1:
            raise ChaosError(f"requests must be >= 1, got {requests}")
        if spins < 0:
            raise ChaosError(f"spins cannot be negative, got {spins}")
        self.seed = int(seed)
        self.requests = int(requests)
        self.workers = int(workers)
        self.recovery = bool(recovery)
        self.kill_every = kill_every
        self.max_kills = max_kills
        self.cancel_probability = cancel_probability
        self.leader_crash_probability = leader_crash_probability
        self.stall_probability = stall_probability
        self.stall_ticks = stall_ticks
        self.storm_probability = storm_probability
        self.clock_jump_probability = clock_jump_probability
        self.clock_jump = clock_jump
        self.spins = int(spins)
        self.max_queue = int(max_queue)
        self.max_chaos_retries = int(max_chaos_retries)
        self.queries = tuple(queries)
        self.storm_rules = tuple(storm_rules)

    def schedule(self) -> ChaosSchedule:
        """A fresh :class:`ChaosSchedule` for one run of this config."""
        return ChaosSchedule(
            seed=self.seed,
            cancel_probability=self.cancel_probability,
            leader_crash_probability=self.leader_crash_probability,
            stall_probability=self.stall_probability,
            stall_ticks=self.stall_ticks,
            storm_probability=self.storm_probability,
            storm_rules=self.storm_rules,
            clock_jump_probability=self.clock_jump_probability,
            clock_jump=self.clock_jump,
            kill_every=self.kill_every,
            max_kills=self.max_kills,
        )

    def to_dict(self) -> dict:
        """JSON-safe encoding (rides in violation artifacts)."""
        from repro.io.serialize import _rule_to_dict

        return {
            "seed": self.seed,
            "requests": self.requests,
            "workers": self.workers,
            "recovery": self.recovery,
            "kill_every": self.kill_every,
            "max_kills": self.max_kills,
            "cancel_probability": self.cancel_probability,
            "leader_crash_probability": self.leader_crash_probability,
            "stall_probability": self.stall_probability,
            "stall_ticks": self.stall_ticks,
            "storm_probability": self.storm_probability,
            "clock_jump_probability": self.clock_jump_probability,
            "clock_jump": self.clock_jump,
            "spins": self.spins,
            "max_queue": self.max_queue,
            "max_chaos_retries": self.max_chaos_retries,
            "queries": list(self.queries),
            "storm_rules": [_rule_to_dict(rule) for rule in self.storm_rules],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosRunConfig":
        """Decode a config previously encoded by :meth:`to_dict`."""
        from repro.core.authorization import Authorization
        from repro.io.serialize import _path_from_pairs

        rules = [
            Authorization(
                entry["attributes"],
                _path_from_pairs(entry.get("join_path", [])),
                entry["server"],
            )
            for entry in data.get("storm_rules", [])
        ]
        kwargs = {
            key: data[key]
            for key in (
                "seed", "requests", "workers", "recovery", "kill_every",
                "max_kills", "cancel_probability",
                "leader_crash_probability", "stall_probability",
                "stall_ticks", "storm_probability",
                "clock_jump_probability", "clock_jump", "spins",
                "max_queue", "max_chaos_retries",
            )
            if key in data
        }
        if "queries" in data:
            kwargs["queries"] = tuple(data["queries"])
        if rules:
            kwargs["storm_rules"] = tuple(rules)
        return cls(**kwargs)


class ChaosReport:
    """One chaos run's full, digestible outcome.

    Attributes:
        config: the :class:`ChaosRunConfig` that produced the run.
        statuses: per-request terminal statuses, in submission order.
        snapshot: the final service's counter snapshot.
        monitor: the invariant monitor's :meth:`report` dict.
        events: the schedule's injected-event log.
        kills: service kill/restart cycles performed.
        recovered: requests resolved by :meth:`QueryService.recover`.
        audit_violations: flagged transfers across all delivered
            results (must be 0 — the audit backstop).
    """

    __slots__ = (
        "config", "statuses", "snapshot", "monitor", "events", "kills",
        "recovered", "audit_violations",
    )

    def __init__(
        self,
        config: ChaosRunConfig,
        statuses: Sequence[str],
        snapshot: dict,
        monitor: dict,
        events: List[dict],
        kills: int,
        recovered: int,
        audit_violations: int,
    ) -> None:
        self.config = config
        self.statuses = list(statuses)
        self.snapshot = snapshot
        self.monitor = monitor
        self.events = events
        self.kills = kills
        self.recovered = recovered
        self.audit_violations = audit_violations

    @property
    def ok_count(self) -> int:
        """Requests that completed with a delivered, audited result."""
        return sum(1 for status in self.statuses if status == OK)

    @property
    def invariant_violations(self) -> int:
        """Invariant violations the monitor observed."""
        return len(self.monitor.get("violations", ()))

    def status_counts(self) -> Dict[str, int]:
        """``status -> count`` over the request outcomes."""
        counts: Dict[str, int] = {}
        for status in self.statuses:
            counts[status] = counts.get(status, 0) + 1
        return counts

    def digest(self) -> str:
        """A deterministic fingerprint of the run.

        Covers the per-request outcome statuses and the full injected
        event log: two runs replay identically iff their digests match.
        """
        payload = json.dumps(
            {"statuses": self.statuses, "events": self.events},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        """JSON-safe rendering (benches, artifacts)."""
        return {
            "config": self.config.to_dict(),
            "status_counts": self.status_counts(),
            "ok": self.ok_count,
            "kills": self.kills,
            "recovered": self.recovered,
            "invariant_violations": self.invariant_violations,
            "audit_violations": self.audit_violations,
            "digest": self.digest(),
            "snapshot": self.snapshot,
            "monitor": self.monitor,
            "events": len(self.events),
        }

    def __repr__(self) -> str:
        return (
            f"ChaosReport(seed={self.config.seed}, ok={self.ok_count}/"
            f"{len(self.statuses)}, kills={self.kills}, "
            f"violations={self.invariant_violations})"
        )


def default_system_factory():
    """A fresh medical-workload distributed system (plan cache on)."""
    from repro.distributed.system import DistributedSystem
    from repro.workloads.medical import (
        generate_instances,
        medical_catalog,
        medical_policy,
    )

    system = DistributedSystem(
        medical_catalog(), medical_policy(), plan_cache=True
    )
    system.load_instances(generate_instances(seed=7, citizens=4))
    return system


def _workload(config: ChaosRunConfig) -> List[Tuple[str, str]]:
    """The deterministic request mix: seeded query draw per request,
    tenants round-robin."""
    import random

    rng = random.Random(config.seed ^ 0x0AB0_16)
    names = [tenant.name for tenant in DEFAULT_TENANTS]
    return [
        (
            config.queries[rng.randrange(len(config.queries))],
            names[index % len(names)],
        )
        for index in range(config.requests)
    ]


def run_chaos(
    config: ChaosRunConfig,
    system_factory: Optional[Callable[[], object]] = None,
    monitor: Optional[InvariantMonitor] = None,
    journal: Optional[ServiceJournal] = None,
) -> ChaosReport:
    """Drive one seeded chaos run end-to-end and report.

    Builds the system (``system_factory`` or the default medical
    workload), wires schedule + journal (recovery on) + monitor into a
    :class:`QueryService`, submits the config's request mix with
    deterministic interleaving, crashes and recovers the service at
    every kill point, drains, and settles the termination invariant
    with :meth:`InvariantMonitor.assert_quiescent`.

    Args:
        config: the run configuration.
        system_factory: zero-argument system builder (the same factory
            must be used to replay a run).
        monitor / journal: inject pre-built instances (tests); by
            default the run builds its own.
    """
    factory = system_factory or default_system_factory
    system = factory()
    schedule = config.schedule()
    run_journal = journal if journal is not None else (
        ServiceJournal() if config.recovery else None
    )
    metrics = MetricsRegistry()
    run_monitor = monitor if monitor is not None else InvariantMonitor(
        metrics=metrics
    )
    requests = _workload(config)

    def make_service() -> QueryService:
        return QueryService(
            system,
            tenants=DEFAULT_TENANTS,
            workers=config.workers,
            max_queue=config.max_queue,
            metrics=metrics,
            chaos=schedule,
            journal=run_journal,
            monitor=run_monitor,
            max_chaos_retries=config.max_chaos_retries,
        )

    state = {"service": make_service(), "kills": 0, "recovered": 0}

    async def submit_one(query: str, tenant: str):
        while True:
            service = state["service"]
            try:
                return await service.submit(query, tenant=tenant)
            except ServiceError:
                # The service was killed between task creation and
                # submission; retry against the successor.
                await asyncio.sleep(0)

    async def drive():
        await state["service"].start()
        tasks = []
        for query, tenant in requests:
            tasks.append(asyncio.ensure_future(submit_one(query, tenant)))
            for _ in range(config.spins):
                await asyncio.sleep(0)
            if schedule.kill_due():
                await state["service"].kill()
                state["kills"] += 1
                successor = make_service()
                await successor.start()
                if run_journal is not None:
                    recovered = await successor.recover()
                    state["recovered"] += len(recovered)
                state["service"] = successor
        outcomes = await asyncio.gather(*tasks)
        await state["service"].stop()
        return outcomes

    outcomes = asyncio.run(drive())
    run_monitor.assert_quiescent()
    audit_violations = sum(
        len(outcome.result.audit.violations)
        for outcome in outcomes
        if outcome.result is not None and outcome.result.audit is not None
    )
    return ChaosReport(
        config,
        [outcome.status for outcome in outcomes],
        state["service"].snapshot(),
        run_monitor.report(),
        schedule.event_log(),
        kills=state["kills"],
        recovered=state["recovered"],
        audit_violations=audit_violations,
    )


def replay_artifact(
    path: str,
    system_factory: Optional[Callable[[], object]] = None,
) -> Tuple[ChaosReport, bool]:
    """Re-run the chaos run a violation artifact recorded.

    Returns ``(report, matched)`` where ``matched`` says whether the
    replayed run's digest equals the recorded one — ``True`` means the
    artifact reproduced bit-exactly.

    Raises:
        ReproError: when the artifact lacks a run config.
    """
    from repro.io.serialize import load_json

    payload = load_json(path)
    run = payload.get("run") or {}
    if "config" not in run:
        raise ReproError(
            f"artifact {path!r} carries no run config; cannot replay"
        )
    config = ChaosRunConfig.from_dict(run["config"])
    report = run_chaos(config, system_factory=system_factory)
    recorded = run.get("digest")
    return report, (recorded is None or report.digest() == recorded)


def write_run_artifact(
    report: ChaosReport, monitor_report_path: str, monitor: InvariantMonitor
) -> str:
    """Write a violation/replay artifact for a completed run (the
    monitor contributes violations + chaos config, the report its
    config and digest)."""
    return monitor.write_artifact(
        monitor_report_path,
        extra={"config": report.config.to_dict(), "digest": report.digest()},
    )
