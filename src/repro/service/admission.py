"""Admission control: rate limits, bounded queueing, cost-aware shedding.

The admission controller is the service's front gate.  Every request
passes through :meth:`AdmissionController.admit` *before* it may queue;
the gate answers with an :class:`AdmissionTicket` or a structured
:class:`Rejection` — never an exception surprise, never a hang.  The
checks, in order (cheapest first):

1. **degrade ladder** — under overload the service raises its degrade
   level; at :data:`DEGRADE_SHED` only tenants at or above the
   priority floor are admitted (shed lowest-priority tenants first);
2. **per-tenant rate** — a token bucket per tenant
   (:class:`~repro.service.tenants.TokenBucket`); an empty bucket
   rejects with the exact ``retry_after`` at which a token exists;
3. **bounded queue** — a full global queue rejects rather than buffer
   without bound (retry after roughly one drain period);
4. **cost-aware shedding** — the request's *estimated* planner +
   execution bytes (static coster estimates over the base relations it
   touches, :func:`estimate_query_bytes`) must fit the capacity still
   unclaimed by in-flight queries; an oversized request is rejected
   with ``retry_after`` scaled to the backlog instead of starving
   everyone behind it.

Admission never consults the *policy* — authorization is decided by the
planner and re-verified at execution; the gate only manages load.  That
separation is what lets the service shed, queue and degrade without
ever relaxing the controlled-information-sharing guarantees.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.coster import TableStats
from repro.exceptions import ReproError
from repro.service.tenants import TenantConfig, TokenBucket

#: Degrade ladder levels (see ``docs/serving.md``): normal service,
#: degraded planning (no join-order search, tightened deadlines), and
#: priority shedding (only tenants at/above the floor are admitted).
DEGRADE_NORMAL = 0
DEGRADE_PLANNING = 1
DEGRADE_SHED = 2

#: Rejection reasons (the ``reason`` of every :class:`Rejection`).
REJECT_RATE = "rate-limited"
REJECT_QUEUE_FULL = "queue-full"
REJECT_COST = "over-capacity"
REJECT_PRIORITY = "shed-priority"
REJECT_DEADLINE = "deadline-expired"
REJECT_SHUTDOWN = "shutting-down"
REJECT_BREAKER = "tenant-breaker-open"
REJECT_RECOVERY = "recovery-rejected"


class Rejection:
    """A structured, machine-actionable admission refusal.

    Attributes:
        reason: one of the ``REJECT_*`` constants.
        tenant: the refused tenant's name.
        retry_after: clock units after which retrying is sensible
            (0.0 when retrying immediately is fine, e.g. after a drain).
        detail: human-readable elaboration.
        degrade_level: the service's degrade level at refusal time.
        queue_depth: queued requests at refusal time.
    """

    __slots__ = (
        "reason", "tenant", "retry_after", "detail", "degrade_level",
        "queue_depth",
    )

    def __init__(
        self,
        reason: str,
        tenant: str,
        retry_after: float = 0.0,
        detail: str = "",
        degrade_level: int = DEGRADE_NORMAL,
        queue_depth: int = 0,
    ) -> None:
        self.reason = reason
        self.tenant = tenant
        self.retry_after = max(0.0, float(retry_after))
        self.detail = detail
        self.degrade_level = degrade_level
        self.queue_depth = queue_depth

    def to_dict(self) -> dict:
        """JSON-safe rendering (ships on shed service responses)."""
        return {
            "reason": self.reason,
            "tenant": self.tenant,
            "retry_after": self.retry_after,
            "detail": self.detail,
            "degrade_level": self.degrade_level,
            "queue_depth": self.queue_depth,
        }

    def __repr__(self) -> str:
        return (
            f"Rejection({self.reason!r}, tenant={self.tenant!r}, "
            f"retry_after={self.retry_after:.3f})"
        )


class AdmissionError(ReproError):
    """Raised by callers that prefer exceptions over shed outcomes;
    carries the :class:`Rejection`."""

    def __init__(self, rejection: Rejection) -> None:
        super().__init__(
            f"admission refused ({rejection.reason}) for tenant "
            f"{rejection.tenant!r}: retry after {rejection.retry_after:.3f}"
        )
        self.rejection = rejection


class AdmissionTicket:
    """Proof of admission for one request.

    Attributes:
        tenant: the admitting tenant's config.
        admitted_at: clock timestamp of admission.
        admitted_epoch: the policy epoch in force at admission —
            execution re-probes against the *current* epoch, so a
            mid-queue revocation can never ride in on a stale ticket.
        cost_estimate: the estimated bytes this request holds against
            the service's capacity until it completes.
        degrade_level: degrade level at admission (level 1+ tickets
            execute without join-order search).
    """

    __slots__ = (
        "tenant", "admitted_at", "admitted_epoch", "cost_estimate",
        "degrade_level",
    )

    def __init__(
        self,
        tenant: TenantConfig,
        admitted_at: float,
        admitted_epoch: int,
        cost_estimate: float,
        degrade_level: int,
    ) -> None:
        self.tenant = tenant
        self.admitted_at = admitted_at
        self.admitted_epoch = admitted_epoch
        self.cost_estimate = cost_estimate
        self.degrade_level = degrade_level


def estimate_query_bytes(system, query) -> float:
    """Static pre-planning byte estimate of one query.

    Upper-bounds the data volume the query can put in motion as the sum
    of each referenced base relation's estimated shipment payload
    (:meth:`~repro.engine.coster.TableStats.bytes_for` over its full
    attribute set).  Deliberately plan-independent — admission runs
    *before* planning, so the estimate must not require one — and
    monotone: a query touching more data never estimates cheaper.

    Relations with no loaded instance estimate 0 bytes (there is
    nothing to ship).
    """
    from repro.algebra.tree import LeafNode

    kind, payload = system._parsed(query, memoize=system.plan_cache is not None)
    if kind == "tree":
        relations = [
            node.relation.name
            for node in payload
            if isinstance(node, LeafNode)
        ]
    else:
        relations = list(payload.relations)
    tables = system.tables()
    total = 0.0
    for name in relations:
        table = tables.get(name)
        if table is None or not len(table):
            continue
        stats = TableStats.of_table(table)
        total += stats.bytes_for(table.attributes)
    return total


class CostEstimator:
    """Memoizing wrapper of :func:`estimate_query_bytes`.

    Base-relation statistics are cached per concrete table object, so
    a 10k-request workload prices admission with one ``of_table`` scan
    per relation rather than one per request; reloading instances (a
    new :class:`~repro.engine.data.Table`) naturally invalidates.
    """

    def __init__(self, system) -> None:
        self._system = system
        self._stats: Dict[str, tuple] = {}

    def relation_bytes(self, name: str) -> float:
        """Estimated shipment payload of one base relation."""
        table = self._system.tables().get(name)
        if table is None or not len(table):
            return 0.0
        cached = self._stats.get(name)
        if cached is not None and cached[0] is table:
            return cached[1]
        stats = TableStats.of_table(table)
        payload = stats.bytes_for(table.attributes)
        self._stats[name] = (table, payload)
        return payload

    def estimate(self, query) -> float:
        """Estimated bytes of one query (see
        :func:`estimate_query_bytes` for semantics)."""
        from repro.algebra.tree import LeafNode

        system = self._system
        kind, payload = system._parsed(
            query, memoize=system.plan_cache is not None
        )
        if kind == "tree":
            relations = [
                node.relation.name
                for node in payload
                if isinstance(node, LeafNode)
            ]
        else:
            relations = list(payload.relations)
        return sum(self.relation_bytes(name) for name in relations)


class AdmissionController:
    """The service's front gate (see the module docstring for the
    check order).

    Args:
        tenants: ``name -> TenantConfig``; unknown tenants fall back to
            ``default_tenant``.
        default_tenant: config applied to tenants not explicitly
            configured.
        max_queue: bound on queued (admitted, not yet executing)
            requests.
        capacity_bytes: total estimated bytes the service will hold in
            flight at once; ``None`` disables cost-aware shedding,
            ``0`` deterministically sheds *every* costed request (the
            acceptance-test overload mode).
        shed_priority_floor: at :data:`DEGRADE_SHED`, tenants below
            this priority are refused.
    """

    def __init__(
        self,
        tenants: Optional[Dict[str, TenantConfig]] = None,
        default_tenant: Optional[TenantConfig] = None,
        max_queue: int = 256,
        capacity_bytes: Optional[float] = None,
        shed_priority_floor: int = 1,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(
                f"capacity_bytes must be >= 0 or None, got {capacity_bytes}"
            )
        self._tenants = dict(tenants or {})
        self._default = default_tenant or TenantConfig("default")
        self.max_queue = int(max_queue)
        self.capacity_bytes = (
            float(capacity_bytes) if capacity_bytes is not None else None
        )
        self.shed_priority_floor = int(shed_priority_floor)
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight_bytes = 0.0
        self._inflight = 0

    # ------------------------------------------------------------------
    # Tenant resolution
    # ------------------------------------------------------------------

    def tenant(self, name: str) -> TenantConfig:
        """The config governing ``name`` (the default for strangers)."""
        config = self._tenants.get(name)
        if config is not None:
            return config
        if name == self._default.name:
            return self._default
        # Strangers share the default tenant's *shape* but keep their
        # own name (and, below, their own bucket): one noisy stranger
        # must not exhaust every stranger's tokens.
        return TenantConfig(
            name,
            priority=self._default.priority,
            rate=self._default.rate,
            burst=self._default.burst,
            deadline=self._default.deadline,
        )

    def _bucket(self, config: TenantConfig) -> Optional[TokenBucket]:
        if config.rate is None:
            return None
        bucket = self._buckets.get(config.name)
        if bucket is None:
            bucket = self._buckets[config.name] = TokenBucket(
                config.rate, config.burst
            )
        return bucket

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def inflight_bytes(self) -> float:
        """Estimated bytes currently claimed by admitted requests."""
        return self._inflight_bytes

    @property
    def inflight(self) -> int:
        """Admitted requests not yet released."""
        return self._inflight

    def release(self, ticket: AdmissionTicket) -> None:
        """Return a completed (or shed-after-admission) request's
        capacity claim."""
        self._inflight_bytes = max(0.0, self._inflight_bytes - ticket.cost_estimate)
        self._inflight = max(0, self._inflight - 1)

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------

    def admit(
        self,
        tenant_name: str,
        now: float,
        queue_depth: int,
        cost_estimate: float = 0.0,
        degrade_level: int = DEGRADE_NORMAL,
        policy_epoch: int = 0,
    ):
        """One admission decision.

        Returns:
            An :class:`AdmissionTicket` on admission (the request's
            capacity claim is recorded), or a :class:`Rejection`.
        """
        config = self.tenant(tenant_name)
        if (
            degrade_level >= DEGRADE_SHED
            and config.priority < self.shed_priority_floor
        ):
            return Rejection(
                REJECT_PRIORITY,
                config.name,
                retry_after=self._drain_estimate(queue_depth),
                detail=(
                    f"service degraded to level {degrade_level}; only tenants "
                    f"with priority >= {self.shed_priority_floor} are admitted "
                    f"(yours: {config.priority})"
                ),
                degrade_level=degrade_level,
                queue_depth=queue_depth,
            )
        bucket = self._bucket(config)
        if bucket is not None and not bucket.try_take(now):
            return Rejection(
                REJECT_RATE,
                config.name,
                retry_after=bucket.retry_after(now),
                detail=f"token bucket empty (rate {config.rate}/s, "
                f"burst {config.burst})",
                degrade_level=degrade_level,
                queue_depth=queue_depth,
            )
        if queue_depth >= self.max_queue:
            return Rejection(
                REJECT_QUEUE_FULL,
                config.name,
                retry_after=self._drain_estimate(queue_depth),
                detail=f"global queue at bound ({queue_depth}/{self.max_queue})",
                degrade_level=degrade_level,
                queue_depth=queue_depth,
            )
        if self.capacity_bytes is not None:
            remaining = self.capacity_bytes - self._inflight_bytes
            if remaining <= 0.0 or cost_estimate > remaining:
                return Rejection(
                    REJECT_COST,
                    config.name,
                    retry_after=self._drain_estimate(max(1, self._inflight)),
                    detail=(
                        f"estimated {cost_estimate:.0f} B exceeds remaining "
                        f"capacity {max(0.0, remaining):.0f} B "
                        f"(total {self.capacity_bytes:.0f} B, "
                        f"{self._inflight_bytes:.0f} B in flight)"
                    ),
                    degrade_level=degrade_level,
                    queue_depth=queue_depth,
                )
        self._inflight_bytes += max(0.0, cost_estimate)
        self._inflight += 1
        return AdmissionTicket(
            config, now, policy_epoch, max(0.0, cost_estimate), degrade_level
        )

    @staticmethod
    def _drain_estimate(backlog: int) -> float:
        """A crude-but-honest retry hint: ~10ms of service per queued
        request, floored at one tick.  Callers treat it as advisory."""
        return max(0.01, 0.01 * backlog)

    def snapshot(self) -> dict:
        """JSON-safe controller state (for service stats and tests)."""
        return {
            "max_queue": self.max_queue,
            "capacity_bytes": self.capacity_bytes,
            "inflight": self._inflight,
            "inflight_bytes": self._inflight_bytes,
            "shed_priority_floor": self.shed_priority_floor,
            "tenants": sorted(self._tenants),
        }
