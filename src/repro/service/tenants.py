"""Tenant configuration and per-tenant token buckets.

A *tenant* is one requesting party of the multi-tenant query service —
a coalition member, an application, a user group.  Each tenant carries
its own rate limit (token bucket), a scheduling priority (higher is
served first and shed last) and an optional per-query deadline budget
charged for queue wait (reusing the PR 3
:class:`~repro.engine.deadline.DeadlineBudget` accounting).

Everything is clock-agnostic: buckets take ``now`` as an argument, so
the service can drive them from ``time.monotonic`` in production and
from a deterministic counter in tests and benches.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from repro.exceptions import ReproError


class TenantConfigError(ReproError, ValueError):
    """A tenant was configured with nonsense numbers."""


class TenantConfig:
    """Service-level contract of one tenant.

    Args:
        name: tenant identifier (used on metrics labels and audit
            trails).
        priority: scheduling weight; higher-priority tenants dequeue
            first and are shed last when the service degrades.  Any
            integer; ties break by admission order (FIFO).
        rate: sustained queries per second the tenant may submit
            (token-bucket refill rate).  ``None`` disables rate
            limiting for the tenant.
        burst: bucket capacity — how many queries may arrive back to
            back before the rate gate engages (default: ``rate``
            rounded up, minimum 1).
        deadline: optional per-query time allowance (clock units,
            usually seconds).  A request still queued when its
            allowance runs out is shed instead of executed — stale
            answers are worse than honest rejections.
        profile: when true the tenant's executions run under a
            :class:`~repro.profiling.QueryProfiler` — the service
            harvests each profile into its statistics store (when one
            is configured) and exports tenant-labeled
            ``repro_service_profile_*`` metrics.  Off by default: the
            profiler's per-operator bookkeeping is opt-in per tenant.
    """

    __slots__ = ("name", "priority", "rate", "burst", "deadline", "profile")

    def __init__(
        self,
        name: str,
        priority: int = 0,
        rate: Optional[float] = None,
        burst: Optional[int] = None,
        deadline: Optional[float] = None,
        profile: bool = False,
    ) -> None:
        if not name:
            raise TenantConfigError("tenant name must be non-empty")
        if rate is not None and (not math.isfinite(rate) or rate <= 0):
            raise TenantConfigError(
                f"tenant {name!r}: rate must be positive and finite, got {rate!r}"
            )
        if burst is not None and burst < 1:
            raise TenantConfigError(
                f"tenant {name!r}: burst must be >= 1, got {burst!r}"
            )
        if deadline is not None and (not math.isfinite(deadline) or deadline <= 0):
            raise TenantConfigError(
                f"tenant {name!r}: deadline must be positive and finite, "
                f"got {deadline!r}"
            )
        self.name = name
        self.priority = int(priority)
        self.rate = float(rate) if rate is not None else None
        if burst is not None:
            self.burst = int(burst)
        elif rate is not None:
            self.burst = max(1, int(math.ceil(rate)))
        else:
            self.burst = 1
        self.deadline = float(deadline) if deadline is not None else None
        self.profile = bool(profile)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TenantConfig":
        """Build from a JSON-ish dict (the CLI's ``--tenants`` file)."""
        known = {"name", "priority", "rate", "burst", "deadline", "profile"}
        unknown = set(data) - known
        if unknown:
            raise TenantConfigError(
                f"unknown tenant config keys: {sorted(unknown)}"
            )
        if "name" not in data:
            raise TenantConfigError("tenant config needs a 'name'")
        return cls(
            str(data["name"]),
            priority=int(data.get("priority", 0)),
            rate=data.get("rate"),
            burst=data.get("burst"),
            deadline=data.get("deadline"),
            profile=bool(data.get("profile", False)),
        )

    def __repr__(self) -> str:
        return (
            f"TenantConfig({self.name!r}, priority={self.priority}, "
            f"rate={self.rate}, burst={self.burst}, deadline={self.deadline}, "
            f"profile={self.profile})"
        )


class TokenBucket:
    """A classic token bucket over an external clock.

    Args:
        rate: tokens added per clock unit.
        burst: bucket capacity (also the initial fill, so a fresh
            tenant may burst immediately).
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated")

    def __init__(self, rate: float, burst: int) -> None:
        if not math.isfinite(rate) or rate <= 0:
            raise TenantConfigError(f"bucket rate must be positive, got {rate!r}")
        if burst < 1:
            raise TenantConfigError(f"bucket burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._updated: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._updated is None:
            self._updated = now
            return
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)
        self._updated = now

    @property
    def tokens(self) -> float:
        """Tokens currently in the bucket (as of the last refill)."""
        return self._tokens

    def try_take(self, now: float) -> bool:
        """Take one token if available; ``False`` means rate-limited."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Clock units until the next token exists (0 when one does)."""
        self._refill(now)
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate}, burst={self.burst}, tokens={self._tokens:.2f})"


def tenant_map(configs: Iterable[TenantConfig]) -> Dict[str, TenantConfig]:
    """``name -> config`` with duplicate names rejected."""
    out: Dict[str, TenantConfig] = {}
    for config in configs:
        if config.name in out:
            raise TenantConfigError(f"duplicate tenant name: {config.name!r}")
        out[config.name] = config
    return out
