"""The asyncio multi-tenant query service over one
:class:`~repro.distributed.system.DistributedSystem`.

:class:`QueryService` is the serving front-end the ROADMAP's north star
asks for: thousands of concurrent requests from many tenants, one
shared policy-epoch plan cache, and load control that never relaxes the
paper's controlled-information-sharing guarantees.  The moving parts:

* **admission** — every ``submit`` passes the
  :class:`~repro.service.admission.AdmissionController` gate (token
  buckets, bounded queue, cost-aware shedding) *before* queueing;
  refusals come back as structured ``shed`` outcomes, never hangs;
* **single-flight planning** — concurrent requests whose queries share
  a canonical planning fingerprint coalesce onto one plan-cache fill
  (:class:`~repro.service.singleflight.SingleFlight`); followers adopt
  the leader's product and are counted in the plan cache's
  ``coalesced`` stat;
* **single-flight execution** — identical in-flight requests (same
  planning fingerprint, same recipient, same policy epoch) share one
  fully audited execution; the engine is deterministic over an
  immutable instance store, so sharers receive the byte-identical
  result the leader's run produced, at a fraction of the work;
* **graceful degradation** — a queue-occupancy ladder (normal →
  degraded planning → priority shedding) plus per-tenant circuit
  breakers reusing the PR 3
  :class:`~repro.distributed.health.CircuitBreaker`, and per-tenant
  deadline budgets charged for queue wait through the PR 3
  :class:`~repro.engine.deadline.DeadlineBudget`;
* **live policy churn** — :meth:`add_authorization` /
  :meth:`revoke_authorization` mutate the underlying system mid-stream;
  every in-flight request re-verifies its plan against the
  then-current policy before anything ships (the plan cache's epoch
  probe evicts stale entries, the pipeline's adopted-plan re-verify
  catches the single-flight window, and the runtime audit is the final
  backstop), so a revoked transfer can never ride a queued admission.

Execution itself is the synchronous, audited
:class:`~repro.distributed.pipeline.QueryPipeline` — the service adds
concurrency *between* queries (cooperative interleaving at await
points), not inside one.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.plancache import fingerprint_tree
from repro.distributed.faults import fault_free
from repro.distributed.health import CircuitBreaker
from repro.engine.deadline import DeadlineBudget
from repro.exceptions import (
    ChaosInterrupt,
    CheckpointError,
    DeadlineExceededError,
    InfeasiblePlanError,
    ReproError,
)
from repro.obs.metrics import MetricsRegistry
from repro.service.admission import (
    DEGRADE_NORMAL,
    DEGRADE_PLANNING,
    DEGRADE_SHED,
    REJECT_BREAKER,
    REJECT_DEADLINE,
    REJECT_RECOVERY,
    REJECT_SHUTDOWN,
    AdmissionController,
    CostEstimator,
    Rejection,
)
from repro.service.singleflight import SingleFlight
from repro.service.tenants import TenantConfig, tenant_map

#: Latency histogram bucket bounds (seconds) — sub-millisecond planning
#: hits up to multi-second degraded executions.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Outcome statuses.
OK = "ok"
SHED = "shed"
INFEASIBLE = "infeasible"
FAILED = "failed"


class ServiceError(ReproError):
    """Misuse of the service lifecycle (submit before start, ...)."""


class QueryOutcome:
    """The service's answer to one submitted request.

    Attributes:
        status: ``ok`` (executed, audited), ``shed`` (structured
            rejection — see :attr:`rejection`), ``infeasible`` (no safe
            assignment under the current policy) or ``failed``
            (execution error; see :attr:`error`).
        tenant: the submitting tenant's name.
        result: the audited
            :class:`~repro.engine.executor.ExecutionResult` (``ok``
            only).
        rejection: the structured
            :class:`~repro.service.admission.Rejection` (``shed`` only).
        error: stringified error (``infeasible`` / ``failed`` only).
        latency: submit-to-outcome clock units.
        coalesced: whether the plan was adopted from another request's
            single-flight fill.
        degrade_level: the service's degrade level when the request was
            admitted (or refused).
    """

    __slots__ = (
        "status", "tenant", "result", "rejection", "error", "latency",
        "coalesced", "degrade_level",
    )

    def __init__(
        self,
        status: str,
        tenant: str,
        result=None,
        rejection: Optional[Rejection] = None,
        error: Optional[str] = None,
        latency: float = 0.0,
        coalesced: bool = False,
        degrade_level: int = DEGRADE_NORMAL,
    ) -> None:
        self.status = status
        self.tenant = tenant
        self.result = result
        self.rejection = rejection
        self.error = error
        self.latency = latency
        self.coalesced = coalesced
        self.degrade_level = degrade_level

    @property
    def ok(self) -> bool:
        """Whether the query executed and was delivered."""
        return self.status == OK

    def to_dict(self) -> dict:
        """Flat JSON-safe rendering (one schema for every status)."""
        return {
            "status": self.status,
            "tenant": self.tenant,
            "rows": len(self.result.table) if self.result is not None else 0,
            "violations": (
                len(self.result.audit.violations)
                if self.result is not None and self.result.audit is not None
                else 0
            ),
            "rejection": (
                self.rejection.to_dict() if self.rejection is not None else None
            ),
            "error": self.error,
            "latency": self.latency,
            "coalesced": self.coalesced,
            "degrade_level": self.degrade_level,
        }

    def __repr__(self) -> str:
        return (
            f"QueryOutcome({self.status}, tenant={self.tenant!r}, "
            f"latency={self.latency:.4f}, coalesced={self.coalesced})"
        )


class _WorkItem:
    """One admitted request waiting for a worker."""

    __slots__ = (
        "query", "recipient", "ticket", "future", "submitted_at",
        "request_id", "retries",
    )

    def __init__(
        self, query, recipient, ticket, future, submitted_at,
        request_id=None,
    ) -> None:
        self.query = query
        self.recipient = recipient
        self.ticket = ticket
        self.future = future
        self.submitted_at = submitted_at
        self.request_id = request_id
        self.retries = 0

    def __lt__(self, other: "_WorkItem") -> bool:  # pragma: no cover
        # PriorityQueue tie-breaker only; ordering is fully decided by
        # the (priority, seq) tuple the queue entries carry.
        return False


class QueryService:
    """Serve many tenants' queries over one distributed system.

    Args:
        system: the :class:`~repro.distributed.system.DistributedSystem`
            to serve (its plan cache, policy and instances are shared
            by every request).
        tenants: per-tenant contracts
            (:class:`~repro.service.tenants.TenantConfig`); requests
            from unconfigured tenants run under ``default_tenant``'s
            shape with their own rate bucket.
        default_tenant: fallback contract (default: unlimited rate,
            priority 0, no deadline).
        workers: concurrent worker coroutines draining the queue.
        max_queue: bound on queued requests (admission refuses beyond
            it).
        capacity_bytes: total estimated in-flight bytes admitted at
            once; ``None`` disables cost-aware shedding, ``0``
            deterministically sheds every request.
        shed_priority_floor: minimum tenant priority admitted while the
            service is at the shedding degrade level.
        degrade_soft / degrade_hard: queue-occupancy fractions at which
            the degrade ladder moves to degraded planning / priority
            shedding.
        breaker_threshold: consecutive *failed* (not infeasible)
            executions that open a tenant's circuit breaker; ``None``
            disables tenant breakers.
        breaker_cooldown: clock units an open tenant breaker refuses
            requests before probing again.
        search_join_orders: plan with join-order search while the
            service is healthy (degrade level 1+ turns it off — the
            first rung of graceful degradation).
        metrics: a :class:`~repro.obs.metrics.MetricsRegistry` to
            instrument (default: the trace's registry, else a fresh
            one — exposed at :attr:`metrics` for the scrape endpoint).
        trace: optional :class:`~repro.obs.trace.TraceContext` threaded
            into planning and execution.
        clock: zero-argument monotonic clock (default
            ``time.monotonic``; benches and tests inject deterministic
            counters).
        chaos: optional :class:`~repro.chaos.ChaosSchedule`; when set
            the service fires its chaos points (submit, worker, leader,
            execute), runs pipelines on the schedule's fault injector,
            and — unless an explicit ``clock`` was given — lives in the
            schedule's logical clock so seeded runs replay exactly.
        journal: optional :class:`~repro.chaos.ServiceJournal` — the
            write-ahead log enabling :meth:`kill` / :meth:`recover`
            crash consistency; one journal is threaded through every
            service instance of a lineage.
        monitor: optional :class:`~repro.chaos.InvariantMonitor`;
            receives every lifecycle hook.  ``None`` (the default) is
            structurally zero-cost — call sites guard, no dispatch.
        max_chaos_retries: chaos-interrupted attempts per request
            before the service gives up with a ``failed`` outcome.
        stats_store: optional :class:`~repro.profiling.StatsStore`.
            Executions of tenants with ``profile=True`` run under a
            :class:`~repro.profiling.QueryProfiler` whose estimates use
            the store's observed selectivities, and every completed
            profile is harvested back — the service's long-running
            loop is exactly where the plan-quality feedback pays off.
            Profiled tenants also export tenant-labeled
            ``repro_service_profile_*`` metrics regardless of whether
            a store is configured.
        shard_schemes: optional ``relation name ->
            :class:`~repro.sharding.PartitionScheme`` distribution
            policy.  When set, requests route through the
            partition-parallel coordinator: the parallel-correctness
            checker certifies the schemes per query, certified queries
            execute sharded, and everything else transparently falls
            back to single-copy execution — outcomes carry a
            :class:`~repro.sharding.ShardedResult` either way.  Chaos
            and journaling stay on the single-copy path: a service
            configured with both runs sharded only when no chaos
            schedule is installed.
    """

    def __init__(
        self,
        system,
        tenants: Sequence[TenantConfig] = (),
        default_tenant: Optional[TenantConfig] = None,
        workers: int = 4,
        max_queue: int = 256,
        capacity_bytes: Optional[float] = None,
        shed_priority_floor: int = 1,
        degrade_soft: float = 0.5,
        degrade_hard: float = 0.85,
        breaker_threshold: Optional[int] = 5,
        breaker_cooldown: float = 1.0,
        search_join_orders: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        trace=None,
        clock: Callable[[], float] = time.monotonic,
        chaos=None,
        journal=None,
        monitor=None,
        max_chaos_retries: int = 3,
        stats_store=None,
        shard_schemes=None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_chaos_retries < 0:
            raise ServiceError(
                f"max_chaos_retries cannot be negative, got {max_chaos_retries}"
            )
        if not 0.0 < degrade_soft <= degrade_hard <= 1.0:
            raise ServiceError(
                "degrade watermarks must satisfy 0 < soft <= hard <= 1, "
                f"got soft={degrade_soft}, hard={degrade_hard}"
            )
        self._system = system
        self._admission = AdmissionController(
            tenant_map(tenants),
            default_tenant=default_tenant,
            max_queue=max_queue,
            capacity_bytes=capacity_bytes,
            shed_priority_floor=shed_priority_floor,
        )
        self._estimator = CostEstimator(system)
        self._chaos = chaos
        self._journal = journal
        self._monitor = monitor
        self._stats_store = stats_store
        self._shard_schemes = dict(shard_schemes) if shard_schemes else None
        self._max_chaos_retries = max_chaos_retries
        if monitor is not None and chaos is not None:
            monitor.bind_chaos(chaos)
        if chaos is not None and clock is time.monotonic:
            # Under chaos the service lives in the schedule's logical
            # clock, which is what makes seeded runs replayable.
            clock = lambda: chaos.clock  # noqa: E731
        self._singleflight = SingleFlight(observer=monitor)
        self._resultflight = SingleFlight(observer=monitor)
        self._degrade_soft = degrade_soft
        self._degrade_hard = degrade_hard
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._search_join_orders = search_join_orders
        self._trace = trace
        if metrics is not None:
            self.metrics = metrics
        elif trace is not None:
            self.metrics = trace.metrics
        else:
            self.metrics = MetricsRegistry()
        self._clock = clock
        self._worker_count = workers
        self._queue: Optional[asyncio.PriorityQueue] = None
        self._workers: List["asyncio.Task"] = []
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._seq = 0
        self._request_seq = 0
        self._running = False
        self._draining = False
        self._killing = False
        self._last_degrade = DEGRADE_NORMAL
        self._counts = {
            "submitted": 0, "admitted": 0, "shed": 0,
            OK: 0, INFEASIBLE: 0, FAILED: 0, "coalesced": 0,
            "executions": 0, "result_coalesced": 0, "recovered": 0,
        }
        # Pre-declare the latency family so the custom buckets win over
        # a lazy default-bucket creation.
        self.metrics.histogram(
            "repro_service_latency_seconds",
            "submit-to-outcome latency per tenant",
            buckets=LATENCY_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether workers are up."""
        return self._running

    @property
    def system(self):
        """The served distributed system."""
        return self._system

    async def start(self) -> None:
        """Spin up the worker pool (idempotent)."""
        if self._running:
            return
        self._queue = asyncio.PriorityQueue()
        self._workers = [
            asyncio.create_task(self._worker(), name=f"repro-service-worker-{i}")
            for i in range(self._worker_count)
        ]
        self._running = True
        self._draining = False

    async def drain(self) -> None:
        """Wait until every queued request has an outcome."""
        if self._queue is not None:
            await self._queue.join()

    async def stop(self, drain: bool = True) -> None:
        """Shut down: optionally drain, then cancel the workers.

        With ``drain=True`` (the default) every already-admitted
        request completes and new submissions shed with a structured
        ``shutting-down`` rejection; with ``drain=False`` queued
        requests resolve as shed too (no partial executions — a worker
        is never cancelled mid-query).
        """
        if not self._running:
            return
        self._draining = True
        if drain:
            await self.drain()
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        # Resolve whatever the cancelled workers left behind.
        if self._queue is not None:
            while not self._queue.empty():
                _, _, item = self._queue.get_nowait()
                self._finish_shed(
                    item,
                    Rejection(
                        REJECT_SHUTDOWN,
                        item.ticket.tenant.name,
                        detail="service stopped before the request ran",
                        queue_depth=self._queue.qsize(),
                    ),
                )
                self._queue.task_done()
        self._workers = []
        self._running = False
        self._draining = False

    # ------------------------------------------------------------------
    # Crash / recovery (the chaos harness surface)
    # ------------------------------------------------------------------

    async def kill(self) -> None:
        """Crash the service abruptly: cancel the workers mid-flight,
        no drain, no goodbye.

        With a :class:`~repro.chaos.ServiceJournal` attached this is
        crash-consistent: in-hand and queued requests keep their
        futures *pending* — the write-ahead journal owns them, and a
        successor service constructed over the same journal resolves
        every one via :meth:`recover` (resume or structured rejection,
        never a hang).  Without a journal, queued requests resolve as
        shed, exactly like ``stop(drain=False)``.
        """
        if not self._running:
            return
        self._killing = True
        try:
            for task in self._workers:
                task.cancel()
            await asyncio.gather(*self._workers, return_exceptions=True)
            if self._queue is not None:
                while not self._queue.empty():
                    _, _, item = self._queue.get_nowait()
                    if self._journal is None:
                        self._finish_shed(
                            item,
                            Rejection(
                                REJECT_SHUTDOWN,
                                item.ticket.tenant.name,
                                detail="service killed before the request ran",
                                queue_depth=self._queue.qsize(),
                            ),
                        )
                    self._queue.task_done()
            self._workers = []
            self._running = False
            self.metrics.inc("repro_service_kills_total")
        finally:
            self._killing = False

    async def recover(self) -> List[QueryOutcome]:
        """Resolve every journaled-but-incomplete request, in admission
        order: resume it under the *current* policy epoch or reject it
        structurally (``recovery-rejected``).

        Each incomplete entry replans through the live plan cache — a
        policy mutated since the crash replans differently or refuses —
        and, when the crashed execution parked checkpoint subtrees,
        resumes from them after
        :meth:`~repro.engine.checkpoint.CheckpointJournal.verify`
        re-audits every parked table against the current policy.  A
        checkpoint the policy no longer covers rejects the request
        rather than replaying it unaudited.  Entries journaled complete
        are never re-executed.

        Returns the recovery outcomes (also delivered to any pending
        submitter futures attached to the journal entries).

        Raises:
            ServiceError: without a journal, or before :meth:`start`.
        """
        if self._journal is None:
            raise ServiceError("recover() requires a service journal")
        if not self._running:
            raise ServiceError(
                "recover() requires a running service; call start() first"
            )
        outcomes: List[QueryOutcome] = []
        for entry in self._journal.incomplete():
            outcome = await self._recover_entry(entry)
            self._journal.record_completed(entry.request_id, outcome.status)
            if self._monitor is not None:
                self._monitor.on_outcome(entry.request_id, outcome.status)
                if outcome.ok:
                    self._monitor.on_result(entry.request_id, outcome.result)
            self._counts["recovered"] += 1
            self._counts[SHED if outcome.status == SHED else outcome.status] += 1
            self.metrics.inc(
                "repro_service_recovered_total", disposition=outcome.status
            )
            if entry.future is not None and not entry.future.done():
                entry.future.set_result(outcome)
            outcomes.append(outcome)
            await asyncio.sleep(0)
        return outcomes

    async def _recover_entry(self, entry) -> QueryOutcome:
        started = self._clock()
        epoch = self._system.policy.epoch
        if self._monitor is not None:
            self._monitor.adopt(entry.request_id, entry.tenant)
        try:
            key = self._plan_key(entry.query, False)
        except ReproError as error:
            return self._recovery_rejection(
                entry, started, f"unbindable at recovery: {error}"
            )
        faults = self._chaos
        if faults is None and entry.checkpoint is not None:
            # resume_from needs an injector clock; recovery without a
            # chaos schedule runs on a quiet one.
            faults = fault_free()
        # Note: no ``chaos=`` — recovery itself is fenced from injected
        # worker deaths, as a real recovery pass would be.
        pipeline = self._system.pipeline(
            entry.query,
            recipient=entry.recipient,
            search_join_orders=False,
            trace=self._trace,
            faults=faults,
            resume_from=entry.checkpoint,
        )
        exec_key = (key, entry.recipient, epoch)
        if self._monitor is not None:
            self._monitor.on_execution_start(exec_key)
        try:
            self._counts["executions"] += 1
            result = pipeline.run()
        except CheckpointError as error:
            return self._recovery_rejection(
                entry, started,
                f"checkpoint no longer verifies at epoch {epoch}: {error}",
            )
        except InfeasiblePlanError as error:
            return QueryOutcome(
                INFEASIBLE, entry.tenant, error=str(error),
                latency=self._clock() - started,
            )
        except ReproError as error:
            return QueryOutcome(
                FAILED, entry.tenant, error=str(error),
                latency=self._clock() - started,
            )
        finally:
            if self._monitor is not None:
                self._monitor.on_execution_end(exec_key)
        return QueryOutcome(
            OK, entry.tenant, result=result,
            latency=self._clock() - started,
        )

    def _recovery_rejection(
        self, entry, started: float, detail: str
    ) -> QueryOutcome:
        self.metrics.inc(
            "repro_service_shed_total",
            tenant=entry.tenant,
            reason=REJECT_RECOVERY,
        )
        return QueryOutcome(
            SHED,
            entry.tenant,
            rejection=Rejection(REJECT_RECOVERY, entry.tenant, detail=detail),
            latency=self._clock() - started,
        )

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------

    def degrade_level(self) -> int:
        """The current ladder rung, from queue occupancy."""
        if self._queue is None:
            return DEGRADE_NORMAL
        occupancy = self._queue.qsize() / self._admission.max_queue
        if occupancy >= self._degrade_hard:
            return DEGRADE_SHED
        if occupancy >= self._degrade_soft:
            return DEGRADE_PLANNING
        return DEGRADE_NORMAL

    def _breaker(self, tenant: str) -> Optional[CircuitBreaker]:
        if self._breaker_threshold is None:
            return None
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = self._breakers[tenant] = CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                cooldown=self._breaker_cooldown,
            )
            if self._monitor is not None:
                monitor = self._monitor
                breaker.set_transition_observer(
                    lambda old, new, at, _tenant=tenant: monitor.on_breaker(
                        _tenant, old, new
                    )
                )
        return breaker

    # ------------------------------------------------------------------
    # Policy churn (safe mid-stream)
    # ------------------------------------------------------------------

    def add_authorization(self, authorization) -> int:
        """Grant a rule to the live system (see
        :meth:`~repro.distributed.system.DistributedSystem.add_authorization`).
        In-flight requests see the widened policy on their next epoch
        probe."""
        before = self._system.policy.epoch
        added = self._system.add_authorization(authorization, trace=self._trace)
        self.metrics.inc("repro_service_policy_churn_total", kind="grant")
        if self._monitor is not None:
            self._monitor.on_epoch(before, self._system.policy.epoch)
        return added

    def revoke_authorization(self, authorization) -> None:
        """Withdraw a rule from the live system (see
        :meth:`~repro.distributed.system.DistributedSystem.revoke_authorization`).
        Every queued or coalesced request re-verifies before shipping,
        so the revocation takes effect for work admitted *before* it
        landed."""
        before = self._system.policy.epoch
        self._system.revoke_authorization(authorization, trace=self._trace)
        self.metrics.inc("repro_service_policy_churn_total", kind="revoke")
        if self._monitor is not None:
            self._monitor.on_epoch(before, self._system.policy.epoch)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def submit(
        self,
        query,
        tenant: str = "default",
        recipient: Optional[str] = None,
    ) -> QueryOutcome:
        """Admit, queue, execute — or shed — one request.

        Always returns a :class:`QueryOutcome`; admission refusals and
        execution failures are statuses, not exceptions, so a client
        driving thousands of concurrent submissions never needs
        per-request exception plumbing.

        Raises:
            ServiceError: when the service was never started.
        """
        if not self._running:
            raise ServiceError("service is not running; call start() first")
        if self._chaos is not None:
            # Policy grant/revoke storms and clock jumps land at the
            # submit boundary, before admission reads the epoch.
            for op, rule in self._chaos.fire("submit").get("storm", ()):
                if op == "grant":
                    self.add_authorization(rule)
                else:
                    self.revoke_authorization(rule)
        now = self._clock()
        self._counts["submitted"] += 1
        self.metrics.inc("repro_service_requests_total", tenant=tenant)
        level = self.degrade_level()
        self.metrics.set_gauge("repro_service_degrade_level", level)
        if self._monitor is not None and level != self._last_degrade:
            self._monitor.on_degrade(self._last_degrade, level)
            self._last_degrade = level
        if self._draining:
            return self._shed_outcome(
                tenant,
                Rejection(
                    REJECT_SHUTDOWN, tenant,
                    detail="service is draining for shutdown",
                    degrade_level=level,
                    queue_depth=self._queue.qsize(),
                ),
                now,
            )
        breaker = self._breaker(tenant)
        if breaker is not None and not breaker.allow(now):
            return self._shed_outcome(
                tenant,
                Rejection(
                    REJECT_BREAKER, tenant,
                    retry_after=self._breaker_cooldown,
                    detail=f"tenant breaker {breaker.state(now)} after "
                    "repeated failures",
                    degrade_level=level,
                    queue_depth=self._queue.qsize(),
                ),
                now,
            )
        cost = 0.0
        if self._admission.capacity_bytes is not None:
            try:
                cost = self._estimator.estimate(query)
            except ReproError as error:
                return QueryOutcome(
                    FAILED, tenant, error=f"unparseable query: {error}",
                    latency=self._clock() - now, degrade_level=level,
                )
        decision = self._admission.admit(
            tenant,
            now,
            queue_depth=self._queue.qsize(),
            cost_estimate=cost,
            degrade_level=level,
            policy_epoch=self._system.policy.epoch,
        )
        if isinstance(decision, Rejection):
            return self._shed_outcome(tenant, decision, now)
        self._counts["admitted"] += 1
        self.metrics.inc("repro_service_admitted_total", tenant=tenant)
        self.metrics.set_gauge(
            "repro_service_inflight_bytes", self._admission.inflight_bytes
        )
        future = asyncio.get_running_loop().create_future()
        if self._journal is not None:
            # Write-ahead: the admission is journaled *before* the
            # request can queue, so a crash between here and the
            # outcome leaves a recoverable record, never a lost future.
            request_id = self._journal.record_admitted(
                tenant, query, recipient, self._system.policy.epoch, future
            )
        elif self._monitor is not None:
            # Monitor-issued ids stay unique across kill/restart cycles
            # that share one monitor (a local counter would collide).
            request_id = self._monitor.issue_id()
        else:
            self._request_seq += 1
            request_id = self._request_seq
        if self._monitor is not None:
            self._monitor.on_admitted(request_id, tenant)
        item = _WorkItem(
            query, recipient, decision, future, now, request_id=request_id
        )
        self._seq += 1
        # Higher priority first; FIFO within a priority class.
        self._queue.put_nowait((-decision.tenant.priority, self._seq, item))
        self.metrics.set_gauge("repro_service_queue_depth", self._queue.qsize())
        return await future

    async def serve_all(
        self,
        requests: Sequence[dict],
        window: Optional[int] = None,
    ) -> List[QueryOutcome]:
        """Submit many requests concurrently, preserving input order in
        the result list.

        Args:
            requests: dicts with ``query`` (or ``sql``), optional
                ``tenant`` and ``recipient``.
            window: max concurrent submissions (client-side pacing);
                ``None`` submits everything at once — with a bounded
                queue that *will* shed the overflow, which is the
                point.
        """
        semaphore = asyncio.Semaphore(window) if window is not None else None

        async def one(request: dict) -> QueryOutcome:
            query = request.get("query", request.get("sql"))
            if query is None:
                raise ServiceError(f"request needs 'query' or 'sql': {request!r}")
            tenant = request.get("tenant", "default")
            recipient = request.get("recipient")
            if semaphore is None:
                return await self.submit(query, tenant=tenant, recipient=recipient)
            async with semaphore:
                return await self.submit(query, tenant=tenant, recipient=recipient)

        return list(
            await asyncio.gather(*(one(request) for request in requests))
        )

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            _, _, item = await self._queue.get()
            try:
                if self._chaos is not None:
                    # Admission-queue stall: the worker yields the event
                    # loop N times before touching its item.
                    stall = self._chaos.fire("worker").get("stall", 0)
                    for _ in range(int(stall)):
                        await asyncio.sleep(0)
                await self._process(item)
            except asyncio.CancelledError:
                if self._killing and self._journal is not None:
                    # kill(): crash semantics — leave the future
                    # pending; the journal owns this request now and a
                    # successor's recover() resolves it.
                    raise
                # stop(drain=False) cancelled us while this item was in
                # hand — it can only land at a pre-execution await, so
                # resolve the submitter with a shed (never a partial
                # execution) before going down.
                self._finish_shed(
                    item,
                    Rejection(
                        REJECT_SHUTDOWN,
                        item.ticket.tenant.name,
                        detail="service stopped before the request ran",
                        queue_depth=self._queue.qsize(),
                    ),
                )
                raise
            except BaseException as error:  # noqa: BLE001 - never kill the pool
                self._finish(
                    item,
                    QueryOutcome(
                        FAILED,
                        item.ticket.tenant.name,
                        error=f"worker error: {error!r}",
                        latency=self._clock() - item.submitted_at,
                        degrade_level=item.ticket.degrade_level,
                    ),
                )
            finally:
                self._queue.task_done()
                self.metrics.set_gauge(
                    "repro_service_queue_depth", self._queue.qsize()
                )

    async def _process(self, item: _WorkItem) -> None:
        ticket = item.ticket
        tenant = ticket.tenant
        now = self._clock()
        deadline = tenant.deadline
        if deadline is not None and ticket.degrade_level >= DEGRADE_PLANNING:
            # Degraded service honors half the contract deadline: better
            # to shed early than to serve answers nobody is waiting for.
            deadline = deadline / 2.0
        if deadline is not None:
            budget = DeadlineBudget(deadline)
            try:
                budget.charge(now - ticket.admitted_at, "queue-wait")
            except DeadlineExceededError:
                self._finish_shed(
                    item,
                    Rejection(
                        REJECT_DEADLINE,
                        tenant.name,
                        detail=(
                            f"queued {now - ticket.admitted_at:.3f} beyond the "
                            f"{deadline:.3f} deadline budget"
                        ),
                        degrade_level=ticket.degrade_level,
                        queue_depth=self._queue.qsize(),
                    ),
                )
                return
        if self._shard_schemes is not None and self._chaos is None:
            # Partition-parallel route: certification + execution live
            # in the coordinator; chaos/journal runs stay single-copy.
            await self._process_sharded(item)
            return
        search = self._search_join_orders and (
            ticket.degrade_level < DEGRADE_PLANNING
        )
        resume = None
        if self._journal is not None and item.request_id is not None:
            resume = self._journal.get(item.request_id).checkpoint
        profiler = None
        if tenant.profile:
            from repro.profiling import QueryProfiler

            profiler = QueryProfiler(selectivities=self._stats_store)
        pipeline = self._system.pipeline(
            item.query,
            recipient=item.recipient,
            search_join_orders=search,
            trace=self._trace,
            faults=self._chaos,
            checkpoint=self._chaos is not None and self._journal is not None,
            resume_from=resume,
            chaos=self._chaos,
            profiler=profiler,
        )
        try:
            key = self._plan_key(item.query, search)
        except ReproError as error:
            self._finish_failure(item, INFEASIBLE, f"unbindable query: {error}")
            return

        async def compute():
            # Yield once so concurrent identical requests reach the
            # single-flight gate and park as followers before the
            # leader does the (synchronous) planning work.
            await asyncio.sleep(0)
            if self._chaos is not None:
                self._chaos.fire("leader")
            return self._system.plan(
                item.query, search_join_orders=search, trace=self._trace
            )

        try:
            product, coalesced = await self._singleflight.run(key, compute)
        except asyncio.CancelledError as error:
            if getattr(error, "chaos", None) is None:
                raise
            # Injected leader crash: a waiting follower was promoted to
            # rerun the flight; this request goes back in the queue.
            self._requeue_after_chaos(
                item, "single-flight leader crashed mid-plan"
            )
            return
        except InfeasiblePlanError as error:
            self._finish_failure(item, INFEASIBLE, str(error))
            return
        except ReproError as error:
            self._finish_failure(item, FAILED, str(error))
            return
        if coalesced:
            self._counts["coalesced"] += 1
            self.metrics.inc("repro_service_coalesced_total")
            cache = self._system.plan_cache
            if cache is not None:
                cache.record_coalesced(1, obs=self._trace)
        # Identical in-flight requests share one execution: the engine
        # is deterministic and the instance store immutable mid-run, so
        # byte-identical inputs produce byte-identical (immutable)
        # results.  The key pins the policy epoch — a request arriving
        # after a grant/revoke never shares a result computed under the
        # older policy, and within one epoch the leader's run is fully
        # audited, so every sharer receives an authorized result.  The
        # recipient is part of the key because the final delivery hop
        # is itself an authorized transfer.
        exec_key = (key, item.recipient, self._system.policy.epoch)

        async def run_shared():
            # Yield once so identical requests park as result followers
            # before the leader enters the synchronous execute section.
            await asyncio.sleep(0)
            if self._chaos is not None:
                self._chaos.fire("leader")
            # Leader adopts the product: the pipeline re-verifies an
            # adopted plan against the then-current policy before
            # anything ships, which is what makes the
            # admission-to-execution window safe under policy churn.
            pipeline.use_plan(*product)
            self._counts["executions"] += 1
            if self._monitor is not None:
                self._monitor.on_execution_start(exec_key)
            try:
                result = pipeline.run()
            finally:
                if self._monitor is not None:
                    self._monitor.on_execution_end(exec_key)
            if profiler is not None:
                # Leader-only: followers share the leader's result (and
                # its profile) without double-harvesting.
                self._harvest_profile(tenant.name, result)
            return result

        try:
            result, result_shared = await self._resultflight.run(
                exec_key, run_shared
            )
        except asyncio.CancelledError as error:
            if getattr(error, "chaos", None) is None:
                raise
            self._requeue_after_chaos(
                item, "single-flight leader crashed mid-execution"
            )
            return
        except ChaosInterrupt as error:
            # The worker "died" mid-query.  Park whatever completed,
            # audited subtrees the run checkpointed and retry.
            self._requeue_after_chaos(
                item, str(error), checkpoint=error.checkpoint
            )
            return
        except CheckpointError as error:
            # A parked checkpoint no longer verifies (policy churn
            # revoked a subtree, or the replan changed shape): drop it
            # and retry from scratch rather than replaying stale state.
            if self._journal is not None and item.request_id is not None:
                self._journal.get(item.request_id).checkpoint = None
            self._requeue_after_chaos(item, f"checkpoint refused: {error}")
            return
        except InfeasiblePlanError as error:
            # Churn between planning and execution withdrew the route
            # and no alternative exists under the reduced policy.
            self._finish_failure(item, INFEASIBLE, str(error))
            return
        except ReproError as error:
            self._finish_failure(item, FAILED, str(error))
            return
        if result_shared:
            self._counts["result_coalesced"] += 1
            self.metrics.inc("repro_service_result_coalesced_total")
        latency = self._clock() - item.submitted_at
        breaker = self._breaker(tenant.name)
        if breaker is not None:
            breaker.record_success(self._clock())
        self._finish(
            item,
            QueryOutcome(
                OK,
                tenant.name,
                result=result,
                latency=latency,
                coalesced=coalesced,
                degrade_level=ticket.degrade_level,
            ),
        )

    async def _process_sharded(self, item: _WorkItem) -> None:
        """Serve one request through the partition-parallel coordinator.

        Identical in-flight requests still coalesce onto one execution
        (the key pins the policy epoch and recipient exactly as the
        single-copy path does); the coordinator's own certify-or-fall-
        back ladder guarantees an uncertified scheme never runs
        partitioned.
        """
        tenant = item.ticket.tenant
        try:
            key = self._plan_key(item.query, False)
        except ReproError as error:
            self._finish_failure(item, INFEASIBLE, f"unbindable query: {error}")
            return
        exec_key = (
            "sharded", key, item.recipient, self._system.policy.epoch,
        )

        async def run_shared():
            await asyncio.sleep(0)
            self._counts["executions"] += 1
            return self._system.execute_sharded(
                item.query,
                self._shard_schemes,
                recipient=item.recipient,
                trace=self._trace,
            )

        try:
            result, result_shared = await self._resultflight.run(
                exec_key, run_shared
            )
        except InfeasiblePlanError as error:
            self._finish_failure(item, INFEASIBLE, str(error))
            return
        except ReproError as error:
            self._finish_failure(item, FAILED, str(error))
            return
        if result_shared:
            self._counts["result_coalesced"] += 1
            self.metrics.inc("repro_service_result_coalesced_total")
        self.metrics.inc("repro_service_sharded_total", mode=result.mode)
        latency = self._clock() - item.submitted_at
        breaker = self._breaker(tenant.name)
        if breaker is not None:
            breaker.record_success(self._clock())
        self._finish(
            item,
            QueryOutcome(
                OK,
                tenant.name,
                result=result,
                latency=latency,
                degrade_level=item.ticket.degrade_level,
            ),
        )

    def _harvest_profile(self, tenant_name: str, result) -> None:
        """Fold one profiled execution back into the feedback loop:
        harvest observed statistics into the store (when configured)
        and export tenant-labeled profile metrics."""
        profile = getattr(result, "profile", None)
        if profile is None:
            return
        if self._stats_store is not None:
            self._stats_store.harvest(profile)
        self.metrics.inc("repro_service_profile_runs_total", tenant=tenant_name)
        self.metrics.observe(
            "repro_service_profile_shipped_bytes",
            profile.actual_bytes,
            tenant=tenant_name,
        )
        if profile.misestimates:
            self.metrics.inc(
                "repro_service_profile_misestimates_total",
                len(profile.misestimates),
                tenant=tenant_name,
            )

    def _plan_key(self, query, search: bool) -> object:
        """The single-flight key: the exact identity the plan cache
        fingerprints on, so "would share a cache entry" and "coalesce"
        agree."""
        kind, payload = self._system._parsed(
            query, memoize=self._system.plan_cache is not None
        )
        if kind == "tree":
            return fingerprint_tree(payload)
        return (payload.fingerprint(), search)

    def _requeue_after_chaos(
        self, item: _WorkItem, reason: str, checkpoint=None
    ) -> None:
        """Put a chaos-interrupted request back in the queue (bounded
        attempts), journaling any parked checkpoint first."""
        item.retries += 1
        attempts = item.retries
        if self._journal is not None and item.request_id is not None:
            self._journal.record_checkpoint(item.request_id, checkpoint)
            attempts = self._journal.record_attempt(item.request_id)
        if attempts > self._max_chaos_retries:
            self._finish_failure(
                item,
                FAILED,
                f"chaos: gave up after {attempts} interrupted attempts: "
                f"{reason}",
            )
            return
        self.metrics.inc("repro_service_chaos_requeues_total")
        self._seq += 1
        self._queue.put_nowait((-item.ticket.tenant.priority, self._seq, item))

    # ------------------------------------------------------------------
    # Outcome plumbing
    # ------------------------------------------------------------------

    def _shed_outcome(
        self, tenant: str, rejection: Rejection, submitted_at: float
    ) -> QueryOutcome:
        self._counts["shed"] += 1
        self.metrics.inc(
            "repro_service_shed_total", tenant=tenant, reason=rejection.reason
        )
        return QueryOutcome(
            SHED,
            tenant,
            rejection=rejection,
            latency=self._clock() - submitted_at,
            degrade_level=rejection.degrade_level,
        )

    def _finish(self, item: _WorkItem, outcome: QueryOutcome) -> None:
        self._admission.release(item.ticket)
        self.metrics.set_gauge(
            "repro_service_inflight_bytes", self._admission.inflight_bytes
        )
        if outcome.status in (OK, INFEASIBLE, FAILED):
            self._counts[outcome.status] += 1
            self.metrics.inc(
                "repro_service_completed_total",
                tenant=outcome.tenant,
                status=outcome.status,
            )
            self.metrics.observe(
                "repro_service_latency_seconds",
                outcome.latency,
                tenant=outcome.tenant,
            )
        self._record_terminal(item, outcome)
        if not item.future.done():
            item.future.set_result(outcome)

    def _finish_shed(self, item: _WorkItem, rejection: Rejection) -> None:
        self._admission.release(item.ticket)
        outcome = self._shed_outcome(
            rejection.tenant, rejection, item.submitted_at
        )
        self._record_terminal(item, outcome)
        if not item.future.done():
            item.future.set_result(outcome)

    def _record_terminal(self, item: _WorkItem, outcome: QueryOutcome) -> None:
        """Journal + monitor bookkeeping for one terminal outcome."""
        if item.request_id is None:
            return
        if self._journal is not None:
            self._journal.record_completed(item.request_id, outcome.status)
        if self._monitor is not None:
            self._monitor.on_outcome(item.request_id, outcome.status)
            if outcome.status == OK:
                self._monitor.on_result(item.request_id, outcome.result)

    def _finish_failure(self, item: _WorkItem, status: str, error: str) -> None:
        breaker = self._breaker(item.ticket.tenant.name)
        if breaker is not None and status == FAILED:
            breaker.record_failure(self._clock())
        self._finish(
            item,
            QueryOutcome(
                status,
                item.ticket.tenant.name,
                error=error,
                latency=self._clock() - item.submitted_at,
                degrade_level=item.ticket.degrade_level,
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe service counters (plus admission and plan-cache
        state) for benches, the CLI summary and tests."""
        cache = self._system.plan_cache
        return {
            "submitted": self._counts["submitted"],
            "admitted": self._counts["admitted"],
            "shed": self._counts["shed"],
            "ok": self._counts[OK],
            "infeasible": self._counts[INFEASIBLE],
            "failed": self._counts[FAILED],
            "coalesced": self._counts["coalesced"],
            "executions": self._counts["executions"],
            "result_coalesced": self._counts["result_coalesced"],
            "recovered": self._counts["recovered"],
            "plan_promotions": self._singleflight.promotions,
            "result_promotions": self._resultflight.promotions,
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "degrade_level": self.degrade_level(),
            "admission": self._admission.snapshot(),
            "plan_cache": cache.snapshot() if cache is not None else None,
            "journal": (
                self._journal.counts() if self._journal is not None else None
            ),
            "chaos": self._chaos.summary() if self._chaos is not None else None,
            "stats_store": (
                {
                    "observations": len(self._stats_store),
                    "harvests": self._stats_store.harvests,
                }
                if self._stats_store is not None
                else None
            ),
        }
