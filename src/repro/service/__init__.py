"""Multi-tenant asyncio query service over a distributed system.

The serving layer the ROADMAP's production-scale north star calls for:
:class:`~repro.service.service.QueryService` fronts one
:class:`~repro.distributed.system.DistributedSystem` with admission
control (per-tenant token buckets, a bounded queue, cost-aware load
shedding), single-flight plan-cache fills, a graceful-degradation
ladder, and policy churn that stays safe for in-flight work.  See
``docs/serving.md`` for the design and guarantees.
"""

from repro.service.admission import (
    DEGRADE_NORMAL,
    DEGRADE_PLANNING,
    DEGRADE_SHED,
    REJECT_BREAKER,
    REJECT_COST,
    REJECT_DEADLINE,
    REJECT_PRIORITY,
    REJECT_QUEUE_FULL,
    REJECT_RATE,
    REJECT_RECOVERY,
    REJECT_SHUTDOWN,
    AdmissionController,
    AdmissionError,
    AdmissionTicket,
    CostEstimator,
    Rejection,
    estimate_query_bytes,
)
from repro.service.httpmetrics import MetricsServer
from repro.service.service import (
    FAILED,
    INFEASIBLE,
    OK,
    SHED,
    QueryOutcome,
    QueryService,
    ServiceError,
)
from repro.service.singleflight import SingleFlight
from repro.service.tenants import (
    TenantConfig,
    TenantConfigError,
    TokenBucket,
    tenant_map,
)

__all__ = [
    "DEGRADE_NORMAL",
    "DEGRADE_PLANNING",
    "DEGRADE_SHED",
    "REJECT_BREAKER",
    "REJECT_COST",
    "REJECT_DEADLINE",
    "REJECT_PRIORITY",
    "REJECT_QUEUE_FULL",
    "REJECT_RATE",
    "REJECT_RECOVERY",
    "REJECT_SHUTDOWN",
    "AdmissionController",
    "AdmissionError",
    "AdmissionTicket",
    "CostEstimator",
    "FAILED",
    "INFEASIBLE",
    "MetricsServer",
    "OK",
    "QueryOutcome",
    "QueryService",
    "Rejection",
    "SHED",
    "ServiceError",
    "SingleFlight",
    "TenantConfig",
    "TenantConfigError",
    "TokenBucket",
    "estimate_query_bytes",
    "tenant_map",
]
