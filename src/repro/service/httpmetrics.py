"""A real Prometheus scrape endpoint for the query service.

:class:`MetricsServer` is a tiny asyncio HTTP/1.1 server (stdlib only —
``asyncio.start_server``, no web framework) exposing:

* ``GET /metrics`` — the service registry's text exposition
  (:meth:`~repro.obs.metrics.MetricsRegistry.prometheus_text`,
  ``text/plain; version=0.0.4``), scrape-ready;
* ``GET /healthz`` — a JSON liveness probe carrying the service's
  degrade level and queue depth, so an orchestrator can see overload
  before it becomes unavailability.

Binding to port 0 picks an ephemeral port (reported by
:attr:`MetricsServer.port`), which is what the CLI's ``serve``
subcommand and the smoke tests use to avoid collisions.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Optional

#: Max request head we will buffer before answering 400.
_MAX_REQUEST = 8192


class MetricsServer:
    """Serve ``/metrics`` and ``/healthz`` for one metrics registry.

    Args:
        registry: the :class:`~repro.obs.metrics.MetricsRegistry` to
            expose.
        host: bind address (default loopback).
        port: bind port; 0 picks an ephemeral one.
        health: optional zero-argument callable returning a JSON-safe
            dict merged into the ``/healthz`` body (the service passes
            its ``snapshot``-lite: degrade level and queue depth).
    """

    def __init__(
        self,
        registry,
        host: str = "127.0.0.1",
        port: int = 0,
        health: Optional[Callable[[], dict]] = None,
    ) -> None:
        self._registry = registry
        self._host = host
        self._requested_port = port
        self._health = health
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests = 0

    @property
    def port(self) -> int:
        """The bound port (0 until started)."""
        if self._server is None or not self._server.sockets:
            return 0
        return self._server.sockets[0].getsockname()[1]

    @property
    def running(self) -> bool:
        """Whether the listener is up."""
        return self._server is not None

    async def start(self) -> int:
        """Bind and listen; returns the bound port."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle, self._host, self._requested_port
            )
        return self.port

    async def stop(self) -> None:
        """Close the listener and wait for it to go away."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        self.requests += 1
        parts = head.decode("latin-1").split()
        method = parts[0] if parts else ""
        path = parts[1].split("?", 1)[0] if len(parts) > 1 else ""
        # Drain the header block (bounded) so keep-alive clients that
        # pipeline a body do not confuse the next accept.
        drained = len(head)
        while drained < _MAX_REQUEST:
            try:
                line = await reader.readuntil(b"\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                break
            drained += len(line)
            if line == b"\r\n":
                break
        if method != "GET":
            self._respond(writer, 405, "text/plain", b"method not allowed\n")
        elif path == "/metrics":
            body = self._registry.prometheus_text().encode("utf-8")
            self._respond(
                writer, 200, "text/plain; version=0.0.4; charset=utf-8", body
            )
        elif path == "/healthz":
            payload = {"status": "ok"}
            if self._health is not None:
                payload.update(self._health())
            self._respond(
                writer, 200, "application/json",
                (json.dumps(payload) + "\n").encode("utf-8"),
            )
        else:
            self._respond(writer, 404, "text/plain", b"not found\n")
        try:
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        writer.close()

    @staticmethod
    def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(
            status, "Error"
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
