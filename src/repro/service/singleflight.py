"""Single-flight coalescing of concurrent identical plan-cache fills.

Under a thundering herd, N concurrent requests for the same query
fingerprint would all miss the plan cache and all run the planner —
N - 1 of them pointlessly.  :class:`SingleFlight` turns the herd into
one *leader* (who computes) and N - 1 *followers* (who await the
leader's future and adopt its product).  Keys are caller-chosen; the
service keys on the query's canonical planning fingerprint, so two
textually different but semantically identical queries coalesce exactly
when the plan cache would have unified them anyway.

Safety note: coalescing shares *plan products*, never authorization
decisions.  A follower re-verifies the adopted assignment against the
then-current policy before anything ships
(:meth:`repro.distributed.pipeline.QueryPipeline.use_plan` documents
the contract), so a policy mutation that lands between the leader's
fill and a follower's execution forces the follower through the plan
cache's epoch probe rather than onto a stale plan.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Tuple


class SingleFlight:
    """Per-key coalescing of concurrent async computations."""

    def __init__(self) -> None:
        self._inflight: Dict[object, "asyncio.Future"] = {}
        self._leads = 0
        self._followers = 0

    @property
    def inflight(self) -> int:
        """Keys currently being computed."""
        return len(self._inflight)

    @property
    def leads(self) -> int:
        """Computations actually run (leaders)."""
        return self._leads

    @property
    def followers(self) -> int:
        """Requests served by another request's computation."""
        return self._followers

    async def run(
        self, key: object, compute: Callable[[], Awaitable[object]]
    ) -> Tuple[object, bool]:
        """``(result, coalesced)`` for ``key``.

        The first caller for a key becomes the leader and awaits
        ``compute()``; concurrent callers for the same key park on the
        leader's future and receive the same result (or the same
        exception) with ``coalesced=True``.  The key is released once
        the leader resolves, so later calls compute afresh — the plan
        cache, not this class, is the long-term memo.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self._followers += 1
            result = await asyncio.shield(existing)
            return result, True
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        self._leads += 1
        try:
            result = await compute()
        except BaseException as error:  # noqa: BLE001 - propagated to waiters
            if not future.done():
                future.set_exception(error)
            # A future whose exception is never retrieved warns at GC;
            # every follower retrieves it, but with zero followers we
            # must mark it retrieved ourselves.
            future.exception()
            raise
        else:
            if not future.done():
                future.set_result(result)
            return result, False
        finally:
            if self._inflight.get(key) is future:
                del self._inflight[key]
