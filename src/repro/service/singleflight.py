"""Single-flight coalescing of concurrent identical plan-cache fills.

Under a thundering herd, N concurrent requests for the same query
fingerprint would all miss the plan cache and all run the planner —
N - 1 of them pointlessly.  :class:`SingleFlight` turns the herd into
one *leader* (who computes) and N - 1 *followers* (who await the
leader's future and adopt its product).  Keys are caller-chosen; the
service keys on the query's canonical planning fingerprint, so two
textually different but semantically identical queries coalesce exactly
when the plan cache would have unified them anyway.

Safety note: coalescing shares *plan products*, never authorization
decisions.  A follower re-verifies the adopted assignment against the
then-current policy before anything ships
(:meth:`repro.distributed.pipeline.QueryPipeline.use_plan` documents
the contract), so a policy mutation that lands between the leader's
fill and a follower's execution forces the follower through the plan
cache's epoch probe rather than onto a stale plan.

Leader cancellation: a leader whose ``compute`` is cancelled (a client
disconnect, a chaos-injected crash) does *not* fail its followers.
The cancellation is the leader's private fate; the first waiting
follower is promoted to re-run the flight and the rest keep waiting on
the promoted leader.  Only a non-cancellation error propagates to every
waiter — those are properties of the computation, not of the caller.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Tuple

#: Sentinel resolved into a cancelled leader's future: waiting
#: followers interpret it as "the leader died without an answer —
#: promote yourself and re-run the flight".
_RERUN = object()


class SingleFlight:
    """Per-key coalescing of concurrent async computations.

    Args:
        observer: optional duck-typed listener (e.g. the chaos
            :class:`~repro.chaos.invariants.InvariantMonitor`); when
            set, ``flight_started(key)`` / ``flight_finished(key)``
            bracket every leader computation and
            ``flight_promoted(key)`` fires when a follower takes over a
            cancelled leader's flight.  ``None`` (the default) keeps
            the hot path free of any observer dispatch.
    """

    def __init__(self, observer=None) -> None:
        self._inflight: Dict[object, "asyncio.Future"] = {}
        self._observer = observer
        self._leads = 0
        self._followers = 0
        self._promotions = 0

    @property
    def inflight(self) -> int:
        """Keys currently being computed."""
        return len(self._inflight)

    @property
    def leads(self) -> int:
        """Computations actually run (leaders)."""
        return self._leads

    @property
    def followers(self) -> int:
        """Requests served by another request's computation."""
        return self._followers

    @property
    def promotions(self) -> int:
        """Followers promoted to leader after a leader cancellation."""
        return self._promotions

    async def run(
        self, key: object, compute: Callable[[], Awaitable[object]]
    ) -> Tuple[object, bool]:
        """``(result, coalesced)`` for ``key``.

        The first caller for a key becomes the leader and awaits
        ``compute()``; concurrent callers for the same key park on the
        leader's future and receive the same result (or the same
        exception) with ``coalesced=True``.  The key is released once
        the leader resolves, so later calls compute afresh — the plan
        cache, not this class, is the long-term memo.

        A *cancelled* leader promotes a waiting follower instead of
        failing the herd: the follower re-runs ``compute`` (its own
        ``compute`` — computations for one key are interchangeable by
        construction) and the remaining waiters follow the new leader.
        The cancellation still propagates to the original leader.
        """
        promoted = False
        while True:
            existing = self._inflight.get(key)
            if existing is not None:
                self._followers += 1
                result = await asyncio.shield(existing)
                if result is _RERUN:
                    # The leader was cancelled mid-flight.  Its future
                    # resolved every waiter with the sentinel; whichever
                    # waiter wakes first re-enters the loop, finds the
                    # key free and leads — the rest park behind it.
                    self._followers -= 1
                    promoted = True
                    continue
                return result, True
            loop = asyncio.get_running_loop()
            future: "asyncio.Future" = loop.create_future()
            self._inflight[key] = future
            self._leads += 1
            if promoted:
                self._promotions += 1
                if self._observer is not None:
                    self._observer.flight_promoted(key)
            if self._observer is not None:
                self._observer.flight_started(key)
            try:
                result = await compute()
            except asyncio.CancelledError:
                # The leader's cancellation is not the followers'
                # problem: hand the flight to the first waiter instead
                # of failing the herd, then let the cancellation keep
                # propagating to this (former) leader's caller.
                if not future.done():
                    future.set_result(_RERUN)
                raise
            except BaseException as error:  # noqa: BLE001 - propagated to waiters
                if not future.done():
                    future.set_exception(error)
                # A future whose exception is never retrieved warns at GC;
                # every follower retrieves it, but with zero followers we
                # must mark it retrieved ourselves.
                future.exception()
                raise
            else:
                if not future.done():
                    future.set_result(result)
                return result, False
            finally:
                if self._inflight.get(key) is future:
                    del self._inflight[key]
                if self._observer is not None:
                    self._observer.flight_finished(key)
