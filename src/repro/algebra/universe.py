"""The interned representation kernel: attribute universes and bitset sets.

Every decision the model makes — Definition 3.3's ``CanView``, Figure 4
profile composition, the Section 3.2 chase, candidate enumeration, the
exhaustive baseline and the runtime audit — reduces to set algebra over
attribute names.  Representing those sets as Python ``frozenset`` objects
re-hashes the same strings over and over on large workloads.

This module fixes the representation without changing the semantics:

* :class:`AttributeUniverse` interns attribute names to stable *bit
  positions* (append-only, so positions never move as the universe
  grows), and

* :class:`AttrSet` is a ``frozenset`` **subclass** that additionally
  carries the universe it was interned in and the integer bitmask of its
  members.  Because it *is* a frozenset, every public API that consumed
  or produced ``AttributeSet`` values keeps working unchanged —
  equality, hashing, iteration, rendering and pickling against plain
  frozensets are exactly the built-in behaviour — while operations
  between two sets of the same universe (``|``, ``&``, ``-``, ``<=``,
  ``==`` …) short-circuit to single integer instructions.

Interning is by mask: asking a universe twice for the same member set
returns the same ``AttrSet`` object, so equality usually hits the
identity fast path and hashes are computed once per distinct set.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.algebra.attributes import validate_attribute_name
from repro.exceptions import SchemaError

#: Soft cap on the number of distinct interned sets a universe caches.
#: Past it, operations still return correct ``AttrSet`` objects — they
#: just stop being memoized, bounding memory on adversarial workloads.
_MAX_INTERNED_SETS = 1 << 16


class AttrSet(frozenset):
    """A bitmask-backed attribute set: a ``frozenset`` of names plus the
    :class:`AttributeUniverse` that interned it and the members' bitmask.

    Instances are created by :class:`AttributeUniverse`; calling
    ``AttrSet(iterable)`` directly degrades gracefully to a plain
    ``frozenset`` (no universe to intern against).

    Binary operations between two ``AttrSet`` of the *same* universe run
    on the masks; mixed operations against plain frozensets adopt the
    other operand into the universe when possible and otherwise fall
    back to the built-in frozenset behaviour, so correctness never
    depends on which representation an operand happens to use.
    """

    __slots__ = ("universe", "mask")

    def __new__(cls, names: Iterable[str] = ()):  # pragma: no cover - guard
        # Direct construction has no universe: degrade to a frozenset.
        return frozenset(names)

    @classmethod
    def _make(cls, universe: "AttributeUniverse", mask: int, names: Iterable[str]) -> "AttrSet":
        self = frozenset.__new__(cls, names)
        self.universe = universe
        self.mask = mask
        return self

    # -- mask helpers ---------------------------------------------------

    def _mask_of(self, other: object) -> Optional[int]:
        """Mask of ``other`` in this set's universe, adopting plain sets
        of known names; ``None`` when not maskable."""
        if isinstance(other, AttrSet) and other.universe is self.universe:
            return other.mask
        if isinstance(other, (frozenset, set)):
            return self.universe.try_mask(other)
        return None

    # -- algebra (mask fast paths, frozenset fallback) ------------------

    def __or__(self, other):
        if isinstance(other, (frozenset, set)):
            merged = self.universe.try_union(self, other)
            if merged is not None:
                return merged
        return frozenset.__or__(self, other)

    def __ror__(self, other):
        if isinstance(other, (frozenset, set)):
            merged = self.universe.try_union(self, other)
            if merged is not None:
                return merged
        return frozenset.__or__(self, frozenset(other))

    def __and__(self, other):
        other_mask = self._mask_of(other)
        if other_mask is not None:
            return self.universe.from_mask(self.mask & other_mask)
        return frozenset.__and__(self, other)

    __rand__ = __and__

    def __sub__(self, other):
        other_mask = self._mask_of(other)
        if other_mask is not None:
            return self.universe.from_mask(self.mask & ~other_mask)
        return frozenset.__sub__(self, other)

    def __rsub__(self, other):
        # other - self: unmaskable names in ``other`` survive, so only
        # the fully-known case can run on masks.
        if isinstance(other, (frozenset, set)):
            other_mask = self.universe.try_mask(other)
            if other_mask is not None:
                return self.universe.from_mask(other_mask & ~self.mask)
            return frozenset(other) - frozenset(self)
        return NotImplemented

    def __le__(self, other):
        other_mask = self._mask_of(other)
        if other_mask is not None:
            return (self.mask & ~other_mask) == 0
        return frozenset.__le__(self, other)

    def __lt__(self, other):
        other_mask = self._mask_of(other)
        if other_mask is not None:
            return self.mask != other_mask and (self.mask & ~other_mask) == 0
        return frozenset.__lt__(self, other)

    def __ge__(self, other):
        if isinstance(other, AttrSet) and other.universe is self.universe:
            return (other.mask & ~self.mask) == 0
        if isinstance(other, (frozenset, set)):
            other_mask = self.universe.try_mask(other)
            if other_mask is not None:
                return (other_mask & ~self.mask) == 0
            # A name unknown to the universe cannot be a member of self.
            return False
        return frozenset.__ge__(self, other)

    def __gt__(self, other):
        if isinstance(other, (frozenset, set)):
            return self.__ge__(other) and len(self) > len(other)
        return frozenset.__gt__(self, other)

    def issubset(self, other):
        return self.__le__(frozenset(other) if not isinstance(other, (set, frozenset)) else other)

    def issuperset(self, other):
        return self.__ge__(frozenset(other) if not isinstance(other, (set, frozenset)) else other)

    def __eq__(self, other):
        if isinstance(other, AttrSet) and other.universe is self.universe:
            return self.mask == other.mask
        return frozenset.__eq__(self, other)

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # Equality stays value-compatible with frozenset, so the hash must too.
    __hash__ = frozenset.__hash__

    def __repr__(self) -> str:
        return f"AttrSet({sorted(self)!r})"

    def __reduce__(self):
        # Pickle as a plain frozenset: universes are process-local.
        return (frozenset, (list(self),))


class AttributeUniverse:
    """Append-only interner mapping attribute names to bit positions.

    A universe is catalog-scoped in normal use (see
    :attr:`repro.algebra.schema.Catalog.universe`); policies without a
    catalog own a private one.  Positions are assigned in first-seen
    order and never change, so masks remain valid as the universe grows.
    """

    __slots__ = ("_positions", "_names", "_sets")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._positions: Dict[str, int] = {}
        self._names: List[str] = []
        self._sets: Dict[int, AttrSet] = {}
        for name in names:
            self.add(name)

    # -- membership -----------------------------------------------------

    def add(self, name: str) -> int:
        """Intern ``name`` (validating it) and return its bit position."""
        position = self._positions.get(name)
        if position is None:
            validate_attribute_name(name)
            position = len(self._names)
            self._positions[name] = position
            self._names.append(name)
        return position

    def position(self, name: str) -> int:
        """The bit position of an interned name.

        Raises:
            SchemaError: if the name was never interned.
        """
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(f"attribute {name!r} is not in this universe") from None

    def __contains__(self, name: object) -> bool:
        return name in self._positions

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    # -- masks ----------------------------------------------------------

    def try_mask(self, names: Iterable[str]) -> Optional[int]:
        """Bitmask of ``names``, or ``None`` if any name is unknown."""
        positions = self._positions
        mask = 0
        for name in names:
            position = positions.get(name)
            if position is None:
                return None
            mask |= 1 << position
        return mask

    def try_masks(self, name_sets: Iterable[Iterable[str]]) -> List[Optional[int]]:
        """Bitmasks of several name sets in one pass, ``None`` where a
        set contains an unknown name.

        This is the gather step of the batched CanView kernel:
        :class:`AttrSet` operands of this universe short-circuit to
        their cached masks without touching the name table, so a batch
        of N interned profiles costs N attribute lookups total, not N
        set walks.
        """
        results: List[Optional[int]] = []
        for names in name_sets:
            if isinstance(names, AttrSet) and names.universe is self:
                results.append(names.mask)
            else:
                results.append(self.try_mask(names))
        return results

    def mask_of(self, names: Iterable[str]) -> int:
        """Bitmask of ``names``, interning unknown names on the fly."""
        positions = self._positions
        mask = 0
        for name in names:
            position = positions.get(name)
            if position is None:
                position = self.add(name)
            mask |= 1 << position
        return mask

    # -- interned sets --------------------------------------------------

    def attr_set(self, names: Iterable[str]) -> AttrSet:
        """The interned :class:`AttrSet` of ``names`` (names are interned
        too, so any validated name is acceptable)."""
        if isinstance(names, AttrSet) and names.universe is self:
            return names
        return self.from_mask(self.mask_of(names))

    def from_mask(self, mask: int) -> AttrSet:
        """The interned :class:`AttrSet` for ``mask``."""
        cached = self._sets.get(mask)
        if cached is not None:
            return cached
        names = self._names
        members = []
        remaining = mask
        while remaining:
            low = remaining & -remaining
            members.append(names[low.bit_length() - 1])
            remaining ^= low
        result = AttrSet._make(self, mask, members)
        if len(self._sets) < _MAX_INTERNED_SETS:
            self._sets[mask] = result
        return result

    def try_union(self, left: AttrSet, right: Iterable[str]) -> Optional[AttrSet]:
        """Union with adoption: interns ``right``'s names (they reached a
        set, so they are validated) and returns the interned union, or
        ``None`` when ``right`` cannot be interned."""
        if isinstance(right, AttrSet) and right.universe is left.universe:
            return self.from_mask(left.mask | right.mask)
        try:
            return self.from_mask(left.mask | self.mask_of(right))
        except SchemaError:  # pragma: no cover - unvalidated foreign names
            return None

    def empty(self) -> AttrSet:
        """The interned empty set."""
        return self.from_mask(0)

    def __repr__(self) -> str:
        return f"AttributeUniverse({len(self._names)} attributes)"
