"""Symbolic relational-algebra substrate.

This package provides the building blocks the paper's model (Section 2)
assumes: relation schemas distributed over servers, equi-join conditions
and join paths (Definition 2.1), selection predicates, logical algebra
expressions and binary query tree plans with projection push-down
minimization (Figure 2).
"""

from repro.algebra.attributes import AttributeSet, attribute_set, validate_attribute_name
from repro.algebra.joins import JoinCondition, JoinPath, intern_path
from repro.algebra.universe import AttrSet, AttributeUniverse
from repro.algebra.predicates import Comparison, Predicate
from repro.algebra.schema import Catalog, RelationSchema
from repro.algebra.expression import (
    BaseRelation,
    Expression,
    JoinExpression,
    ProjectionExpression,
    SelectionExpression,
)
from repro.algebra.tree import JoinNode, LeafNode, PlanNode, QueryTreePlan, UnaryNode
from repro.algebra.builder import QuerySpec, build_bushy_plan, build_plan
from repro.algebra.optimizer import enumerate_join_orders, optimize_join_order

__all__ = [
    "AttributeSet",
    "AttrSet",
    "AttributeUniverse",
    "attribute_set",
    "validate_attribute_name",
    "JoinCondition",
    "JoinPath",
    "intern_path",
    "Comparison",
    "Predicate",
    "Catalog",
    "RelationSchema",
    "Expression",
    "BaseRelation",
    "ProjectionExpression",
    "SelectionExpression",
    "JoinExpression",
    "PlanNode",
    "LeafNode",
    "UnaryNode",
    "JoinNode",
    "QueryTreePlan",
    "QuerySpec",
    "build_plan",
    "build_bushy_plan",
    "enumerate_join_orders",
    "optimize_join_order",
]
