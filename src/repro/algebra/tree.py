"""Query tree plans.

A query tree plan (Section 2) is a binary tree whose leaves are base
relations and whose internal nodes are relational operators; the root
produces the query result.  The planner of :mod:`repro.core.planner`
walks such trees in post-order (``Find_candidates``) and pre-order
(``Assign_ex``), so nodes expose the paper's ``n.left`` / ``n.right``
accessors: a unary node's single operand is its *left* child.

Plan nodes are immutable; all mutable planner state (profiles,
candidates, executors) lives outside the tree, keyed by the stable
``node_id`` assigned by :class:`QueryTreePlan` in post-order —
matching the numbering convention of the paper's Figure 7 trace is the
job of :meth:`QueryTreePlan.node`/`nodes`, not of the ids themselves.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.algebra.attributes import AttributeSet, format_attribute_set
from repro.algebra.expression import (
    BaseRelation,
    Expression,
    JoinExpression,
    ProjectionExpression,
    SelectionExpression,
)
from repro.algebra.joins import JoinPath
from repro.algebra.predicates import Predicate
from repro.algebra.schema import RelationSchema
from repro.exceptions import PlanError

#: Operator tags used by :class:`UnaryNode`.
PROJECT = "project"
SELECT = "select"


class PlanNode:
    """Abstract base class of query-tree-plan nodes."""

    __slots__ = ("_node_id",)

    def __init__(self) -> None:
        self._node_id: Optional[int] = None

    @property
    def node_id(self) -> int:
        """Stable id assigned by the owning :class:`QueryTreePlan`.

        Raises:
            PlanError: if the node is not part of a plan yet.
        """
        if self._node_id is None:
            raise PlanError("node does not belong to a QueryTreePlan yet")
        return self._node_id

    @property
    def left(self) -> Optional["PlanNode"]:
        """Left child (the only child, for unary nodes)."""
        return None

    @property
    def right(self) -> Optional["PlanNode"]:
        """Right child (``None`` for unary and leaf nodes)."""
        return None

    @property
    def is_leaf(self) -> bool:
        """Whether the node is a base-relation leaf."""
        return False

    @property
    def schema(self) -> AttributeSet:
        """Attributes carried by the node's output."""
        raise NotImplementedError

    def children(self) -> List["PlanNode"]:
        """Existing children, left first."""
        result = []
        if self.left is not None:
            result.append(self.left)
        if self.right is not None:
            result.append(self.right)
        return result

    def label(self) -> str:
        """Short operator label for rendering."""
        raise NotImplementedError


class LeafNode(PlanNode):
    """A leaf: direct access to a stored base relation."""

    __slots__ = ("_relation",)

    def __init__(self, relation: RelationSchema) -> None:
        super().__init__()
        if not isinstance(relation, RelationSchema):
            raise PlanError("LeafNode requires a RelationSchema")
        self._relation = relation

    @property
    def relation(self) -> RelationSchema:
        """The accessed base relation."""
        return self._relation

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def schema(self) -> AttributeSet:
        return self._relation.attribute_set

    @property
    def server(self) -> Optional[str]:
        """Server storing the relation (Definition 4.1 requires one)."""
        return self._relation.server

    def label(self) -> str:
        return self._relation.name


class UnaryNode(PlanNode):
    """A unary operator node: projection or selection.

    Args:
        operator: :data:`PROJECT` or :data:`SELECT`.
        parameter: the retained :class:`AttributeSet` for projections, the
            :class:`Predicate` for selections.
        child: operand subtree.
    """

    __slots__ = ("_operator", "_parameter", "_child")

    def __init__(
        self,
        operator: str,
        parameter: Union[AttributeSet, Predicate],
        child: PlanNode,
    ) -> None:
        super().__init__()
        if operator not in (PROJECT, SELECT):
            raise PlanError(f"unknown unary operator: {operator!r}")
        if not isinstance(child, PlanNode):
            raise PlanError("UnaryNode child must be a PlanNode")
        if operator == PROJECT:
            parameter = frozenset(parameter)  # type: ignore[arg-type]
            if not parameter:
                raise PlanError("projection must keep at least one attribute")
            missing = parameter - child.schema
            if missing:
                raise PlanError(
                    f"projection keeps attributes absent from child schema: {sorted(missing)}"
                )
        else:
            if not isinstance(parameter, Predicate):
                raise PlanError("selection parameter must be a Predicate")
            missing = parameter.attributes - child.schema
            if missing:
                raise PlanError(
                    f"selection references attributes absent from child schema: {sorted(missing)}"
                )
        self._operator = operator
        self._parameter = parameter
        self._child = child

    @property
    def operator(self) -> str:
        """Operator tag (:data:`PROJECT` or :data:`SELECT`)."""
        return self._operator

    @property
    def parameter(self) -> Union[AttributeSet, Predicate]:
        """Operator parameter (attribute set or predicate)."""
        return self._parameter

    @property
    def left(self) -> Optional[PlanNode]:
        return self._child

    @property
    def schema(self) -> AttributeSet:
        if self._operator == PROJECT:
            return self._parameter  # type: ignore[return-value]
        return self._child.schema

    @property
    def projection_attributes(self) -> AttributeSet:
        """The retained attributes; only valid for projections."""
        if self._operator != PROJECT:
            raise PlanError("projection_attributes on a non-projection node")
        return self._parameter  # type: ignore[return-value]

    @property
    def predicate(self) -> Predicate:
        """The selection predicate; only valid for selections."""
        if self._operator != SELECT:
            raise PlanError("predicate on a non-selection node")
        return self._parameter  # type: ignore[return-value]

    def label(self) -> str:
        if self._operator == PROJECT:
            return f"π{format_attribute_set(self.projection_attributes)}"
        return f"σ[{self.predicate}]"


class JoinNode(PlanNode):
    """An equi-join node with its own conditions ``j`` (a join path)."""

    __slots__ = ("_left", "_right", "_path")

    def __init__(self, left: PlanNode, right: PlanNode, path: JoinPath) -> None:
        super().__init__()
        if not isinstance(left, PlanNode) or not isinstance(right, PlanNode):
            raise PlanError("JoinNode operands must be PlanNodes")
        if not isinstance(path, JoinPath) or path.is_empty():
            raise PlanError("JoinNode requires a non-empty JoinPath")
        overlap = left.schema & right.schema
        if overlap:
            raise PlanError(
                f"join operands share attributes {sorted(overlap)}; attribute "
                "names must be globally distinct"
            )
        for condition in path:
            in_left = condition.first in left.schema or condition.second in left.schema
            in_right = condition.first in right.schema or condition.second in right.schema
            if not (in_left and in_right):
                raise PlanError(f"join condition {condition} does not bridge the operands")
        self._left = left
        self._right = right
        self._path = path

    @property
    def left(self) -> Optional[PlanNode]:
        return self._left

    @property
    def right(self) -> Optional[PlanNode]:
        return self._right

    @property
    def path(self) -> JoinPath:
        """The join's own conditions ``j``."""
        return self._path

    @property
    def schema(self) -> AttributeSet:
        return self._left.schema | self._right.schema

    def left_join_attributes(self) -> AttributeSet:
        """:math:`J_l` — condition attributes owned by the left operand."""
        return self._path.attributes & self._left.schema

    def right_join_attributes(self) -> AttributeSet:
        """:math:`J_r` — condition attributes owned by the right operand."""
        return self._path.attributes & self._right.schema

    def label(self) -> str:
        return f"⋈{self._path}"


class QueryTreePlan:
    """An immutable query tree plan with post-order node ids.

    Node ids are assigned 0..n-1 in post-order (children before parent),
    so the root always has the largest id.  Post-order matches the visit
    order of the paper's ``Find_candidates``.
    """

    def __init__(self, root: PlanNode) -> None:
        if not isinstance(root, PlanNode):
            raise PlanError("plan root must be a PlanNode")
        self._root = root
        self._nodes: List[PlanNode] = []
        self._parents: Dict[int, Optional[int]] = {}
        self._assign_ids(root, set())
        self._record_parents(root, None)

    def _assign_ids(self, node: PlanNode, seen: set) -> None:
        if id(node) in seen:
            # The same node object appearing twice would make the tree a DAG.
            raise PlanError("plan nodes must form a tree; shared subtree detected")
        seen.add(id(node))
        for child in node.children():
            self._assign_ids(child, seen)
        node._node_id = len(self._nodes)
        self._nodes.append(node)

    def _record_parents(self, node: PlanNode, parent: Optional[PlanNode]) -> None:
        self._parents[node.node_id] = parent.node_id if parent is not None else None
        for child in node.children():
            self._record_parents(child, node)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def root(self) -> PlanNode:
        """The root node (last operation of the query)."""
        return self._root

    def node(self, node_id: int) -> PlanNode:
        """Node by post-order id."""
        try:
            return self._nodes[node_id]
        except IndexError:
            raise PlanError(f"no node with id {node_id}") from None

    def nodes(self) -> Tuple[PlanNode, ...]:
        """All nodes in post-order."""
        return tuple(self._nodes)

    def parent_id(self, node_id: int) -> Optional[int]:
        """Id of the parent node, or ``None`` for the root."""
        return self._parents[node_id]

    def leaves(self) -> List[LeafNode]:
        """All leaf nodes in post-order."""
        return [n for n in self._nodes if isinstance(n, LeafNode)]

    def joins(self) -> List[JoinNode]:
        """All join nodes in post-order."""
        return [n for n in self._nodes if isinstance(n, JoinNode)]

    def base_relations(self) -> List[RelationSchema]:
        """Base relations at the leaves, in post-order."""
        return [leaf.relation for leaf in self.leaves()]

    def servers(self) -> List[str]:
        """Distinct servers storing the plan's base relations, sorted."""
        return sorted({leaf.relation.server for leaf in self.leaves() if leaf.relation.server})

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[PlanNode]:
        return iter(self._nodes)

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------

    def post_order(self) -> Iterator[PlanNode]:
        """Nodes in post-order (the ``Find_candidates`` visit order)."""
        return iter(self._nodes)

    def pre_order(self) -> Iterator[PlanNode]:
        """Nodes in pre-order (the ``Assign_ex`` visit order)."""

        def walk(node: PlanNode) -> Iterator[PlanNode]:
            yield node
            for child in node.children():
                yield from walk(child)

        return walk(self._root)

    # ------------------------------------------------------------------
    # Conversion & rendering
    # ------------------------------------------------------------------

    @classmethod
    def from_expression(cls, expression: Expression) -> "QueryTreePlan":
        """Convert a logical expression into a query tree plan."""
        return cls(_expression_to_node(expression))

    def to_expression(self) -> Expression:
        """Convert back to a logical expression (loses node ids)."""
        return _node_to_expression(self._root)

    def render(self) -> str:
        """ASCII rendering of the tree, one node per line.

        The root comes first; children are indented below their parent,
        annotated with their node id.  Useful in examples and failure
        messages.
        """
        lines: List[str] = []

        def walk(node: PlanNode, depth: int) -> None:
            lines.append(f"{'  ' * depth}[n{node.node_id}] {node.label()}")
            for child in node.children():
                walk(child, depth + 1)

        walk(self._root, 0)
        return "\n".join(lines)

    def map_nodes(self, fn: Callable[[PlanNode], None]) -> None:
        """Apply ``fn`` to every node in post-order."""
        for node in self._nodes:
            fn(node)


def _expression_to_node(expression: Expression) -> PlanNode:
    if isinstance(expression, BaseRelation):
        return LeafNode(expression.relation)
    if isinstance(expression, ProjectionExpression):
        return UnaryNode(PROJECT, expression.attributes, _expression_to_node(expression.operand))
    if isinstance(expression, SelectionExpression):
        return UnaryNode(SELECT, expression.predicate, _expression_to_node(expression.operand))
    if isinstance(expression, JoinExpression):
        return JoinNode(
            _expression_to_node(expression.left),
            _expression_to_node(expression.right),
            expression.path,
        )
    raise PlanError(f"cannot convert expression of type {type(expression).__name__}")


def _node_to_expression(node: PlanNode) -> Expression:
    if isinstance(node, LeafNode):
        return BaseRelation(node.relation)
    if isinstance(node, UnaryNode):
        child = _node_to_expression(node.left)  # type: ignore[arg-type]
        if node.operator == PROJECT:
            return ProjectionExpression(child, node.projection_attributes)
        return SelectionExpression(child, node.predicate)
    if isinstance(node, JoinNode):
        return JoinExpression(
            _node_to_expression(node.left),  # type: ignore[arg-type]
            _node_to_expression(node.right),  # type: ignore[arg-type]
            node.path,
        )
    raise PlanError(f"cannot convert node of type {type(node).__name__}")
