"""Join-order search.

The paper's closing note (Section 5) observes that distributed query
optimization commonly proceeds in two steps — pick a good plan, then
assign operations to servers — and that the safe-assignment algorithm
slots into the second step.  This module implements the *first* step: a
join-order search producing alternative left-deep plans for the same
query, so that callers can look for an order that is feasible (admits a
safe assignment) and cheap.

Two strategies are provided:

* :func:`enumerate_join_orders` — exhaustive enumeration of connected
  left-deep orders (exact, exponential; fine for the paper-scale queries
  of up to ~8 relations);
* :func:`greedy_join_order` — a connected greedy order favouring
  relations with many join edges, linear-ish, used by the synthetic
  benchmarks at larger scales.

:func:`optimize_join_order` combines either enumeration with a
caller-supplied evaluator (e.g. "is the plan feasible, and what does it
cost"), returning the best plan.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.algebra.builder import QuerySpec, build_plan
from repro.algebra.joins import JoinPath
from repro.algebra.schema import Catalog
from repro.algebra.tree import QueryTreePlan
from repro.exceptions import PlanError

#: Evaluator signature: plan -> score, or ``None`` when the plan is unusable
#: (e.g. infeasible under the policy).  Lower scores are better.
PlanEvaluator = Callable[[QueryTreePlan], Optional[float]]


def _condition_graph(spec: QuerySpec) -> dict:
    """Map each relation set position to the conditions it participates in.

    Returns a mapping ``relation_name -> set of JoinCondition`` built from
    every join step of the spec (order-independent connectivity).
    """
    conditions = set()
    for path in spec.join_paths:
        conditions.update(path.conditions)
    return conditions


def _relation_attributes(catalog: Catalog, names: Sequence[str]) -> dict:
    return {name: catalog.relation(name).attribute_set for name in names}


def _steps_for_order(
    order: Sequence[str],
    conditions: set,
    attrs: dict,
) -> Optional[List[JoinPath]]:
    """Join steps for a given relation order, or ``None`` if disconnected.

    Step ``i`` collects every condition bridging the accumulated schema of
    ``order[:i+1]`` with ``order[i+1]``; an empty step means the order
    would require a cartesian product, which the paper's query form (and
    :class:`~repro.algebra.tree.JoinNode`) excludes.
    """
    accumulated = set(attrs[order[0]])
    steps: List[JoinPath] = []
    for name in order[1:]:
        right = attrs[name]
        bridge = [
            c
            for c in conditions
            if (c.first in accumulated and c.second in right)
            or (c.second in accumulated and c.first in right)
        ]
        if not bridge:
            return None
        steps.append(JoinPath(bridge))
        accumulated.update(right)
    return steps


def enumerate_join_orders(catalog: Catalog, spec: QuerySpec) -> Iterator[QuerySpec]:
    """Yield every connected left-deep reordering of ``spec``.

    The original join conditions are redistributed to the steps of each
    order; orders requiring a cartesian product are skipped.  The original
    order is yielded first, then the others in lexicographic order, so
    callers preferring the user's order on ties get it for free.
    """
    from itertools import permutations

    conditions = _condition_graph(spec)
    attrs = _relation_attributes(catalog, spec.relations)
    seen_original = False
    orders = [spec.relations] + [
        p for p in sorted(permutations(spec.relations)) if p != spec.relations
    ]
    for order in orders:
        steps = _steps_for_order(order, conditions, attrs)
        if steps is None:
            continue
        if order == spec.relations and seen_original:
            continue
        if order == spec.relations:
            seen_original = True
        yield spec.reordered(order, steps)


def greedy_join_order(catalog: Catalog, spec: QuerySpec) -> QuerySpec:
    """A single connected order chosen greedily.

    Starts from the relation with the most join conditions and repeatedly
    appends the connected relation with the most conditions into the
    accumulated set (ties broken by name for determinism).

    Raises:
        PlanError: if the join graph is disconnected.
    """
    conditions = _condition_graph(spec)
    attrs = _relation_attributes(catalog, spec.relations)

    def degree(name: str) -> int:
        return sum(
            1
            for c in conditions
            if c.first in attrs[name] or c.second in attrs[name]
        )

    remaining = sorted(spec.relations, key=lambda n: (-degree(n), n))
    order = [remaining.pop(0)]
    accumulated = set(attrs[order[0]])
    while remaining:
        best = None
        best_links = -1
        for name in remaining:
            links = sum(
                1
                for c in conditions
                if (c.first in accumulated and c.second in attrs[name])
                or (c.second in accumulated and c.first in attrs[name])
            )
            if links > best_links or (links == best_links and best and name < best):
                best, best_links = name, links
        if best is None or best_links == 0:
            raise PlanError(
                f"join graph is disconnected: cannot link {remaining} to {order}"
            )
        remaining.remove(best)
        order.append(best)
        accumulated.update(attrs[best])
    steps = _steps_for_order(order, conditions, attrs)
    if steps is None:  # pragma: no cover - guarded by the loop above
        raise PlanError("greedy order unexpectedly disconnected")
    return spec.reordered(order, steps)


def optimize_join_order(
    catalog: Catalog,
    spec: QuerySpec,
    evaluator: PlanEvaluator,
    exhaustive: bool = True,
    project_intermediate: bool = False,
) -> Tuple[Optional[QueryTreePlan], Optional[float]]:
    """Search join orders for the plan with the best evaluator score.

    Args:
        catalog: the schema catalog.
        spec: the bound query.
        evaluator: maps a candidate plan to a score (lower is better) or
            ``None`` when the plan must be discarded (e.g. no safe
            assignment exists for it).
        exhaustive: enumerate all connected orders when true; otherwise
            evaluate only the original and the greedy order.
        project_intermediate: forwarded to :func:`build_plan`.

    Returns:
        ``(best_plan, best_score)``; ``(None, None)`` if every candidate
        order was discarded by the evaluator.
    """
    if exhaustive:
        candidates = enumerate_join_orders(catalog, spec)
    else:
        greedy = greedy_join_order(catalog, spec)
        candidates = iter([spec, greedy])
    best_plan: Optional[QueryTreePlan] = None
    best_score: Optional[float] = None
    for candidate in candidates:
        try:
            plan = build_plan(catalog, candidate, project_intermediate=project_intermediate)
        except PlanError:
            continue
        score = evaluator(plan)
        if score is None:
            continue
        if best_score is None or score < best_score:
            best_plan, best_score = plan, score
    return best_plan, best_score
