"""Logical relational-algebra expressions.

The paper considers queries of the algebraic form
:math:`\\pi_A(\\sigma_C(R_1 \\bowtie_{JC_1} \\dots \\bowtie_{JC_n} R_{n+1}))`.
This module models such expressions as an immutable AST with four node
kinds — base relation, projection, selection and (equi-)join — together
with schema inference, so that an expression always knows which
attributes its result carries.

Expressions are the *logical* layer: they say what is computed, not
where.  The executable, server-annotated counterpart is the query tree
plan of :mod:`repro.algebra.tree`; :func:`Expression.to_plan_node`
converts between the two.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.algebra.attributes import AttributeSet, attribute_set, format_attribute_set
from repro.algebra.joins import JoinPath
from repro.algebra.predicates import Predicate
from repro.algebra.schema import RelationSchema
from repro.exceptions import ExpressionError


class Expression:
    """Abstract base class of logical algebra expressions."""

    __slots__ = ()

    @property
    def schema(self) -> AttributeSet:
        """Attributes carried by the expression's result."""
        raise NotImplementedError

    def base_relations(self) -> List[RelationSchema]:
        """All base relations referenced, left-to-right, with duplicates."""
        raise NotImplementedError

    def project(self, attributes: Iterable[str]) -> "ProjectionExpression":
        """Wrap this expression in a projection."""
        return ProjectionExpression(self, attribute_set(attributes))

    def select(self, predicate: Predicate) -> "SelectionExpression":
        """Wrap this expression in a selection."""
        return SelectionExpression(self, predicate)

    def join(self, other: "Expression", path: JoinPath) -> "JoinExpression":
        """Join this expression with ``other`` on ``path``."""
        return JoinExpression(self, other, path)


class BaseRelation(Expression):
    """A leaf expression: a stored base relation."""

    __slots__ = ("_relation",)

    def __init__(self, relation: RelationSchema) -> None:
        if not isinstance(relation, RelationSchema):
            raise ExpressionError(
                f"BaseRelation requires a RelationSchema, got {type(relation).__name__}"
            )
        self._relation = relation

    @property
    def relation(self) -> RelationSchema:
        """The underlying schema."""
        return self._relation

    @property
    def schema(self) -> AttributeSet:
        return self._relation.attribute_set

    def base_relations(self) -> List[RelationSchema]:
        return [self._relation]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BaseRelation):
            return NotImplemented
        return self._relation == other._relation

    def __hash__(self) -> int:
        return hash(("base", self._relation))

    def __repr__(self) -> str:
        return self._relation.name

    __str__ = __repr__


class ProjectionExpression(Expression):
    """:math:`\\pi_X(E)` — keep only attributes ``X`` of the operand."""

    __slots__ = ("_operand", "_attributes")

    def __init__(self, operand: Expression, attributes: AttributeSet) -> None:
        if not isinstance(operand, Expression):
            raise ExpressionError("projection operand must be an Expression")
        attributes = frozenset(attributes)
        if not attributes:
            raise ExpressionError("projection must keep at least one attribute")
        missing = attributes - operand.schema
        if missing:
            raise ExpressionError(
                f"projection on attributes absent from operand schema: {sorted(missing)}"
            )
        self._operand = operand
        self._attributes = attributes

    @property
    def operand(self) -> Expression:
        """The projected expression."""
        return self._operand

    @property
    def attributes(self) -> AttributeSet:
        """The retained attributes ``X``."""
        return self._attributes

    @property
    def schema(self) -> AttributeSet:
        return self._attributes

    def base_relations(self) -> List[RelationSchema]:
        return self._operand.base_relations()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProjectionExpression):
            return NotImplemented
        return self._operand == other._operand and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(("pi", self._operand, self._attributes))

    def __repr__(self) -> str:
        return f"π{format_attribute_set(self._attributes)}({self._operand!r})"

    __str__ = __repr__


class SelectionExpression(Expression):
    """:math:`\\sigma_C(E)` — keep only tuples satisfying predicate ``C``."""

    __slots__ = ("_operand", "_predicate")

    def __init__(self, operand: Expression, predicate: Predicate) -> None:
        if not isinstance(operand, Expression):
            raise ExpressionError("selection operand must be an Expression")
        if not isinstance(predicate, Predicate):
            raise ExpressionError("selection requires a Predicate")
        missing = predicate.attributes - operand.schema
        if missing:
            raise ExpressionError(
                f"selection predicate references attributes absent from operand "
                f"schema: {sorted(missing)}"
            )
        self._operand = operand
        self._predicate = predicate

    @property
    def operand(self) -> Expression:
        """The filtered expression."""
        return self._operand

    @property
    def predicate(self) -> Predicate:
        """The selection condition ``C``."""
        return self._predicate

    @property
    def schema(self) -> AttributeSet:
        return self._operand.schema

    def base_relations(self) -> List[RelationSchema]:
        return self._operand.base_relations()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SelectionExpression):
            return NotImplemented
        return self._operand == other._operand and self._predicate == other._predicate

    def __hash__(self) -> int:
        return hash(("sigma", self._operand, self._predicate))

    def __repr__(self) -> str:
        return f"σ[{self._predicate}]({self._operand!r})"

    __str__ = __repr__


class JoinExpression(Expression):
    """:math:`E_l \\bowtie_j E_r` — equi-join of two expressions.

    Every condition of ``path`` must reference exactly one attribute from
    each operand's schema; this is what makes the join an *equi-join
    between the operands* rather than a stray selection.
    """

    __slots__ = ("_left", "_right", "_path")

    def __init__(self, left: Expression, right: Expression, path: JoinPath) -> None:
        if not isinstance(left, Expression) or not isinstance(right, Expression):
            raise ExpressionError("join operands must be Expressions")
        if not isinstance(path, JoinPath) or path.is_empty():
            raise ExpressionError("join requires a non-empty JoinPath")
        overlap = left.schema & right.schema
        if overlap:
            raise ExpressionError(
                f"join operands share attributes {sorted(overlap)}; the paper "
                "assumes globally distinct attribute names"
            )
        for condition in path:
            in_left = condition.first in left.schema or condition.second in left.schema
            in_right = condition.first in right.schema or condition.second in right.schema
            if not (in_left and in_right):
                raise ExpressionError(
                    f"join condition {condition} does not bridge the two operands"
                )
        self._left = left
        self._right = right
        self._path = path

    @property
    def left(self) -> Expression:
        """Left operand :math:`E_l`."""
        return self._left

    @property
    def right(self) -> Expression:
        """Right operand :math:`E_r`."""
        return self._right

    @property
    def path(self) -> JoinPath:
        """The join's own conditions ``j`` (not the cumulative path)."""
        return self._path

    @property
    def schema(self) -> AttributeSet:
        return self._left.schema | self._right.schema

    def base_relations(self) -> List[RelationSchema]:
        return self._left.base_relations() + self._right.base_relations()

    def left_join_attributes(self) -> AttributeSet:
        """The :math:`J_l` of the join: condition attributes on the left."""
        return self._path.attributes & self._left.schema

    def right_join_attributes(self) -> AttributeSet:
        """The :math:`J_r` of the join: condition attributes on the right."""
        return self._path.attributes & self._right.schema

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinExpression):
            return NotImplemented
        return (
            self._left == other._left
            and self._right == other._right
            and self._path == other._path
        )

    def __hash__(self) -> int:
        return hash(("join", self._left, self._right, self._path))

    def __repr__(self) -> str:
        return f"({self._left!r} ⋈{self._path} {self._right!r})"

    __str__ = __repr__
