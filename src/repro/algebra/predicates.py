"""Selection predicates.

The paper's queries are select-from-where with a selection condition
``C``; at the model level only the *set of attributes involved in the
condition* matters (it feeds :math:`R^\\sigma` of the profile, Figure 4),
but the tuple engine needs to actually evaluate conditions.  This module
provides both: symbolic attribute extraction and concrete evaluation.

A :class:`Predicate` is a conjunction of :class:`Comparison` atoms, each
comparing an attribute against a literal or against another attribute
with one of the standard operators.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Iterable, Mapping, Sequence, Tuple, Union

from repro.algebra.attributes import AttributeSet, validate_attribute_name
from repro.exceptions import PredicateError

#: Values a comparison literal may take in the tuple engine.
Literal = Union[str, int, float, bool, None]

_OPERATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Comparison:
    """A single comparison atom ``attribute op operand``.

    ``operand`` is either a literal value or another attribute name.  Use
    :meth:`attr_vs_attr` to build attribute/attribute comparisons
    explicitly — a bare string operand is always treated as a literal.
    """

    __slots__ = ("_attribute", "_op", "_operand", "_operand_is_attribute")

    def __init__(
        self,
        attribute: str,
        op: str,
        operand: Literal,
        operand_is_attribute: bool = False,
    ) -> None:
        self._attribute = validate_attribute_name(attribute)
        if op not in _OPERATORS:
            raise PredicateError(f"unsupported comparison operator: {op!r}")
        self._op = op
        if operand_is_attribute:
            if not isinstance(operand, str):
                raise PredicateError("attribute operand must be a string name")
            operand = validate_attribute_name(operand)
        self._operand = operand
        self._operand_is_attribute = operand_is_attribute

    @classmethod
    def attr_vs_attr(cls, left: str, op: str, right: str) -> "Comparison":
        """Build a comparison between two attributes of the same relation."""
        return cls(left, op, right, operand_is_attribute=True)

    @property
    def attribute(self) -> str:
        """Left-hand attribute name."""
        return self._attribute

    @property
    def op(self) -> str:
        """Operator symbol."""
        return self._op

    @property
    def operand(self) -> Literal:
        """Right-hand operand (literal or attribute name)."""
        return self._operand

    @property
    def operand_is_attribute(self) -> bool:
        """Whether the operand is an attribute rather than a literal."""
        return self._operand_is_attribute

    @property
    def attributes(self) -> AttributeSet:
        """All attributes mentioned — what feeds :math:`R^\\sigma`."""
        if self._operand_is_attribute:
            return frozenset((self._attribute, self._operand))  # type: ignore[arg-type]
        return frozenset((self._attribute,))

    def evaluate(self, row: Mapping[str, Literal]) -> bool:
        """Evaluate the comparison against a row (attribute -> value).

        ``None`` values follow SQL-ish semantics: any comparison with
        ``None`` on either side is false.

        Raises:
            PredicateError: if a referenced attribute is missing from the
                row or the value types are not comparable.
        """
        if self._attribute not in row:
            raise PredicateError(f"row has no attribute {self._attribute!r}")
        left_value = row[self._attribute]
        if self._operand_is_attribute:
            if self._operand not in row:
                raise PredicateError(f"row has no attribute {self._operand!r}")
            right_value = row[self._operand]  # type: ignore[index]
        else:
            right_value = self._operand
        if left_value is None or right_value is None:
            return False
        try:
            return _OPERATORS[self._op](left_value, right_value)
        except TypeError as exc:
            raise PredicateError(
                f"cannot compare {left_value!r} {self._op} {right_value!r}"
            ) from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Comparison):
            return NotImplemented
        return (
            self._attribute == other._attribute
            and self._op == other._op
            and self._operand == other._operand
            and self._operand_is_attribute == other._operand_is_attribute
        )

    def __hash__(self) -> int:
        return hash((self._attribute, self._op, self._operand, self._operand_is_attribute))

    def __repr__(self) -> str:
        rhs = self._operand if self._operand_is_attribute else repr(self._operand)
        return f"Comparison({self._attribute} {self._op} {rhs})"

    def __str__(self) -> str:
        if self._operand_is_attribute:
            return f"{self._attribute}{self._op}{self._operand}"
        if isinstance(self._operand, str):
            return f"{self._attribute}{self._op}'{self._operand}'"
        return f"{self._attribute}{self._op}{self._operand}"


class Predicate:
    """A conjunction of :class:`Comparison` atoms.

    The empty predicate is vacuously true (useful as a neutral element
    when composing WHERE clauses).
    """

    __slots__ = ("_comparisons",)

    def __init__(self, comparisons: Iterable[Comparison] = ()) -> None:
        comps = tuple(comparisons)
        for comp in comps:
            if not isinstance(comp, Comparison):
                raise PredicateError(
                    f"predicate atoms must be Comparison, got {type(comp).__name__}"
                )
        self._comparisons = comps

    @classmethod
    def true(cls) -> "Predicate":
        """The empty (always-true) predicate."""
        return cls(())

    @property
    def comparisons(self) -> Tuple[Comparison, ...]:
        """The conjunct atoms, in construction order."""
        return self._comparisons

    @property
    def attributes(self) -> AttributeSet:
        """Union of the attributes of every atom — the :math:`X` of
        :math:`\\sigma_X` in Figure 4."""
        result: set = set()
        for comp in self._comparisons:
            result.update(comp.attributes)
        return frozenset(result)

    def evaluate(self, row: Mapping[str, Literal]) -> bool:
        """Whether every atom holds on ``row``."""
        return all(comp.evaluate(row) for comp in self._comparisons)

    def conjoin(self, other: "Predicate") -> "Predicate":
        """Conjunction of two predicates."""
        return Predicate(self._comparisons + other._comparisons)

    def is_true(self) -> bool:
        """Whether the predicate is the empty conjunction."""
        return not self._comparisons

    def restrict_to(self, attributes: AttributeSet) -> Tuple["Predicate", "Predicate"]:
        """Split into (atoms referencing only ``attributes``, the rest).

        Used by the plan builder to push selections down to the subtree
        that owns their attributes.
        """
        inside = [c for c in self._comparisons if c.attributes <= attributes]
        outside = [c for c in self._comparisons if not (c.attributes <= attributes)]
        return Predicate(inside), Predicate(outside)

    def __len__(self) -> int:
        return len(self._comparisons)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return frozenset(self._comparisons) == frozenset(other._comparisons)

    def __hash__(self) -> int:
        return hash(frozenset(self._comparisons))

    def __repr__(self) -> str:
        return f"Predicate({' AND '.join(str(c) for c in self._comparisons) or 'TRUE'})"

    def __str__(self) -> str:
        return " AND ".join(str(c) for c in self._comparisons) or "TRUE"
