"""Equi-join conditions and join paths (Definition 2.1).

The paper denotes a conjunction of equi-join conditions as a pair
``<J_l, J_r>`` of attribute lists paired positionally, and a *join path*
as the set of such pairs accumulated along a sequence of joins.

Two requirements drive the representation chosen here:

* **Order insensitivity.**  Figure 3 writes the same semantic condition in
  both orders (authorization 2 uses ``(Holder, Patient)`` for server
  ``S_I`` while authorization 5 uses ``(Patient, Holder)`` for ``S_H``),
  and the worked example of Figure 7 requires the query's
  ``Citizen=Patient`` to match authorization 7's ``(Patient, Citizen)``.
  A join condition ``A = B`` is therefore normalized so that
  ``JoinCondition("A", "B") == JoinCondition("B", "A")``.

* **Exact path equality.**  Definition 3.3 compares join paths with
  equality, *not* containment: an extra join condition always adds
  information (which tuples have matches elsewhere), so a superset path is
  never implied.  Representing a join path as a frozenset of normalized
  atomic conditions makes this comparison canonical.

A ``<J_l, J_r>`` conjunction with ``len(J_l) == len(J_r) == k`` decomposes
into ``k`` atomic :class:`JoinCondition` objects; :meth:`JoinPath.of_pairs`
performs the decomposition.

Because join-path equality sits on the hottest paths of the system (every
``CanView`` probe keys on it, every policy index buckets by it), paths
built through the public constructors and combinators are **interned**:
structurally equal paths share one canonical instance, so equality is
usually an identity check and hashes are computed once.  Direct
``JoinPath(...)`` construction remains supported and remains value-equal
to the canonical instance — interning is an optimization, never a
semantic requirement.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Sequence, Tuple

from repro.algebra.attributes import AttributeSet, validate_attribute_name
from repro.exceptions import JoinPathError

#: Caps on the intern pools.  Past them, construction simply stops
#: memoizing (still correct, value-equality does the work), so pathological
#: workloads cannot grow the pools without bound.
_MAX_INTERNED_CONDITIONS = 1 << 16
_MAX_INTERNED_PATHS = 1 << 16


class JoinCondition:
    """A single normalized equi-join condition ``A = B``.

    Instances are immutable, hashable, and order-insensitive in their two
    attributes.  The two attributes must be distinct: ``A = A`` carries no
    join semantics and almost certainly indicates a naming bug under the
    paper's globally-unique-attribute-names assumption.
    """

    __slots__ = ("_first", "_second", "_hash", "_attrs")

    _POOL: Dict[Tuple[str, str], "JoinCondition"] = {}

    def __init__(self, left: str, right: str) -> None:
        left = validate_attribute_name(left)
        right = validate_attribute_name(right)
        if left == right:
            raise JoinPathError(
                f"join condition must relate two distinct attributes, got {left!r} = {right!r}"
            )
        # Canonical order: lexicographic, so (A, B) and (B, A) coincide.
        if left <= right:
            self._first, self._second = left, right
        else:
            self._first, self._second = right, left
        self._hash = hash((self._first, self._second))
        self._attrs: AttributeSet = None  # type: ignore[assignment]

    @classmethod
    def of(cls, left: str, right: str) -> "JoinCondition":
        """Interned constructor: equal conditions share one instance."""
        key = (left, right) if left <= right else (right, left)
        cached = cls._POOL.get(key)
        if cached is not None:
            return cached
        condition = cls(left, right)
        if len(cls._POOL) < _MAX_INTERNED_CONDITIONS:
            cls._POOL[(condition._first, condition._second)] = condition
        return condition

    @property
    def first(self) -> str:
        """Lexicographically smaller attribute of the condition."""
        return self._first

    @property
    def second(self) -> str:
        """Lexicographically larger attribute of the condition."""
        return self._second

    @property
    def attributes(self) -> AttributeSet:
        """The two attributes equated by this condition."""
        if self._attrs is None:
            self._attrs = frozenset((self._first, self._second))
        return self._attrs

    def mentions(self, attribute: str) -> bool:
        """Whether ``attribute`` participates in this condition."""
        return attribute == self._first or attribute == self._second

    def other(self, attribute: str) -> str:
        """Return the attribute equated with ``attribute``.

        Raises:
            JoinPathError: if ``attribute`` is not part of the condition.
        """
        if attribute == self._first:
            return self._second
        if attribute == self._second:
            return self._first
        raise JoinPathError(f"{attribute!r} does not appear in {self}")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, JoinCondition):
            return NotImplemented
        return self._first == other._first and self._second == other._second

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "JoinCondition") -> bool:
        if not isinstance(other, JoinCondition):
            return NotImplemented
        return (self._first, self._second) < (other._first, other._second)

    def __repr__(self) -> str:
        return f"JoinCondition({self._first!r}, {self._second!r})"

    def __str__(self) -> str:
        return f"({self._first}, {self._second})"


class JoinPath:
    """An immutable set of :class:`JoinCondition` objects (Definition 2.1).

    The empty join path (``JoinPath.empty()``) is the profile of any base
    relation.  Join paths form a commutative, idempotent monoid under
    :meth:`union`, which is exactly what the Figure 4 composition rules
    require (:math:`R^\\bowtie = R_l^\\bowtie \\cup R_r^\\bowtie \\cup j`).

    Hashes, sorted renderings, mentioned-attribute sets and the canonical
    sort key are all computed once per instance; combinators return
    interned canonical instances (see the module docstring).
    """

    __slots__ = ("_conditions", "_hash", "_key", "_attrs", "_sorted")

    _EMPTY: "JoinPath" = None  # type: ignore[assignment]
    _POOL: Dict[FrozenSet[JoinCondition], "JoinPath"] = {}

    def __init__(self, conditions: Iterable[JoinCondition] = ()) -> None:
        conds = frozenset(conditions)
        for cond in conds:
            if not isinstance(cond, JoinCondition):
                raise JoinPathError(
                    f"join path elements must be JoinCondition, got {type(cond).__name__}"
                )
        self._conditions = conds
        self._hash = hash(conds)
        self._key: Tuple[Tuple[str, str], ...] = None  # type: ignore[assignment]
        self._attrs: AttributeSet = None  # type: ignore[assignment]
        self._sorted: Tuple[JoinCondition, ...] = None  # type: ignore[assignment]

    @classmethod
    def interned(cls, conditions: Iterable[JoinCondition]) -> "JoinPath":
        """The canonical shared instance for ``conditions``.

        Structurally equal paths interned through this constructor are
        the *same* object, so downstream equality checks (the Definition
        3.3 clause 2, policy index probes) reduce to identity.
        """
        conds = conditions if isinstance(conditions, frozenset) else frozenset(conditions)
        cached = cls._POOL.get(conds)
        if cached is not None:
            return cached
        path = cls(conds)
        if len(cls._POOL) < _MAX_INTERNED_PATHS:
            cls._POOL[path._conditions] = path
        return path

    @classmethod
    def empty(cls) -> "JoinPath":
        """The empty join path (shared singleton)."""
        if cls._EMPTY is None:
            cls._EMPTY = cls.interned(())
        return cls._EMPTY

    @classmethod
    def of(cls, *pairs: Tuple[str, str]) -> "JoinPath":
        """Build a join path from ``(left, right)`` attribute-name pairs.

        >>> JoinPath.of(("Holder", "Patient")) == JoinPath.of(("Patient", "Holder"))
        True
        """
        return cls.interned(JoinCondition.of(left, right) for left, right in pairs)

    @classmethod
    def of_pairs(cls, pairs: Iterable[Tuple[Sequence[str], Sequence[str]]]) -> "JoinPath":
        """Build a join path from the paper's ``<J_l, J_r>`` list pairs.

        Each pair consists of two equal-length attribute lists matched
        positionally; every position contributes one atomic condition.

        Raises:
            JoinPathError: if a pair's lists differ in length or are empty.
        """
        conditions = []
        for j_left, j_right in pairs:
            if len(j_left) != len(j_right):
                raise JoinPathError(
                    f"join pair lists must have equal length, got {list(j_left)!r} and {list(j_right)!r}"
                )
            if not j_left:
                raise JoinPathError("join pair lists must be non-empty")
            for left, right in zip(j_left, j_right):
                conditions.append(JoinCondition.of(left, right))
        return cls.interned(conditions)

    @property
    def conditions(self) -> FrozenSet[JoinCondition]:
        """The atomic conditions of the path."""
        return self._conditions

    @property
    def attributes(self) -> AttributeSet:
        """All attributes mentioned anywhere in the path (cached)."""
        if self._attrs is None:
            result: set = set()
            for cond in self._conditions:
                result.add(cond._first)
                result.add(cond._second)
            self._attrs = frozenset(result)
        return self._attrs

    def union(self, *others: "JoinPath") -> "JoinPath":
        """Set-union of this path with ``others`` (Figure 4 join rule)."""
        conditions = self._conditions
        changed = False
        for other in others:
            if other._conditions is not conditions and not (other._conditions <= conditions):
                if not changed:
                    conditions = set(conditions)
                    changed = True
                conditions.update(other._conditions)
        if not changed:
            return self if self._conditions in JoinPath._POOL else JoinPath.interned(self._conditions)
        return JoinPath.interned(conditions)

    def with_condition(self, condition: JoinCondition) -> "JoinPath":
        """Return a new path extended with one atomic condition."""
        if condition in self._conditions:
            return JoinPath.interned(self._conditions)
        return JoinPath.interned(self._conditions | {condition})

    def canonical_key(self) -> Tuple[Tuple[str, str], ...]:
        """A deterministic total-order key: the sorted tuple of the
        conditions' canonical ``(first, second)`` pairs.  Used wherever
        rule groups must be processed in a stable, hash-independent
        order (e.g. :func:`repro.core.closure.minimize_policy`)."""
        if self._key is None:
            self._key = tuple(
                sorted((c._first, c._second) for c in self._conditions)
            )
        return self._key

    def is_empty(self) -> bool:
        """Whether the path contains no conditions."""
        return not self._conditions

    def issubset(self, other: "JoinPath") -> bool:
        """Whether every condition of this path appears in ``other``."""
        return self._conditions <= other._conditions

    def sorted_conditions(self) -> Tuple[JoinCondition, ...]:
        """The conditions in deterministic (lexicographic) order."""
        if self._sorted is None:
            self._sorted = tuple(sorted(self._conditions))
        return self._sorted

    def __iter__(self) -> Iterator[JoinCondition]:
        return iter(self.sorted_conditions())

    def __len__(self) -> int:
        return len(self._conditions)

    def __contains__(self, condition: object) -> bool:
        return condition in self._conditions

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, JoinPath):
            return NotImplemented
        return self._hash == other._hash and self._conditions == other._conditions

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(str(c) for c in self.sorted_conditions())
        return f"JoinPath({{{inner}}})"

    def __str__(self) -> str:
        if self.is_empty():
            return "-"
        return "{" + ", ".join(str(c) for c in self.sorted_conditions()) + "}"


def intern_path(path: JoinPath) -> JoinPath:
    """The canonical instance value-equal to ``path``.

    Identity-returning for already-canonical instances; used by the
    policy layer so index keys always hash and compare at interned speed.
    """
    cached = JoinPath._POOL.get(path._conditions)
    if cached is not None:
        return cached
    if len(JoinPath._POOL) < _MAX_INTERNED_PATHS:
        JoinPath._POOL[path._conditions] = path
    return path


def clear_intern_pools() -> None:
    """Drop the condition/path intern pools (testing and long-lived
    processes that cycle through many catalogs)."""
    JoinCondition._POOL.clear()
    JoinPath._POOL.clear()
    JoinPath._EMPTY = None
