"""Equi-join conditions and join paths (Definition 2.1).

The paper denotes a conjunction of equi-join conditions as a pair
``<J_l, J_r>`` of attribute lists paired positionally, and a *join path*
as the set of such pairs accumulated along a sequence of joins.

Two requirements drive the representation chosen here:

* **Order insensitivity.**  Figure 3 writes the same semantic condition in
  both orders (authorization 2 uses ``(Holder, Patient)`` for server
  ``S_I`` while authorization 5 uses ``(Patient, Holder)`` for ``S_H``),
  and the worked example of Figure 7 requires the query's
  ``Citizen=Patient`` to match authorization 7's ``(Patient, Citizen)``.
  A join condition ``A = B`` is therefore normalized so that
  ``JoinCondition("A", "B") == JoinCondition("B", "A")``.

* **Exact path equality.**  Definition 3.3 compares join paths with
  equality, *not* containment: an extra join condition always adds
  information (which tuples have matches elsewhere), so a superset path is
  never implied.  Representing a join path as a frozenset of normalized
  atomic conditions makes this comparison canonical.

A ``<J_l, J_r>`` conjunction with ``len(J_l) == len(J_r) == k`` decomposes
into ``k`` atomic :class:`JoinCondition` objects; :meth:`JoinPath.of_pairs`
performs the decomposition.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Sequence, Tuple

from repro.algebra.attributes import AttributeSet, validate_attribute_name
from repro.exceptions import JoinPathError


class JoinCondition:
    """A single normalized equi-join condition ``A = B``.

    Instances are immutable, hashable, and order-insensitive in their two
    attributes.  The two attributes must be distinct: ``A = A`` carries no
    join semantics and almost certainly indicates a naming bug under the
    paper's globally-unique-attribute-names assumption.
    """

    __slots__ = ("_first", "_second")

    def __init__(self, left: str, right: str) -> None:
        left = validate_attribute_name(left)
        right = validate_attribute_name(right)
        if left == right:
            raise JoinPathError(
                f"join condition must relate two distinct attributes, got {left!r} = {right!r}"
            )
        # Canonical order: lexicographic, so (A, B) and (B, A) coincide.
        if left <= right:
            self._first, self._second = left, right
        else:
            self._first, self._second = right, left

    @property
    def first(self) -> str:
        """Lexicographically smaller attribute of the condition."""
        return self._first

    @property
    def second(self) -> str:
        """Lexicographically larger attribute of the condition."""
        return self._second

    @property
    def attributes(self) -> AttributeSet:
        """The two attributes equated by this condition."""
        return frozenset((self._first, self._second))

    def mentions(self, attribute: str) -> bool:
        """Whether ``attribute`` participates in this condition."""
        return attribute == self._first or attribute == self._second

    def other(self, attribute: str) -> str:
        """Return the attribute equated with ``attribute``.

        Raises:
            JoinPathError: if ``attribute`` is not part of the condition.
        """
        if attribute == self._first:
            return self._second
        if attribute == self._second:
            return self._first
        raise JoinPathError(f"{attribute!r} does not appear in {self}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinCondition):
            return NotImplemented
        return self._first == other._first and self._second == other._second

    def __hash__(self) -> int:
        return hash((self._first, self._second))

    def __lt__(self, other: "JoinCondition") -> bool:
        if not isinstance(other, JoinCondition):
            return NotImplemented
        return (self._first, self._second) < (other._first, other._second)

    def __repr__(self) -> str:
        return f"JoinCondition({self._first!r}, {self._second!r})"

    def __str__(self) -> str:
        return f"({self._first}, {self._second})"


class JoinPath:
    """An immutable set of :class:`JoinCondition` objects (Definition 2.1).

    The empty join path (``JoinPath.empty()``) is the profile of any base
    relation.  Join paths form a commutative, idempotent monoid under
    :meth:`union`, which is exactly what the Figure 4 composition rules
    require (:math:`R^\\bowtie = R_l^\\bowtie \\cup R_r^\\bowtie \\cup j`).
    """

    __slots__ = ("_conditions",)

    _EMPTY: "JoinPath" = None  # type: ignore[assignment]

    def __init__(self, conditions: Iterable[JoinCondition] = ()) -> None:
        conds = frozenset(conditions)
        for cond in conds:
            if not isinstance(cond, JoinCondition):
                raise JoinPathError(
                    f"join path elements must be JoinCondition, got {type(cond).__name__}"
                )
        self._conditions = conds

    @classmethod
    def empty(cls) -> "JoinPath":
        """The empty join path (shared singleton)."""
        if cls._EMPTY is None:
            cls._EMPTY = cls(())
        return cls._EMPTY

    @classmethod
    def of(cls, *pairs: Tuple[str, str]) -> "JoinPath":
        """Build a join path from ``(left, right)`` attribute-name pairs.

        >>> JoinPath.of(("Holder", "Patient")) == JoinPath.of(("Patient", "Holder"))
        True
        """
        return cls(JoinCondition(left, right) for left, right in pairs)

    @classmethod
    def of_pairs(cls, pairs: Iterable[Tuple[Sequence[str], Sequence[str]]]) -> "JoinPath":
        """Build a join path from the paper's ``<J_l, J_r>`` list pairs.

        Each pair consists of two equal-length attribute lists matched
        positionally; every position contributes one atomic condition.

        Raises:
            JoinPathError: if a pair's lists differ in length or are empty.
        """
        conditions = []
        for j_left, j_right in pairs:
            if len(j_left) != len(j_right):
                raise JoinPathError(
                    f"join pair lists must have equal length, got {list(j_left)!r} and {list(j_right)!r}"
                )
            if not j_left:
                raise JoinPathError("join pair lists must be non-empty")
            for left, right in zip(j_left, j_right):
                conditions.append(JoinCondition(left, right))
        return cls(conditions)

    @property
    def conditions(self) -> FrozenSet[JoinCondition]:
        """The atomic conditions of the path."""
        return self._conditions

    @property
    def attributes(self) -> AttributeSet:
        """All attributes mentioned anywhere in the path."""
        result: set = set()
        for cond in self._conditions:
            result.update(cond.attributes)
        return frozenset(result)

    def union(self, *others: "JoinPath") -> "JoinPath":
        """Set-union of this path with ``others`` (Figure 4 join rule)."""
        conditions = set(self._conditions)
        for other in others:
            conditions.update(other._conditions)
        return JoinPath(conditions)

    def with_condition(self, condition: JoinCondition) -> "JoinPath":
        """Return a new path extended with one atomic condition."""
        return JoinPath(self._conditions | {condition})

    def is_empty(self) -> bool:
        """Whether the path contains no conditions."""
        return not self._conditions

    def issubset(self, other: "JoinPath") -> bool:
        """Whether every condition of this path appears in ``other``."""
        return self._conditions <= other._conditions

    def sorted_conditions(self) -> Tuple[JoinCondition, ...]:
        """The conditions in deterministic (lexicographic) order."""
        return tuple(sorted(self._conditions))

    def __iter__(self) -> Iterator[JoinCondition]:
        return iter(self.sorted_conditions())

    def __len__(self) -> int:
        return len(self._conditions)

    def __contains__(self, condition: object) -> bool:
        return condition in self._conditions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinPath):
            return NotImplemented
        return self._conditions == other._conditions

    def __hash__(self) -> int:
        return hash(self._conditions)

    def __repr__(self) -> str:
        inner = ", ".join(str(c) for c in self.sorted_conditions())
        return f"JoinPath({{{inner}}})"

    def __str__(self) -> str:
        if self.is_empty():
            return "-"
        return "{" + ", ".join(str(c) for c in self.sorted_conditions()) + "}"
