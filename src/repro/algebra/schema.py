"""Relation schemas and the distributed catalog.

A :class:`RelationSchema` is the paper's ``R(A_1, ..., A_n)`` with an
optional primary key and the name of the server storing the relation
(Figure 1 places each relation at exactly one server).

A :class:`Catalog` collects the schemas of a distributed system, enforces
the paper's globally-distinct-attribute-names assumption, and records the
*join edges* — the "lines" of Figure 1 — i.e. the attribute pairs over
which joins are considered meaningful.  Join edges bound the chase closure
(:mod:`repro.core.closure`) and drive the synthetic workload generator.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.attributes import AttributeSet, validate_attribute_name
from repro.algebra.joins import JoinCondition, JoinPath
from repro.algebra.universe import AttributeUniverse
from repro.exceptions import SchemaError, UnknownAttributeError, UnknownRelationError


class RelationSchema:
    """Schema of a single relation: name, ordered attributes, key, server.

    Args:
        name: relation name, unique within a catalog.
        attributes: ordered attribute names (order is cosmetic; the model
            works on sets, but ordered schemas render nicely and drive the
            tuple engine's column order).
        primary_key: subset of ``attributes`` uniquely identifying tuples;
            defaults to the first attribute.
        server: name of the server storing the relation, if placed.
    """

    __slots__ = ("_name", "_attributes", "_primary_key", "_server", "_attr_set")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        primary_key: Optional[Sequence[str]] = None,
        server: Optional[str] = None,
    ) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"invalid relation name: {name!r}")
        attrs = tuple(validate_attribute_name(a) for a in attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"relation {name!r} has duplicate attributes: {attrs}")
        if primary_key is None:
            key = (attrs[0],)
        else:
            key = tuple(primary_key)
            unknown = [a for a in key if a not in attrs]
            if unknown:
                raise SchemaError(
                    f"primary key of {name!r} references unknown attributes: {unknown}"
                )
            if not key:
                raise SchemaError(f"primary key of {name!r} must be non-empty")
        self._name = name
        self._attributes = attrs
        self._primary_key = key
        self._server = server
        self._attr_set: AttributeSet = None  # type: ignore[assignment]

    @property
    def name(self) -> str:
        """Relation name."""
        return self._name

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Ordered attribute names."""
        return self._attributes

    @property
    def attribute_set(self) -> AttributeSet:
        """The schema as an (unordered) attribute set — the base profile's
        :math:`R^\\pi`.

        Cached; a catalog replaces the cache with the interned bitset
        representation of its :attr:`Catalog.universe` so every base
        profile built from a placed relation carries masks for free.
        """
        if self._attr_set is None:
            self._attr_set = frozenset(self._attributes)
        return self._attr_set

    @property
    def primary_key(self) -> Tuple[str, ...]:
        """Primary-key attributes."""
        return self._primary_key

    @property
    def server(self) -> Optional[str]:
        """Name of the storing server, or ``None`` if unplaced."""
        return self._server

    def placed_at(self, server: str) -> "RelationSchema":
        """Return a copy of this schema placed at ``server``."""
        return RelationSchema(self._name, self._attributes, self._primary_key, server)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._attributes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return (
            self._name == other._name
            and self._attributes == other._attributes
            and self._primary_key == other._primary_key
            and self._server == other._server
        )

    def __hash__(self) -> int:
        return hash((self._name, self._attributes, self._primary_key, self._server))

    def __repr__(self) -> str:
        key = ", ".join(self._primary_key)
        at = f" @ {self._server}" if self._server else ""
        return f"{self._name}({', '.join(self._attributes)}; key={key}){at}"


class Catalog:
    """The schemas and join edges of a distributed system.

    The catalog enforces the paper's simplifying assumption that relation
    and attribute names are globally distinct (Section 2): adding a
    relation whose attributes collide with an existing relation raises
    :class:`~repro.exceptions.SchemaError` unless the caller qualified the
    names with dot notation.
    """

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        self._attribute_owner: Dict[str, str] = {}
        self._join_edges: set = set()
        self._universe: Optional[AttributeUniverse] = None
        for relation in relations:
            self.add_relation(relation)

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------

    def add_relation(self, relation: RelationSchema) -> None:
        """Register a relation schema.

        Raises:
            SchemaError: on duplicate relation names or attribute-name
                collisions across relations.
        """
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name: {relation.name!r}")
        for attribute in relation.attributes:
            owner = self._attribute_owner.get(attribute)
            if owner is not None:
                raise SchemaError(
                    f"attribute {attribute!r} of {relation.name!r} collides with "
                    f"relation {owner!r}; qualify it as {owner}.{attribute} / "
                    f"{relation.name}.{attribute}"
                )
        self._relations[relation.name] = relation
        for attribute in relation.attributes:
            self._attribute_owner[attribute] = relation.name
        if self._universe is not None:
            self._intern_relation(relation)

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name.

        Raises:
            UnknownRelationError: if no such relation exists.
        """
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def relations(self) -> List[RelationSchema]:
        """All relation schemas, sorted by name for determinism."""
        return [self._relations[name] for name in sorted(self._relations)]

    def relation_names(self) -> List[str]:
        """All relation names, sorted."""
        return sorted(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations())

    # ------------------------------------------------------------------
    # Representation kernel (see repro.algebra.universe)
    # ------------------------------------------------------------------

    @property
    def universe(self) -> AttributeUniverse:
        """The catalog-scoped :class:`AttributeUniverse`.

        Built lazily over every registered attribute (in relation
        insertion order, so bit positions are deterministic) and kept in
        sync by :meth:`add_relation`.  Accessing it also replaces each
        schema's cached :attr:`RelationSchema.attribute_set` with the
        interned bitset representation, so base-relation profiles carry
        masks from then on.
        """
        if self._universe is None:
            self._universe = AttributeUniverse()
            for relation in self._relations.values():
                self._intern_relation(relation)
        return self._universe

    def _intern_relation(self, relation: RelationSchema) -> None:
        relation._attr_set = self._universe.attr_set(relation.attributes)

    def attr_set(self, attributes: Iterable[str]) -> AttributeSet:
        """Intern ``attributes`` in the catalog universe (they need not be
        registered schema attributes — the universe is an interner, not a
        validator of schema membership)."""
        return self.universe.attr_set(attributes)

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------

    def owner_of(self, attribute: str) -> RelationSchema:
        """Return the relation owning ``attribute``.

        Raises:
            UnknownAttributeError: if the attribute belongs to no relation.
        """
        owner = self._attribute_owner.get(attribute)
        if owner is None:
            raise UnknownAttributeError(attribute, "catalog")
        return self._relations[owner]

    def has_attribute(self, attribute: str) -> bool:
        """Whether any relation owns ``attribute``."""
        return attribute in self._attribute_owner

    def all_attributes(self) -> AttributeSet:
        """Every attribute of every relation."""
        return frozenset(self._attribute_owner)

    def relations_of(self, attributes: Iterable[str]) -> List[str]:
        """Names of the relations owning ``attributes``, sorted, deduplicated.

        Raises:
            UnknownAttributeError: for attributes owned by no relation.
        """
        names = {self.owner_of(a).name for a in attributes}
        return sorted(names)

    # ------------------------------------------------------------------
    # Join edges (the "lines" of Figure 1)
    # ------------------------------------------------------------------

    def add_join_edge(self, left: str, right: str) -> JoinCondition:
        """Declare that joining on ``left = right`` is meaningful.

        Both attributes must already belong to catalog relations.  Returns
        the normalized :class:`JoinCondition`.
        """
        for attribute in (left, right):
            if not self.has_attribute(attribute):
                raise UnknownAttributeError(attribute, "join edge")
        condition = JoinCondition.of(left, right)
        self._join_edges.add(condition)
        return condition

    def join_edges(self) -> Tuple[JoinCondition, ...]:
        """All declared join edges, deterministically ordered."""
        return tuple(sorted(self._join_edges))

    def is_join_edge(self, condition: JoinCondition) -> bool:
        """Whether ``condition`` was declared as a join edge."""
        return condition in self._join_edges

    def join_edges_between(self, left_relation: str, right_relation: str) -> List[JoinCondition]:
        """Join edges connecting two given relations (either orientation)."""
        left_attrs = self.relation(left_relation).attribute_set
        right_attrs = self.relation(right_relation).attribute_set
        edges = []
        for condition in self.join_edges():
            a, b = condition.first, condition.second
            if (a in left_attrs and b in right_attrs) or (a in right_attrs and b in left_attrs):
                edges.append(condition)
        return edges

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def server_of(self, relation_name: str) -> str:
        """Return the server storing ``relation_name``.

        Raises:
            SchemaError: if the relation is not placed at any server.
        """
        relation = self.relation(relation_name)
        if relation.server is None:
            raise SchemaError(f"relation {relation_name!r} is not placed at any server")
        return relation.server

    def servers(self) -> List[str]:
        """All distinct server names hosting at least one relation, sorted."""
        return sorted({r.server for r in self._relations.values() if r.server is not None})

    def relations_at(self, server: str) -> List[RelationSchema]:
        """Relations stored at ``server``, sorted by name."""
        return [r for r in self.relations() if r.server == server]

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------

    def validate_join_path(self, path: JoinPath) -> None:
        """Check that every attribute of ``path`` exists in the catalog.

        Raises:
            UnknownAttributeError: on the first unresolved attribute.
        """
        for attribute in sorted(path.attributes):
            if not self.has_attribute(attribute):
                raise UnknownAttributeError(attribute, "join path")

    def describe(self) -> str:
        """Human-readable catalog summary (Figure 1 style)."""
        lines = []
        for relation in self.relations():
            lines.append(repr(relation))
        if self._join_edges:
            lines.append("join edges: " + ", ".join(str(e) for e in self.join_edges()))
        return "\n".join(lines)
