"""Query specification and minimized plan construction.

A :class:`QuerySpec` captures the paper's query form — ``SELECT A FROM
R_1 JOIN ... JOIN R_{n+1} WHERE C`` — independently of any surface
syntax (the SQL front-end of :mod:`repro.sql` produces one, and tests
build them directly).

:func:`build_plan` turns a spec into a :class:`QueryTreePlan` applying
the minimization the paper assumes (Section 2): projections are pushed
down to eliminate unnecessary attributes as early as possible, and
single-relation selections are evaluated at the leaves.  As the paper
notes, push-down matters for security as much as efficiency — it
discloses only the attributes needed for the computation.

The default construction reproduces the paper's Figure 2 exactly:
projections are pushed to the *leaves* (below which no join attribute
may be dropped) plus one final projection at the root; pass
``project_intermediate=True`` to also insert projections above joins
whenever attributes become dead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.algebra.attributes import AttributeSet, attribute_set
from repro.algebra.joins import JoinPath
from repro.algebra.predicates import Predicate
from repro.algebra.schema import Catalog
from repro.algebra.tree import (
    PROJECT,
    SELECT,
    JoinNode,
    LeafNode,
    PlanNode,
    QueryTreePlan,
    UnaryNode,
)
from repro.exceptions import PlanError, UnknownAttributeError


class QuerySpec:
    """A bound select-from-where query.

    Args:
        relations: relation names in FROM order (left-deep join order).
        join_paths: one :class:`JoinPath` per join step; ``join_paths[i]``
            joins the accumulated result of ``relations[:i+1]`` with
            ``relations[i+1]``.  Must have ``len(relations) - 1`` entries.
        select: output attributes (the SELECT clause).
        where: selection predicate (the WHERE clause); defaults to true.
    """

    __slots__ = ("_relations", "_join_paths", "_select", "_where")

    def __init__(
        self,
        relations: Sequence[str],
        join_paths: Sequence[JoinPath],
        select: AttributeSet,
        where: Optional[Predicate] = None,
    ) -> None:
        if not relations:
            raise PlanError("query must reference at least one relation")
        if len(set(relations)) != len(relations):
            raise PlanError(f"duplicate relations in FROM clause: {list(relations)}")
        if len(join_paths) != len(relations) - 1:
            raise PlanError(
                f"{len(relations)} relations require {len(relations) - 1} join "
                f"paths, got {len(join_paths)}"
            )
        select = frozenset(select)
        if not select:
            raise PlanError("SELECT clause must name at least one attribute")
        self._relations = tuple(relations)
        self._join_paths = tuple(join_paths)
        self._select = select
        self._where = where if where is not None else Predicate.true()

    @property
    def relations(self) -> Tuple[str, ...]:
        """Relation names in FROM order."""
        return self._relations

    @property
    def join_paths(self) -> Tuple[JoinPath, ...]:
        """Join paths of the successive join steps."""
        return self._join_paths

    @property
    def select(self) -> AttributeSet:
        """Output attributes."""
        return self._select

    @property
    def where(self) -> Predicate:
        """Selection predicate."""
        return self._where

    def full_join_path(self) -> JoinPath:
        """Union of every join step's conditions — the query's join path."""
        if not self._join_paths:
            return JoinPath.empty()
        return self._join_paths[0].union(*self._join_paths[1:])

    def reordered(self, relations: Sequence[str], join_paths: Sequence[JoinPath]) -> "QuerySpec":
        """A copy of the spec with a different FROM order / join steps."""
        return QuerySpec(relations, join_paths, self._select, self._where)

    def fingerprint(self) -> Tuple[object, ...]:
        """A canonical, hashable identity of the bound query.

        Two specs that plan identically share one fingerprint: the FROM
        order and per-step join paths (via
        :meth:`~repro.algebra.joins.JoinPath.canonical_key`, so condition
        insertion order never matters), the SELECT set sorted, and the
        WHERE conjunction as sorted atom renderings (conjunct order never
        matters either).  The plan cache
        (:mod:`repro.core.plancache`) keys on this value.
        """
        return (
            self._relations,
            tuple(path.canonical_key() for path in self._join_paths),
            tuple(sorted(self._select)),
            tuple(sorted(str(c) for c in self._where.comparisons)),
        )

    def __repr__(self) -> str:
        return (
            f"QuerySpec(select={sorted(self._select)}, from={list(self._relations)}, "
            f"where={self._where})"
        )


def build_plan(
    catalog: Catalog,
    spec: QuerySpec,
    project_intermediate: bool = False,
) -> QueryTreePlan:
    """Build a minimized left-deep query tree plan from a bound spec.

    The construction proceeds in FROM order:

    1. validate every referenced name against the catalog;
    2. at each leaf, apply single-relation WHERE atoms as a selection,
       then project to the attributes needed above the leaf (SELECT
       attributes plus join attributes of *any* step plus attributes of
       cross-relation WHERE atoms);
    3. join left-deep following ``spec.join_paths``, attaching every
       cross-relation WHERE atom at the lowest join covering it;
    4. optionally project after each join to drop dead attributes
       (``project_intermediate=True``), and finally project to the SELECT
       attributes at the root.

    Raises:
        PlanError: on structurally invalid specs (bad join steps, SELECT
            attributes not produced by the FROM clause).
        UnknownAttributeError / UnknownRelationError: on unresolved names.
    """
    # Activate the catalog's representation kernel: from here on every
    # schema's attribute set is the interned bitset form, so the profiles
    # the planner derives from this plan carry masks throughout.
    catalog.universe
    schemas = [catalog.relation(name) for name in spec.relations]
    available: set = set()
    for schema in schemas:
        available.update(schema.attribute_set)
    _check_known(spec.select, available, "SELECT clause")
    _check_known(spec.where.attributes, available, "WHERE clause")
    for path in spec.join_paths:
        _check_known(path.attributes, available, "JOIN conditions")

    # Attributes that must survive past the leaves.
    join_attributes: set = set()
    for path in spec.join_paths:
        join_attributes.update(path.attributes)
    single, cross = _split_where(spec, schemas)
    needed_above_leaves = set(spec.select) | join_attributes | cross.attributes

    # Build (possibly selected and projected) leaves.
    nodes: List[PlanNode] = []
    for schema in schemas:
        node: PlanNode = LeafNode(schema)
        leaf_predicate = single.get(schema.name)
        if leaf_predicate is not None and not leaf_predicate.is_true():
            node = UnaryNode(SELECT, leaf_predicate, node)
        keep = frozenset(needed_above_leaves & schema.attribute_set)
        if keep and keep != schema.attribute_set:
            node = UnaryNode(PROJECT, keep, node)
        nodes.append(node)

    # Left-deep joins, attaching cross-relation WHERE atoms as soon as
    # their attributes are all available.
    current = nodes[0]
    pending = list(cross.comparisons)
    for index, path in enumerate(spec.join_paths):
        right = nodes[index + 1]
        _validate_join_step(path, current.schema, right.schema, index)
        current = JoinNode(current, right, path)
        if pending:
            ready = [c for c in pending if c.attributes <= current.schema]
            if ready:
                current = UnaryNode(SELECT, Predicate(ready), current)
                pending = [c for c in pending if c not in ready]
        if project_intermediate and index < len(spec.join_paths) - 1:
            still_needed = set(spec.select) | Predicate(pending).attributes
            for later in spec.join_paths[index + 1 :]:
                still_needed.update(later.attributes)
            keep = frozenset(still_needed & current.schema)
            if keep and keep != current.schema:
                current = UnaryNode(PROJECT, keep, current)
    if pending:
        raise PlanError(
            f"WHERE atoms never became applicable: {[str(c) for c in pending]}"
        )

    missing = spec.select - current.schema
    if missing:
        raise PlanError(f"SELECT attributes not produced by FROM clause: {sorted(missing)}")
    if spec.select != current.schema:
        current = UnaryNode(PROJECT, spec.select, current)
    return QueryTreePlan(current)


#: A join shape: a relation name, or ``(left_shape, right_shape, JoinPath)``.
#: Shapes let callers (notably the SQL binder, for parenthesized FROM
#: clauses) request arbitrary binary tree forms.
JoinShape = Union[str, Tuple[object, object, JoinPath]]


def build_shaped_plan(
    catalog: Catalog,
    shape: JoinShape,
    select: AttributeSet,
    where: Optional[Predicate] = None,
) -> QueryTreePlan:
    """Build a minimized plan with an explicitly requested tree shape.

    Args:
        catalog: the schema catalog.
        shape: a relation name, or a ``(left, right, JoinPath)`` triple
            nesting recursively — e.g. the shape of
            ``(A JOIN B ON ...) JOIN (C JOIN D ON ...) ON ...``.
        select: output attributes.
        where: selection predicate; single-relation atoms are pushed to
            the leaves, the rest applies above the lowest covering join.

    Push-down follows :func:`build_plan`: leaves are filtered and
    projected to what survives upward, and the root projects to
    ``select``.

    Raises:
        PlanError: on malformed shapes, duplicate relations, non-bridging
            join conditions, or SELECT attributes the shape cannot
            produce.
    """
    where = where if where is not None else Predicate.true()
    names: List[str] = []

    def collect(node: JoinShape) -> None:
        if isinstance(node, str):
            names.append(node)
            return
        if not (isinstance(node, tuple) and len(node) == 3):
            raise PlanError(
                f"shape nodes must be relation names or (left, right, JoinPath) "
                f"triples, got {node!r}"
            )
        collect(node[0])  # type: ignore[index]
        collect(node[1])  # type: ignore[index]
        if not isinstance(node[2], JoinPath) or node[2].is_empty():
            raise PlanError("shape joins require a non-empty JoinPath")

    collect(shape)
    if len(set(names)) != len(names):
        raise PlanError(f"duplicate relations in shape: {names}")
    schemas = [catalog.relation(name) for name in names]
    available: set = set()
    for schema in schemas:
        available.update(schema.attribute_set)
    _check_known(select, available, "SELECT clause")
    _check_known(where.attributes, available, "WHERE clause")

    join_attributes: set = set()

    def collect_conditions(node: JoinShape) -> None:
        if isinstance(node, str):
            return
        collect_conditions(node[0])  # type: ignore[index]
        collect_conditions(node[1])  # type: ignore[index]
        join_attributes.update(node[2].attributes)  # type: ignore[union-attr]

    collect_conditions(shape)
    _check_known(frozenset(join_attributes), available, "JOIN conditions")
    single, cross = _split_where_for(where, schemas)
    needed_above_leaves = set(select) | join_attributes | cross.attributes
    pending = list(cross.comparisons)

    def build(node: JoinShape) -> PlanNode:
        nonlocal pending
        if isinstance(node, str):
            schema = catalog.relation(node)
            built: PlanNode = LeafNode(schema)
            leaf_predicate = single.get(schema.name)
            if leaf_predicate is not None and not leaf_predicate.is_true():
                built = UnaryNode(SELECT, leaf_predicate, built)
            keep = frozenset(needed_above_leaves & schema.attribute_set)
            if keep and keep != schema.attribute_set:
                built = UnaryNode(PROJECT, keep, built)
            return built
        left = build(node[0])  # type: ignore[index]
        right = build(node[1])  # type: ignore[index]
        joined: PlanNode = JoinNode(left, right, node[2])  # type: ignore[arg-type]
        ready = [c for c in pending if c.attributes <= joined.schema]
        if ready:
            joined = UnaryNode(SELECT, Predicate(ready), joined)
            pending = [c for c in pending if c not in ready]
        return joined

    current = build(shape)
    if pending:
        raise PlanError(
            f"WHERE atoms never became applicable: {[str(c) for c in pending]}"
        )
    missing = select - current.schema
    if missing:
        raise PlanError(
            f"SELECT attributes not produced by the shape: {sorted(missing)}"
        )
    if frozenset(select) != current.schema:
        current = UnaryNode(PROJECT, frozenset(select), current)
    return QueryTreePlan(current)


def _split_where_for(where: Predicate, schemas: Sequence) -> Tuple[dict, Predicate]:
    """Like :func:`_split_where` but taking the predicate directly."""
    single: dict = {}
    cross = []
    for comparison in where.comparisons:
        owner = None
        for schema in schemas:
            if comparison.attributes <= schema.attribute_set:
                owner = schema.name
                break
        if owner is None:
            cross.append(comparison)
        else:
            existing = single.get(owner, Predicate.true())
            single[owner] = existing.conjoin(Predicate([comparison]))
    return single, Predicate(cross)


def build_bushy_plan(catalog: Catalog, spec: QuerySpec) -> QueryTreePlan:
    """Build a *bushy* (balanced) plan from a bound spec.

    The paper's algorithm (and this library's planner, verifier and
    engine) work on arbitrary binary trees; :func:`build_plan` emits the
    conventional left-deep shape, while this builder recursively splits
    the FROM list in half and joins the two sides, giving independent
    subtrees that can execute on disjoint server groups.

    Join conditions attach to the lowest node whose two subtrees contain
    their endpoints.  Leaf selections and projections are pushed down as
    in :func:`build_plan`; the WHERE's cross-relation atoms apply above
    the lowest covering join, and the root projects to the SELECT list.

    Raises:
        PlanError: if some half-split would require a cartesian product
            (no condition bridges the halves) — such specs are left-deep
            only; and on the same structural errors as :func:`build_plan`.
    """
    # Activate the catalog's representation kernel: from here on every
    # schema's attribute set is the interned bitset form, so the profiles
    # the planner derives from this plan carry masks throughout.
    catalog.universe
    schemas = [catalog.relation(name) for name in spec.relations]
    available: set = set()
    for schema in schemas:
        available.update(schema.attribute_set)
    _check_known(spec.select, available, "SELECT clause")
    _check_known(spec.where.attributes, available, "WHERE clause")

    conditions = set()
    for path in spec.join_paths:
        conditions.update(path.conditions)
    join_attributes = {a for c in conditions for a in c.attributes}
    single, cross = _split_where(spec, schemas)
    needed_above_leaves = set(spec.select) | join_attributes | cross.attributes

    def leaf_node(schema) -> PlanNode:
        node: PlanNode = LeafNode(schema)
        leaf_predicate = single.get(schema.name)
        if leaf_predicate is not None and not leaf_predicate.is_true():
            node = UnaryNode(SELECT, leaf_predicate, node)
        keep = frozenset(needed_above_leaves & schema.attribute_set)
        if keep and keep != schema.attribute_set:
            node = UnaryNode(PROJECT, keep, node)
        return node

    def build(subset) -> PlanNode:
        if len(subset) == 1:
            return leaf_node(subset[0])
        middle = len(subset) // 2
        left = build(subset[:middle])
        right = build(subset[middle:])
        bridge = [
            c
            for c in conditions
            if (c.first in left.schema and c.second in right.schema)
            or (c.second in left.schema and c.first in right.schema)
        ]
        if not bridge:
            raise PlanError(
                f"bushy split {[s.name for s in subset[:middle]]} | "
                f"{[s.name for s in subset[middle:]]} has no bridging join "
                "condition; use build_plan (left-deep) or reorder the FROM "
                "clause"
            )
        return JoinNode(left, right, JoinPath(bridge))

    current = build(schemas)
    pending = [c for c in cross.comparisons if not (c.attributes <= current.schema)]
    applicable = [c for c in cross.comparisons if c.attributes <= current.schema]
    if pending:
        raise PlanError(
            f"WHERE atoms reference unavailable attributes: {[str(c) for c in pending]}"
        )
    if applicable:
        current = UnaryNode(SELECT, Predicate(applicable), current)
    missing = spec.select - current.schema
    if missing:
        raise PlanError(f"SELECT attributes not produced by FROM clause: {sorted(missing)}")
    if spec.select != current.schema:
        current = UnaryNode(PROJECT, spec.select, current)
    return QueryTreePlan(current)


def _check_known(attributes: AttributeSet, available: set, context: str) -> None:
    unknown = sorted(a for a in attributes if a not in available)
    if unknown:
        raise UnknownAttributeError(unknown[0], context)


def _split_where(spec: QuerySpec, schemas: Sequence) -> Tuple[dict, Predicate]:
    """Split the WHERE predicate into per-relation parts and the rest."""
    return _split_where_for(spec.where, schemas)


def _validate_join_step(
    path: JoinPath, left_schema: AttributeSet, right_schema: AttributeSet, index: int
) -> None:
    for condition in path:
        in_left = condition.first in left_schema or condition.second in left_schema
        in_right = condition.first in right_schema or condition.second in right_schema
        if not (in_left and in_right):
            raise PlanError(
                f"join step {index}: condition {condition} does not connect the "
                "accumulated left side with the next relation; reorder the FROM "
                "clause or fix the ON clause"
            )
