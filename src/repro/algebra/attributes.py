"""Attribute names and attribute sets.

The paper (Section 2) assumes all attributes across all relations carry
distinct names; name collisions are resolved with the usual dot notation
``relation.attribute``.  We follow the same convention: an attribute is a
plain string, globally unique within a :class:`~repro.algebra.schema.Catalog`,
optionally of the dotted form.

Attribute *sets* appear everywhere in the model — the ``Attributes``
component of an authorization, and the :math:`R^\\pi` / :math:`R^\\sigma`
components of a relation profile — so we expose a canonical immutable
representation (:class:`AttributeSet`, a ``frozenset`` of strings) together
with constructors and validation helpers.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable

from repro.exceptions import SchemaError

#: Canonical immutable attribute-set type used across the library.
AttributeSet = FrozenSet[str]

#: Empty attribute set singleton, shared for readability.
EMPTY_ATTRIBUTES: AttributeSet = frozenset()

_NAME_PART = r"[A-Za-z_][A-Za-z0-9_]*"
_NAME_RE = re.compile(rf"^{_NAME_PART}(\.{_NAME_PART}){{0,2}}$")

#: Names that already passed validation.  Attribute names recur millions
#: of times across profile composition and policy checks; re-matching the
#: regex dominates otherwise.  Bounded so adversarial name streams cannot
#: grow it without limit.
_VALIDATED: set = set()
_MAX_VALIDATED = 1 << 20


def validate_attribute_name(name: str) -> str:
    """Validate and return an attribute name.

    Accepts bare identifiers (``Holder``) and dotted qualifications with up
    to two prefixes (``Insurance.Holder``, ``S_I.Insurance.Holder``), per
    the paper's ``server.relation.attribute`` convention.

    Raises:
        SchemaError: if ``name`` is not a valid attribute name.
    """
    try:
        if name in _VALIDATED:
            return name
    except TypeError:
        pass
    if not isinstance(name, str):
        raise SchemaError(f"attribute name must be a string, got {type(name).__name__}")
    if not _NAME_RE.match(name):
        raise SchemaError(f"invalid attribute name: {name!r}")
    if len(_VALIDATED) < _MAX_VALIDATED:
        _VALIDATED.add(name)
    return name


def attribute_set(attributes: Iterable[str]) -> AttributeSet:
    """Build a validated :data:`AttributeSet` from an iterable of names.

    Already-built frozensets (including interned
    :class:`~repro.algebra.universe.AttrSet` instances, whose members
    were validated when interned) pass through unchanged, so repeated
    normalization along profile composition is free.

    >>> sorted(attribute_set(["Holder", "Plan"]))
    ['Holder', 'Plan']
    """
    if isinstance(attributes, frozenset):
        for name in attributes:
            validate_attribute_name(name)
        return attributes
    return frozenset(validate_attribute_name(a) for a in attributes)


def unqualified_name(attribute: str) -> str:
    """Return the final (unqualified) component of a dotted attribute name.

    >>> unqualified_name("Insurance.Holder")
    'Holder'
    >>> unqualified_name("Holder")
    'Holder'
    """
    return attribute.rsplit(".", 1)[-1]


def qualify(relation: str, attribute: str) -> str:
    """Qualify ``attribute`` with ``relation`` using dot notation.

    Already-qualified names are returned unchanged.
    """
    if "." in attribute:
        return attribute
    return f"{relation}.{attribute}"


def format_attribute_set(attributes: AttributeSet) -> str:
    """Render an attribute set in the paper's ``{A, B, C}`` notation,
    sorted for determinism.

    >>> format_attribute_set(frozenset({"Plan", "Holder"}))
    '{Holder, Plan}'
    """
    return "{" + ", ".join(sorted(attributes)) + "}"
