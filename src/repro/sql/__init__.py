"""SQL front-end for the paper's query class.

The paper considers simple select-from-where queries::

    SELECT A FROM R1 JOIN R2 ON ... JOIN R3 ON ... WHERE C

This package provides a hand-written lexer, a recursive-descent parser
producing a small AST, and a binder resolving names against a
:class:`~repro.algebra.schema.Catalog` into a bound
:class:`~repro.algebra.builder.QuerySpec`.
"""

from repro.sql.lexer import Token, tokenize
from repro.sql.ast import FromJoin, FromRelation, RawCondition, SelectQuery
from repro.sql.parser import parse
from repro.sql.binder import bind, bind_plan, parse_query, parse_query_plan

__all__ = [
    "Token",
    "tokenize",
    "RawCondition",
    "SelectQuery",
    "FromRelation",
    "FromJoin",
    "parse",
    "bind",
    "bind_plan",
    "parse_query",
    "parse_query_plan",
]
