"""Name resolution: unbound AST -> bound :class:`QuerySpec`.

The binder checks every name against the catalog:

* FROM relations must exist and not repeat;
* every ON equality must bridge the accumulated left side with the newly
  joined relation (left-deep validity);
* SELECT and WHERE attributes must belong to the FROM relations
  (``SELECT *`` expands to all of them, in schema order);
* WHERE atoms comparing two attributes must reference FROM attributes on
  both sides.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.algebra.builder import QuerySpec
from repro.algebra.joins import JoinPath
from repro.algebra.predicates import Comparison, Predicate
from repro.algebra.schema import Catalog
from repro.exceptions import BindingError
from repro.sql.ast import RawCondition, SelectQuery
from repro.sql.parser import parse


def bind(query: SelectQuery, catalog: Catalog) -> QuerySpec:
    """Resolve an unbound *left-deep* query against ``catalog``.

    Raises:
        BindingError: on any unresolved or ill-placed name, or when the
            FROM clause is parenthesized into a bushy tree —
            :class:`~repro.algebra.builder.QuerySpec` only models
            left-deep chains; use :func:`bind_plan` for arbitrary shapes.
    """
    if query.join_conditions is None:
        raise BindingError(
            "parenthesized (bushy) FROM clauses cannot bind to a QuerySpec; "
            "use bind_plan / parse_query_plan"
        )
    seen: Set[str] = set()
    for name in query.relations:
        if name not in catalog:
            raise BindingError(f"unknown relation in FROM clause: {name!r}")
        if name in seen:
            raise BindingError(f"relation {name!r} appears twice in FROM clause")
        seen.add(name)

    available: Dict[str, str] = {}
    for name in query.relations:
        for attribute in catalog.relation(name).attributes:
            available[attribute] = name

    # Join steps: each ON equality must bridge the accumulated schema
    # with the newly joined relation.
    accumulated: Set[str] = set(catalog.relation(query.relations[0]).attributes)
    join_paths: List[JoinPath] = []
    for step_index, step in enumerate(query.join_conditions):
        next_relation = query.relations[step_index + 1]
        next_attributes = set(catalog.relation(next_relation).attributes)
        pairs = []
        for left, right in step:
            for attribute in (left, right):
                if attribute not in available:
                    raise BindingError(
                        f"ON clause references {attribute!r}, which belongs to "
                        "no FROM relation"
                    )
            bridges = (left in accumulated and right in next_attributes) or (
                right in accumulated and left in next_attributes
            )
            if not bridges:
                raise BindingError(
                    f"ON condition {left} = {right} does not connect "
                    f"{next_relation!r} with the relations joined so far"
                )
            pairs.append((left, right))
        join_paths.append(JoinPath.of(*pairs))
        accumulated |= next_attributes

    # SELECT clause.
    if query.is_select_star:
        select = frozenset(available)
    else:
        for attribute in query.select or ():
            if attribute not in available:
                raise BindingError(
                    f"SELECT references {attribute!r}, which belongs to no "
                    "FROM relation"
                )
        select = frozenset(query.select or ())

    # WHERE clause.
    comparisons = []
    for condition in query.where:
        comparisons.append(_bind_condition(condition, available))
    where = Predicate(comparisons)

    return QuerySpec(query.relations, join_paths, select, where)


def _bind_condition(condition: RawCondition, available: Dict[str, str]) -> Comparison:
    if condition.left not in available:
        raise BindingError(
            f"WHERE references {condition.left!r}, which belongs to no FROM relation"
        )
    if condition.right_is_identifier:
        right = str(condition.right)
        if right not in available:
            raise BindingError(
                f"WHERE references {right!r}, which belongs to no FROM relation"
            )
        return Comparison.attr_vs_attr(condition.left, condition.op, right)
    return Comparison(condition.left, condition.op, condition.right)


def bind_plan(query: SelectQuery, catalog: Catalog):
    """Resolve a query of *any* FROM shape into a minimized
    :class:`~repro.algebra.tree.QueryTreePlan`.

    Parenthesization is preserved: ``(A JOIN B ON ...) JOIN (C JOIN D
    ON ...) ON ...`` becomes a bushy tree.  Validations mirror
    :func:`bind`: relations must exist and not repeat, every ON
    condition must bridge its join's two subtrees, and SELECT/WHERE
    names must resolve.

    Raises:
        BindingError: on any unresolved or ill-placed name.
    """
    from repro.algebra.builder import build_shaped_plan
    from repro.sql.ast import FromJoin, FromRelation

    names = query.relations
    seen: Set[str] = set()
    for name in names:
        if name not in catalog:
            raise BindingError(f"unknown relation in FROM clause: {name!r}")
        if name in seen:
            raise BindingError(f"relation {name!r} appears twice in FROM clause")
        seen.add(name)
    available: Dict[str, str] = {}
    for name in names:
        for attribute in catalog.relation(name).attributes:
            available[attribute] = name

    def to_shape(node):
        if isinstance(node, FromRelation):
            return node.name, set(catalog.relation(node.name).attributes)
        assert isinstance(node, FromJoin)
        left_shape, left_attrs = to_shape(node.left)
        right_shape, right_attrs = to_shape(node.right)
        pairs = []
        for left, right in node.conditions:
            for attribute in (left, right):
                if attribute not in available:
                    raise BindingError(
                        f"ON clause references {attribute!r}, which belongs to "
                        "no FROM relation"
                    )
            bridges = (left in left_attrs and right in right_attrs) or (
                right in left_attrs and left in right_attrs
            )
            if not bridges:
                raise BindingError(
                    f"ON condition {left} = {right} does not connect the two "
                    "sides of its parenthesized join"
                )
            pairs.append((left, right))
        return (left_shape, right_shape, JoinPath.of(*pairs)), left_attrs | right_attrs

    shape, _ = to_shape(query.from_tree)

    if query.is_select_star:
        select = frozenset(available)
    else:
        for attribute in query.select or ():
            if attribute not in available:
                raise BindingError(
                    f"SELECT references {attribute!r}, which belongs to no "
                    "FROM relation"
                )
        select = frozenset(query.select or ())
    comparisons = [_bind_condition(c, available) for c in query.where]
    return build_shaped_plan(catalog, shape, select, Predicate(comparisons))


def parse_query(text: str, catalog: Catalog) -> QuerySpec:
    """Parse and bind (left-deep) SQL text in one step."""
    return bind(parse(text), catalog)


def parse_query_plan(text: str, catalog: Catalog):
    """Parse and bind SQL of any FROM shape into a minimized plan."""
    return bind_plan(parse(text), catalog)
