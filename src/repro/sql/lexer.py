"""SQL tokenizer.

Produces a flat token stream from query text.  Token kinds:

* ``KEYWORD`` — ``SELECT``, ``FROM``, ``JOIN``, ``ON``, ``WHERE``,
  ``AND`` (case-insensitive in the input, upper-cased in the token);
* ``IDENT`` — identifiers, optionally dotted (``Insurance.Holder``);
* ``NUMBER`` — integer or decimal literals (value converted);
* ``STRING`` — single-quoted literals with ``''`` escaping;
* ``SYMBOL`` — ``, ( ) ; * = != < <= > >=``;
* ``EOF`` — end of input.
"""

from __future__ import annotations

from typing import List, Union

from repro.exceptions import SqlSyntaxError

#: Recognized keywords (upper-case canonical form).
KEYWORDS = frozenset({"SELECT", "FROM", "JOIN", "ON", "WHERE", "AND"})

#: Multi- and single-character symbols, longest first.
_SYMBOLS = ("!=", "<=", ">=", "<", ">", "=", ",", "(", ")", ";", "*")


class Token:
    """One lexical token.

    Attributes:
        kind: ``KEYWORD`` / ``IDENT`` / ``NUMBER`` / ``STRING`` /
            ``SYMBOL`` / ``EOF``.
        value: canonical token value (keywords upper-cased, numbers
            converted to ``int``/``float``).
        position: character offset in the input, for error messages.
    """

    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: Union[str, int, float], position: int) -> None:
        self.kind = kind
        self.value = value
        self.position = position

    def matches(self, kind: str, value: object = None) -> bool:
        """Whether the token has the given kind (and value, if given)."""
        if self.kind != kind:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, @{self.position})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch in "_."


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text.

    Raises:
        SqlSyntaxError: on unterminated strings or unexpected characters.
    """
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch == "'":
            end = index + 1
            pieces = []
            while True:
                if end >= length:
                    raise SqlSyntaxError("unterminated string literal", index)
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        pieces.append("'")
                        end += 2
                        continue
                    break
                pieces.append(text[end])
                end += 1
            tokens.append(Token("STRING", "".join(pieces), index))
            index = end + 1
            continue
        if ch.isdigit():
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            raw = text[index:end]
            value: Union[int, float] = float(raw) if seen_dot else int(raw)
            tokens.append(Token("NUMBER", value, index))
            index = end
            continue
        if _is_ident_start(ch):
            end = index
            while end < length and _is_ident_part(text[end]):
                end += 1
            word = text[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, index))
            else:
                tokens.append(Token("IDENT", word, index))
            index = end
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token("SYMBOL", symbol, index))
                index += len(symbol)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r}", index)
    tokens.append(Token("EOF", "", length))
    return tokens
