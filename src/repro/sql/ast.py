"""Parsed (unbound) query representation.

The parser produces a :class:`SelectQuery` mirroring the surface syntax;
names are plain strings, not yet checked against any catalog — that is
the binder's job.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union  # noqa: F401

Literal = Union[str, int, float]


class RawCondition:
    """One unbound WHERE atom ``left op right``.

    Attributes:
        left: attribute name.
        op: comparison operator symbol.
        right: literal value or attribute name.
        right_is_identifier: whether ``right`` is an attribute reference
            rather than a literal.
    """

    __slots__ = ("left", "op", "right", "right_is_identifier")

    def __init__(
        self, left: str, op: str, right: Literal, right_is_identifier: bool
    ) -> None:
        self.left = left
        self.op = op
        self.right = right
        self.right_is_identifier = right_is_identifier

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RawCondition):
            return NotImplemented
        return (
            self.left == other.left
            and self.op == other.op
            and self.right == other.right
            and self.right_is_identifier == other.right_is_identifier
        )

    def __repr__(self) -> str:
        rhs = self.right if self.right_is_identifier else repr(self.right)
        return f"{self.left} {self.op} {rhs}"


class FromRelation:
    """A FROM-tree leaf: one relation reference."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def relation_names(self) -> List[str]:
        """The single relation name, as a list (tree protocol)."""
        return [self.name]

    @property
    def is_left_deep(self) -> bool:
        """Leaves are trivially left-deep."""
        return True

    def __repr__(self) -> str:
        return self.name


class FromJoin:
    """A FROM-tree join: two subtrees and the ON conditions.

    Parenthesized FROM clauses produce right- or bushy-nested trees;
    the unparenthesized ``A JOIN B ON ... JOIN C ON ...`` chain is the
    usual left-deep left fold.
    """

    __slots__ = ("left", "right", "conditions")

    def __init__(
        self,
        left: "FromTree",
        right: "FromTree",
        conditions: Sequence[Tuple[str, str]],
    ) -> None:
        self.left = left
        self.right = right
        self.conditions = list(conditions)

    def relation_names(self) -> List[str]:
        """All referenced relations, left-to-right."""
        return self.left.relation_names() + self.right.relation_names()

    @property
    def is_left_deep(self) -> bool:
        """Whether every right operand is a single relation."""
        return isinstance(self.right, FromRelation) and self.left.is_left_deep

    def __repr__(self) -> str:
        conds = " AND ".join(f"{l} = {r}" for l, r in self.conditions)
        return f"({self.left!r} JOIN {self.right!r} ON {conds})"


FromTree = Union[FromRelation, FromJoin]


class SelectQuery:
    """An unbound select-from-where query.

    Attributes:
        select: projected attribute names, or ``None`` for ``SELECT *``.
        from_tree: the FROM clause as a binary tree (parenthesization
            preserved).
        relations: relation names in FROM order (flattened tree).
        join_conditions: for *left-deep* queries, one list of
            ``(left, right)`` pairs per JOIN step; ``None`` when the
            tree is bushy (use ``from_tree`` instead).
        where: WHERE atoms (conjunction).
    """

    __slots__ = ("select", "from_tree", "relations", "join_conditions", "where")

    def __init__(
        self,
        select: Optional[Sequence[str]],
        relations: Sequence[str] = (),
        join_conditions: Optional[Sequence[Sequence[Tuple[str, str]]]] = None,
        where: Sequence[RawCondition] = (),
        from_tree: Optional[FromTree] = None,
    ) -> None:
        self.select = list(select) if select is not None else None
        if from_tree is None:
            # Legacy flat construction: fold relations left-deep.
            relations = list(relations)
            join_conditions = [list(s) for s in (join_conditions or [])]
            tree: FromTree = FromRelation(relations[0])
            for name, step in zip(relations[1:], join_conditions):
                tree = FromJoin(tree, FromRelation(name), step)
            from_tree = tree
        self.from_tree = from_tree
        self.relations = from_tree.relation_names()
        if from_tree.is_left_deep:
            steps: List[List[Tuple[str, str]]] = []
            node = from_tree
            while isinstance(node, FromJoin):
                steps.append(list(node.conditions))
                node = node.left
            steps.reverse()
            self.join_conditions: Optional[List[List[Tuple[str, str]]]] = steps
        else:
            self.join_conditions = None
        self.where = list(where)

    @property
    def is_select_star(self) -> bool:
        """Whether the query projects every available attribute."""
        return self.select is None

    @property
    def is_left_deep(self) -> bool:
        """Whether the FROM tree is the conventional left-deep chain."""
        return self.from_tree.is_left_deep

    def __repr__(self) -> str:
        select = ", ".join(self.select) if self.select is not None else "*"
        return (
            f"SelectQuery(SELECT {select} FROM {self.from_tree!r} "
            f"WHERE {self.where})"
        )
