"""Recursive-descent parser for the paper's query class.

Grammar (keywords case-insensitive)::

    query      := SELECT select_list FROM relation join* where? ';'? EOF
    select_list:= '*' | ident (',' ident)*
    join       := JOIN relation ON equality (AND equality)*
    equality   := ident '=' ident
    where      := WHERE condition (AND condition)*
    condition  := ident op (literal | ident)
    op         := '=' | '!=' | '<' | '<=' | '>' | '>='
"""

from __future__ import annotations

from typing import List, Tuple

from repro.exceptions import SqlSyntaxError
from repro.sql.ast import RawCondition, SelectQuery
from repro.sql.lexer import Token, tokenize

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self._index += 1
        return token

    def accept(self, kind: str, value: object = None) -> bool:
        if self.current.matches(kind, value):
            self.advance()
            return True
        return False

    def expect(self, kind: str, value: object = None) -> Token:
        if not self.current.matches(kind, value):
            wanted = value if value is not None else kind
            raise SqlSyntaxError(
                f"expected {wanted}, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def expect_identifier(self, what: str) -> str:
        token = self.current
        if token.kind != "IDENT":
            raise SqlSyntaxError(
                f"expected {what}, found {token.value!r}", token.position
            )
        self.advance()
        return str(token.value)


def parse(text: str) -> SelectQuery:
    """Parse SQL text into an unbound :class:`SelectQuery`.

    Raises:
        SqlSyntaxError: on any lexical or grammatical error.
    """
    parser = _Parser(tokenize(text))
    parser.expect("KEYWORD", "SELECT")

    select: List[str] = []
    select_star = False
    if parser.accept("SYMBOL", "*"):
        select_star = True
    else:
        select.append(parser.expect_identifier("a projected attribute"))
        while parser.accept("SYMBOL", ","):
            select.append(parser.expect_identifier("a projected attribute"))

    parser.expect("KEYWORD", "FROM")
    from_tree = _parse_table_expression(parser)

    where: List[RawCondition] = []
    if parser.accept("KEYWORD", "WHERE"):
        where.append(_parse_condition(parser))
        while parser.accept("KEYWORD", "AND"):
            where.append(_parse_condition(parser))

    parser.accept("SYMBOL", ";")
    if parser.current.kind != "EOF":
        raise SqlSyntaxError(
            f"unexpected trailing input: {parser.current.value!r}",
            parser.current.position,
        )
    return SelectQuery(
        None if select_star else select, where=where, from_tree=from_tree
    )


def _parse_table_expression(parser: _Parser):
    """``table_primary (JOIN table_primary ON eq (AND eq)*)*`` —
    left-associative, so unparenthesized chains stay left-deep."""
    from repro.sql.ast import FromJoin

    tree = _parse_table_primary(parser)
    while parser.accept("KEYWORD", "JOIN"):
        right = _parse_table_primary(parser)
        parser.expect("KEYWORD", "ON")
        step: List[Tuple[str, str]] = [_parse_equality(parser)]
        while parser.accept("KEYWORD", "AND"):
            step.append(_parse_equality(parser))
        tree = FromJoin(tree, right, step)
    return tree


def _parse_table_primary(parser: _Parser):
    """``ident | '(' table_expression ')'`` — parentheses shape the
    join tree (bushy FROM clauses)."""
    from repro.sql.ast import FromRelation

    if parser.accept("SYMBOL", "("):
        inner = _parse_table_expression(parser)
        parser.expect("SYMBOL", ")")
        return inner
    return FromRelation(parser.expect_identifier("a relation name"))


def _parse_equality(parser: _Parser) -> Tuple[str, str]:
    left = parser.expect_identifier("a join attribute")
    parser.expect("SYMBOL", "=")
    right = parser.expect_identifier("a join attribute")
    return left, right


def _parse_condition(parser: _Parser) -> RawCondition:
    left = parser.expect_identifier("a WHERE attribute")
    token = parser.current
    if token.kind != "SYMBOL" or token.value not in _COMPARISON_OPS:
        raise SqlSyntaxError(
            f"expected a comparison operator, found {token.value!r}", token.position
        )
    parser.advance()
    op = str(token.value)
    value_token = parser.current
    if value_token.kind == "IDENT":
        parser.advance()
        return RawCondition(left, op, str(value_token.value), True)
    if value_token.kind in ("NUMBER", "STRING"):
        parser.advance()
        return RawCondition(left, op, value_token.value, False)
    raise SqlSyntaxError(
        f"expected a literal or attribute, found {value_token.value!r}",
        value_token.position,
    )
