"""Compact builders for tests and experiments.

Setting up a distributed system takes a screenful of constructor calls;
these helpers compress the common cases into one-liners, for this
repository's own tests and for downstream users writing theirs::

    from repro.testing import grant, quick_catalog

    catalog = quick_catalog("R(a, b) @ S1", "T(c, d) @ S2", edges=["a = c"])
    policy = Policy([
        grant("S2", "a b"),            # [{a, b}, -] -> S2
        grant("S1", "a c d", "a = c"), # [{a, c, d}, {(a, c)}] -> S1
    ])

The mini-grammar is deliberately tiny: relations are
``Name(attr, attr, ...) [@ Server]`` (primary key defaults to the first
attribute), grants take space- or comma-separated attributes and an
optional join path of ``A = B`` conditions separated by commas.
"""

from __future__ import annotations

import re
from typing import List, Sequence

from repro.algebra.joins import JoinPath
from repro.algebra.schema import Catalog, RelationSchema
from repro.core.authorization import Authorization
from repro.exceptions import ReproError

_RELATION_RE = re.compile(
    r"^\s*(?P<name>\w+)\s*\(\s*(?P<attrs>[^)]+?)\s*\)\s*(?:@\s*(?P<server>\w+)\s*)?$"
)


def _split_names(text: str) -> List[str]:
    return [part for part in re.split(r"[\s,]+", text.strip()) if part]


def quick_relation(spec: str) -> RelationSchema:
    """Parse ``"Name(a, b, c) @ Server"`` into a schema.

    The server is optional; the primary key is the first attribute.

    Raises:
        ReproError: on a malformed spec.
    """
    match = _RELATION_RE.match(spec)
    if match is None:
        raise ReproError(
            f"bad relation spec {spec!r}; expected 'Name(a, b) @ Server'"
        )
    attributes = _split_names(match.group("attrs"))
    return RelationSchema(
        match.group("name"), attributes, server=match.group("server")
    )


def quick_catalog(*relation_specs: str, edges: Sequence[str] = ()) -> Catalog:
    """Build a catalog from relation specs plus ``"A = B"`` join edges.

    >>> catalog = quick_catalog("R(a, b) @ S1", "T(c, d) @ S2", edges=["a = c"])
    >>> catalog.server_of("T")
    'S2'
    >>> len(catalog.join_edges())
    1
    """
    catalog = Catalog()
    for spec in relation_specs:
        catalog.add_relation(quick_relation(spec))
    for edge in edges:
        left, right = _parse_condition(edge)
        catalog.add_join_edge(left, right)
    return catalog


def _parse_condition(text: str) -> tuple:
    if "=" not in text:
        raise ReproError(f"bad join condition {text!r}; expected 'A = B'")
    left, right = text.split("=", 1)
    left, right = left.strip(), right.strip()
    if not left or not right:
        raise ReproError(f"bad join condition {text!r}; expected 'A = B'")
    return left, right


def quick_path(conditions: str) -> JoinPath:
    """Parse ``"A = B, C = D"`` into a :class:`JoinPath` (empty input
    gives the empty path).

    >>> quick_path("Holder = Citizen") == JoinPath.of(("Citizen", "Holder"))
    True
    >>> quick_path("").is_empty()
    True
    """
    conditions = conditions.strip()
    if not conditions:
        return JoinPath.empty()
    pairs = [_parse_condition(part) for part in conditions.split(",")]
    return JoinPath.of(*pairs)


def grant(server: str, attributes: str, path: str = "") -> Authorization:
    """Build an authorization from compact strings.

    >>> grant("S2", "a b")
    [{a, b}, -] -> S2
    >>> grant("S1", "a, c, d", "a = c")
    [{a, c, d}, {(a, c)}] -> S1
    """
    return Authorization(_split_names(attributes), quick_path(path), server)


def deny(server: str, attributes: str, path: str = ""):
    """The :func:`grant` counterpart for open policies.

    >>> deny("S1", "Disease")
    [{Disease}, -] -x-> S1
    """
    from repro.core.openpolicy import Denial

    return Denial(_split_names(attributes), quick_path(path), server)
