"""Command-line interface.

Five subcommands over a workload (the built-in medical scenario or
JSON catalog/policy files, see :mod:`repro.io`):

* ``describe`` — the catalog and the policy (Figure 3 layout);
* ``plan``     — minimized tree, Figure 7 style trace, executor
  assignment and per-server exposure for a SQL query;
* ``execute``  — run the query tuple-level and report every audited
  transfer (medical workload generates instances; JSON workloads take
  ``--instances``);
* ``analyze``  — EXPLAIN ANALYZE: run the query under the profiler and
  render estimated vs actual cardinalities and bytes side by side with
  misestimation flags; ``--stats FILE`` keeps a statistics store warm
  across invocations (harvested profiles written back), closing the
  plan-quality feedback loop (see :mod:`repro.profiling` and
  ``docs/profiling.md``);
* ``suggest``  — for an infeasible query, the smallest grants that
  would unlock it (what-if analysis);
* ``check``    — a single CanView question: may SERVER see these
  attributes under this join path?
* ``serve``    — drive a JSON workload through the multi-tenant async
  query service (admission control, load shedding, single-flight
  planning; see :mod:`repro.service` and ``docs/serving.md``), with an
  optional live Prometheus scrape endpoint.
* ``shard``    — certify a horizontal partition scheme with the
  parallel-correctness checker and (unless ``--certify-only``) run the
  query partition-parallel, with optional ``--diff`` verification
  against single-copy execution (see :mod:`repro.sharding` and
  ``docs/sharding.md``);
* ``chaos``    — run a seeded chaos schedule (worker deaths, leader
  crashes, admission stalls, policy storms, service kill/restart
  cycles) through the service with crash-consistent recovery and the
  online invariant monitor (see :mod:`repro.chaos` and
  ``docs/chaos.md``); ``--replay ARTIFACT`` re-runs a recorded
  violation artifact and verifies it reproduces bit-exactly.

Examples::

    python -m repro.cli describe
    python -m repro.cli plan --sql "SELECT Plan, HealthAid FROM Insurance \
        JOIN Nat_registry ON Holder = Citizen"
    python -m repro.cli execute --sql "..." --citizens 200
    python -m repro.cli suggest --sql "SELECT Physician, Treatment FROM \
        Disease_list JOIN Hospital ON Illness = Disease"
    python -m repro.cli check --server S_I --attributes Holder Plan
    python -m repro.cli serve --workload requests.json --tenants tenants.json \
        --port 0 --metrics-out metrics.prom
    python -m repro.cli chaos --seed 16 --requests 1000 --kill-every 25
    python -m repro.cli chaos --replay chaos_violations_seed16.json

``serve`` exit codes: 0 — every request resolved and the service
drained cleanly (including after a single SIGINT, which stops new
submissions, drains admitted work and still flushes ``--metrics-out`` /
``--trace-out``); 1 — drained cleanly but some requests ``failed``
with execution errors; 2 — configuration error (bad workload, tenants,
catalog or instances file); 3 — aborted before all outcomes resolved
(second SIGINT forces an immediate stop; queued requests resolve as
shed, never partially executed).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.algebra.builder import build_plan
from repro.algebra.joins import JoinPath
from repro.analysis.exposure import exposure_of_assignment
from repro.analysis.reporting import render_policy_table, render_trace_table
from repro.analysis.whatif import suggest_repair
from repro.core.access import can_view, explain_denial
from repro.core.profile import RelationProfile
from repro.distributed.faults import FaultInjector
from repro.distributed.health import HealthTracker
from repro.distributed.system import DistributedSystem
from repro.exceptions import (
    CheckpointError,
    DeadlineExceededError,
    DegradedExecutionError,
    InfeasiblePlanError,
    ReproError,
)
from repro.io import catalog_from_dict, load_json, policy_from_dict
from repro.io.serialize import checkpoint_from_dict, checkpoint_to_dict, save_json
from repro.sql import parse_query
from repro.workloads.medical import generate_instances, medical_catalog, medical_policy


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Controlled information sharing in collaborative "
        "distributed query processing (ICDCS 2008 reproduction).",
    )
    parser.add_argument(
        "--catalog", help="JSON catalog file (default: built-in medical workload)"
    )
    parser.add_argument(
        "--policy", help="JSON policy file (default: built-in Figure 3 policy)"
    )
    parser.add_argument(
        "--no-closure",
        action="store_true",
        help="do not close the policy under the chase before planning",
    )
    parser.add_argument(
        "--third-party",
        action="append",
        default=[],
        metavar="SERVER",
        help="server usable as a join coordinator (repeatable)",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--plan-cache",
        dest="plan_cache",
        action="store_true",
        default=True,
        help="cache safe assignments keyed on query fingerprint and "
        "policy epoch (default: on; repeated queries plan once)",
    )
    cache_group.add_argument(
        "--no-plan-cache",
        dest="plan_cache",
        action="store_false",
        help="plan every query from scratch",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("describe", help="print the catalog and the policy")

    plan_cmd = commands.add_parser("plan", help="plan a SQL query safely")
    plan_cmd.add_argument("--sql", required=True)
    plan_cmd.add_argument(
        "--search-orders",
        action="store_true",
        help="try alternative join orders when the given one is infeasible",
    )

    execute_cmd = commands.add_parser("execute", help="plan and run a SQL query")
    execute_cmd.add_argument("--sql", required=True)
    execute_cmd.add_argument("--recipient", help="deliver the result to this party")
    execute_cmd.add_argument(
        "--instances", help="JSON instances file (relation -> rows)"
    )
    execute_cmd.add_argument("--seed", type=int, default=7)
    execute_cmd.add_argument("--citizens", type=int, default=100)
    execute_cmd.add_argument(
        "--drop-rate",
        type=float,
        default=None,
        metavar="P",
        help="inject per-attempt transfer drops with probability P (enables "
        "retry/backoff and authorization-safe failover)",
    )
    execute_cmd.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault injector (runs are fully deterministic)",
    )
    execute_cmd.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="SERVER:START[:END]",
        help="take SERVER down during [START, END) of logical time "
        "(END omitted = forever; repeatable; enables fault injection)",
    )
    execute_cmd.add_argument(
        "--max-failovers",
        type=int,
        default=3,
        help="re-planning rounds before the query degrades",
    )
    execute_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="BUDGET",
        help="simulated-time budget for the whole execution; exhaustion "
        "exits 4 and (with --resume FILE) writes a checkpoint journal "
        "(enables fault injection)",
    )
    execute_cmd.add_argument(
        "--resume",
        default=None,
        metavar="FILE",
        help="checkpoint journal file: loaded (and re-audited) when it "
        "exists, written when the run is killed by deadline or "
        "degradation (enables fault injection)",
    )
    execute_cmd.add_argument(
        "--breakers",
        action="store_true",
        help="track per-server/per-link health with circuit breakers and "
        "plan around quarantined servers (enables fault injection)",
    )
    execute_cmd.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the run's trace (planning + execution spans) to FILE; "
        "written even when the run fails, so failed runs stay debuggable",
    )
    execute_cmd.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format: jsonl (one record per line) or chrome "
        "(trace-event JSON loadable in Perfetto / chrome://tracing)",
    )
    execute_cmd.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's metrics in Prometheus text exposition to FILE",
    )

    analyze_cmd = commands.add_parser(
        "analyze",
        help="EXPLAIN ANALYZE: run a query under the profiler and render "
        "estimated vs actual",
    )
    analyze_cmd.add_argument("--sql", required=True)
    analyze_cmd.add_argument("--recipient", help="deliver the result to this party")
    analyze_cmd.add_argument(
        "--instances", help="JSON instances file (relation -> rows)"
    )
    analyze_cmd.add_argument("--seed", type=int, default=7)
    analyze_cmd.add_argument("--citizens", type=int, default=100)
    analyze_cmd.add_argument(
        "--runs",
        type=int,
        default=1,
        help="profiled executions; each harvests into the stats store, and "
        "the last one is rendered (default 1)",
    )
    analyze_cmd.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault-free injector supplying the deterministic "
        "logical clock (profiles are byte-stable per seed)",
    )
    analyze_cmd.add_argument(
        "--misestimate-factor",
        type=float,
        default=2.0,
        metavar="F",
        help="flag a transfer when actual bytes exceed F x estimate "
        "(default 2.0); any flag makes the command exit 1",
    )
    analyze_cmd.add_argument(
        "--stats",
        default=None,
        metavar="FILE",
        help="statistics store JSON: loaded when it exists, written back "
        "with this run's harvest (keeps estimates warm across invocations)",
    )
    analyze_cmd.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="write the rendered run's profile artifact JSON to FILE",
    )

    suggest_cmd = commands.add_parser(
        "suggest", help="suggest minimal grants for an infeasible query"
    )
    suggest_cmd.add_argument("--sql", required=True)

    explain_cmd = commands.add_parser(
        "explain", help="explain every CanView decision of a query's planning"
    )
    explain_cmd.add_argument("--sql", required=True)

    serve_cmd = commands.add_parser(
        "serve", help="run a workload through the multi-tenant query service"
    )
    serve_cmd.add_argument(
        "--workload",
        required=True,
        metavar="FILE",
        help="JSON list of requests: {sql, tenant?, recipient?, repeat?}",
    )
    serve_cmd.add_argument(
        "--tenants",
        default=None,
        metavar="FILE",
        help="JSON list of tenant configs: {name, priority?, rate?, "
        "burst?, deadline?}",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=4, help="worker coroutines (default 4)"
    )
    serve_cmd.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="queued-request bound; admission sheds beyond it (default 256)",
    )
    serve_cmd.add_argument(
        "--capacity-bytes",
        type=float,
        default=None,
        metavar="BYTES",
        help="total estimated in-flight bytes admitted at once "
        "(0 deterministically sheds everything; default: unlimited)",
    )
    serve_cmd.add_argument(
        "--window",
        type=int,
        default=64,
        help="max concurrent client submissions (0 = all at once, which "
        "a bounded queue will shed; default 64)",
    )
    serve_cmd.add_argument(
        "--pace",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep between submissions (keeps the service busy long "
        "enough to scrape or interrupt; default 0)",
    )
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose /metrics and /healthz on 127.0.0.1:PORT "
        "(0 picks an ephemeral port, printed at startup; default: off)",
    )
    serve_cmd.add_argument(
        "--search-orders",
        action="store_true",
        help="plan with join-order search while the service is healthy",
    )
    serve_cmd.add_argument(
        "--instances", help="JSON instances file (relation -> rows)"
    )
    serve_cmd.add_argument("--seed", type=int, default=7)
    serve_cmd.add_argument("--citizens", type=int, default=100)
    serve_cmd.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the service run's trace to FILE (flushed even on SIGINT)",
    )
    serve_cmd.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format (jsonl or chrome)",
    )
    serve_cmd.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write final metrics in Prometheus text exposition to FILE "
        "(flushed even on SIGINT)",
    )

    chaos_cmd = commands.add_parser(
        "chaos",
        help="run a seeded chaos schedule against the query service "
        "(or replay a recorded violation artifact)",
    )
    chaos_cmd.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="replay the chaos run a violation artifact recorded and "
        "verify the digest reproduces bit-exactly (all other chaos "
        "options are ignored — the artifact carries the full config)",
    )
    chaos_cmd.add_argument(
        "--seed", type=int, default=16, help="chaos schedule seed"
    )
    chaos_cmd.add_argument(
        "--requests", type=int, default=1000, help="requests to drive"
    )
    chaos_cmd.add_argument(
        "--workers", type=int, default=8, help="service worker coroutines"
    )
    chaos_cmd.add_argument(
        "--kill-every",
        type=int,
        default=25,
        metavar="N",
        help="kill/restart the service every N submissions "
        "(0 = never; default 25)",
    )
    chaos_cmd.add_argument(
        "--no-recovery",
        dest="recovery",
        action="store_false",
        default=True,
        help="drop the write-ahead journal: kills shed in-flight work "
        "instead of recovering it",
    )
    chaos_cmd.add_argument(
        "--cancel-rate", type=float, default=0.05, metavar="P",
        help="worker-death probability per execution (default 0.05)",
    )
    chaos_cmd.add_argument(
        "--leader-crash-rate", type=float, default=0.03, metavar="P",
        help="single-flight leader crash probability (default 0.03)",
    )
    chaos_cmd.add_argument(
        "--stall-rate", type=float, default=0.10, metavar="P",
        help="admission stall probability (default 0.10)",
    )
    chaos_cmd.add_argument(
        "--storm-rate", type=float, default=0.05, metavar="P",
        help="policy grant/revoke storm probability (default 0.05)",
    )
    chaos_cmd.add_argument(
        "--clock-jump-rate", type=float, default=0.05, metavar="P",
        help="logical clock jump probability (default 0.05)",
    )
    chaos_cmd.add_argument(
        "--artifact-out",
        default=None,
        metavar="FILE",
        help="always write the replay artifact to FILE (default: only "
        "on violation, as chaos_violations_seed<seed>.json)",
    )

    shard_cmd = commands.add_parser(
        "shard",
        help="certify a partition scheme and run a query partition-parallel",
    )
    shard_cmd.add_argument("--sql", required=True)
    shard_cmd.add_argument(
        "--scheme",
        action="append",
        required=True,
        metavar="SPEC",
        help="partition spec, repeatable: REL:hash:ATTR[,ATTR...]:SHARDS "
        "or REL:range:ATTR:B1[,B2...] (boundaries split strictly "
        "increasing ranges)",
    )
    shard_cmd.add_argument(
        "--group",
        nargs="+",
        required=True,
        metavar="SERVER",
        help="server group hosting the shards (round-robin placement)",
    )
    shard_cmd.add_argument("--recipient", help="deliver the result to this party")
    shard_cmd.add_argument(
        "--instances", help="JSON instances file (relation -> rows)"
    )
    shard_cmd.add_argument("--seed", type=int, default=7)
    shard_cmd.add_argument("--citizens", type=int, default=100)
    shard_cmd.add_argument(
        "--certify-only",
        action="store_true",
        help="run the parallel-correctness checker and stop",
    )
    shard_cmd.add_argument(
        "--no-multiround",
        action="store_true",
        help="disable the multi-round fallback (hypercube or single-copy)",
    )
    shard_cmd.add_argument(
        "--diff",
        action="store_true",
        help="also run single-copy and verify the results are identical",
    )

    check_cmd = commands.add_parser("check", help="one CanView question")
    check_cmd.add_argument("--server", required=True)
    check_cmd.add_argument("--attributes", nargs="+", required=True)
    check_cmd.add_argument(
        "--join",
        action="append",
        default=[],
        metavar="A=B",
        help="join condition of the view's path (repeatable)",
    )
    return parser


def _load_system(args: argparse.Namespace) -> DistributedSystem:
    if args.catalog:
        catalog = catalog_from_dict(load_json(args.catalog))
    else:
        catalog = medical_catalog()
    if args.policy:
        policy = policy_from_dict(load_json(args.policy))
    else:
        policy = medical_policy()
    return DistributedSystem(
        catalog,
        policy,
        apply_closure=not args.no_closure,
        third_parties=args.third_party,
        plan_cache=args.plan_cache,
    )


def _cmd_describe(system: DistributedSystem, args, out) -> int:
    print(system.catalog.describe(), file=out)
    print(file=out)
    print(render_policy_table(system.explicit_policy), file=out)
    print(
        f"\n({len(system.explicit_policy)} explicit rules, "
        f"{len(system.policy)} after closure)",
        file=out,
    )
    return 0


def _cmd_plan(system: DistributedSystem, args, out) -> int:
    try:
        tree, assignment, trace = system.plan(
            args.sql, search_join_orders=args.search_orders
        )
    except InfeasiblePlanError as error:
        print(f"infeasible: {error}", file=out)
        return 2
    print(tree.render(), file=out)
    print(file=out)
    print(render_trace_table(trace), file=out)
    print("\nassignment:", file=out)
    print(assignment.describe(), file=out)
    print("\nexposure:", file=out)
    print(exposure_of_assignment(assignment, system.catalog).describe(), file=out)
    return 0


def _cmd_execute(system: DistributedSystem, args, out) -> int:
    if args.instances:
        system.load_instances(load_json(args.instances))
    elif not args.catalog:
        system.load_instances(
            generate_instances(seed=args.seed, citizens=args.citizens)
        )
    else:
        print("error: --instances is required for JSON workloads", file=out)
        return 2
    faults = _build_injector(args, out)
    if faults is _BAD_FAULT_SPEC:
        return 2
    health = HealthTracker() if args.breakers else None
    resume_from = None
    if args.resume:
        import os

        if os.path.exists(args.resume):
            try:
                resume_from = checkpoint_from_dict(load_json(args.resume))
            except ReproError as error:
                print(f"error: bad checkpoint file {args.resume!r}: {error}", file=out)
                return 2
            print(
                f"resuming from {args.resume} "
                f"({len(resume_from)} checkpointed subtrees)",
                file=out,
            )
    trace = None
    if args.trace_out or args.metrics_out:
        from repro.obs import TraceContext

        trace = TraceContext()
    try:
        result = system.execute(
            args.sql,
            recipient=args.recipient,
            faults=faults,
            max_failovers=args.max_failovers,
            deadline=args.deadline,
            health=health,
            checkpoint=bool(args.resume),
            resume_from=resume_from,
            trace=trace,
        )
    except InfeasiblePlanError as error:
        print(f"infeasible: {error}", file=out)
        return 2
    except CheckpointError as error:
        print(f"checkpoint refused: {error}", file=out)
        return 2
    except DeadlineExceededError as error:
        print(f"deadline exceeded: {error}", file=out)
        _save_journal(error.checkpoint, args.resume, out)
        return 4
    except DegradedExecutionError as error:
        print(f"degraded: {error}", file=out)
        _save_journal(getattr(error, "checkpoint", None), args.resume, out)
        return 3
    finally:
        # A failed run's partial trace is exactly what the operator
        # needs to debug it — export on every exit path.
        _write_observability(trace, args, out)
    print(f"result: {result.summary()}", file=out)
    if result.plan_cache is not None:
        cache = result.plan_cache
        print(
            f"plan cache: {cache['hits']} hits / {cache['misses']} misses / "
            f"{cache['revalidations']} revalidations",
            file=out,
        )
    print(result.transfers.describe(), file=out)
    if result.audit is not None:
        print(result.audit.summary(), file=out)
    if faults is not None:
        print(f"faults: {faults!r}", file=out)
    if health is not None:
        print(f"health: {health.describe()}", file=out)
    return 0


def _write_observability(trace, args, out) -> None:
    """Export the trace/metrics files requested by --trace-out and
    --metrics-out (no-op when tracing was not requested)."""
    if trace is None:
        return
    from repro.obs import write_metrics, write_trace

    trace.close_all()
    if args.trace_out:
        write_trace(trace, args.trace_out, fmt=args.trace_format)
        print(
            f"trace: {len(trace.spans)} spans, {len(trace.events)} events "
            f"written to {args.trace_out} ({args.trace_format})",
            file=out,
        )
    if args.metrics_out:
        write_metrics(trace.metrics, args.metrics_out)
        print(f"metrics: written to {args.metrics_out}", file=out)


def _save_journal(journal, path, out) -> None:
    """Persist a checkpoint journal for a later --resume, when asked to."""
    if journal is None or not path:
        return
    save_json(checkpoint_to_dict(journal), path)
    print(
        f"checkpoint: {len(journal)} completed subtrees written to {path}",
        file=out,
    )


#: Sentinel distinguishing "no faults requested" from "bad --crash spec".
_BAD_FAULT_SPEC = object()


def _build_injector(args, out):
    """An injector from --drop-rate/--crash flags, or None when absent.

    --deadline/--resume/--breakers need a logical clock even without
    injected faults, so any of them forces a (fault-free) injector.
    """
    if args.drop_rate is None and not args.crash:
        if args.deadline is not None or args.resume or args.breakers:
            return FaultInjector(seed=args.fault_seed)
        return None
    faults = FaultInjector(
        seed=args.fault_seed, drop_probability=args.drop_rate or 0.0
    )
    for spec in args.crash:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            print(f"error: bad crash spec {spec!r}; use SERVER:START[:END]", file=out)
            return _BAD_FAULT_SPEC
        try:
            start = float(parts[1])
            end = float(parts[2]) if len(parts) == 3 else None
        except ValueError:
            print(f"error: bad crash spec {spec!r}; use SERVER:START[:END]", file=out)
            return _BAD_FAULT_SPEC
        faults.crash(parts[0], start=start, end=end)
    return faults


def _cmd_analyze(system: DistributedSystem, args, out) -> int:
    import os

    from repro.analysis.reporting import render_profile_report
    from repro.io.serialize import (
        query_profile_to_dict,
        stats_store_from_dict,
        stats_store_to_dict,
    )
    from repro.profiling import QueryProfiler, StatsStore

    if args.instances:
        system.load_instances(load_json(args.instances))
    elif not args.catalog:
        system.load_instances(
            generate_instances(seed=args.seed, citizens=args.citizens)
        )
    else:
        print("error: --instances is required for JSON workloads", file=out)
        return 2
    store = StatsStore()
    if args.stats and os.path.exists(args.stats):
        try:
            store = stats_store_from_dict(load_json(args.stats))
        except (ReproError, ValueError, OSError) as error:
            print(f"error: bad stats file {args.stats!r}: {error}", file=out)
            return 2
        print(
            f"stats: loaded {len(store)} observations "
            f"({store.harvests} harvests) from {args.stats}",
            file=out,
        )
    profile = None
    result = None
    applied = 0
    for _ in range(max(1, args.runs)):
        profiler = QueryProfiler(
            selectivities=store,
            misestimate_factor=args.misestimate_factor,
        )
        faults = FaultInjector(seed=args.fault_seed)
        try:
            result = system.execute(
                args.sql,
                recipient=args.recipient,
                faults=faults,
                profiler=profiler,
            )
        except InfeasiblePlanError as error:
            print(f"infeasible: {error}", file=out)
            return 2
        profile = result.profile
        applied = store.harvest(profile)
    print(render_profile_report(profile), file=out)
    print(file=out)
    print(f"result: {result.summary()}", file=out)
    print(
        f"harvested: {applied} observations; store holds {len(store)} "
        f"after {store.harvests} harvests",
        file=out,
    )
    if args.stats:
        save_json(stats_store_to_dict(store), args.stats)
        print(f"stats: written to {args.stats}", file=out)
    if args.profile_out:
        save_json(query_profile_to_dict(profile), args.profile_out)
        print(f"profile: written to {args.profile_out}", file=out)
    return 1 if profile.misestimates else 0


def _cmd_suggest(system: DistributedSystem, args, out) -> int:
    spec = parse_query(args.sql, system.catalog)
    tree = build_plan(system.catalog, spec)
    repair = suggest_repair(system.policy, tree)
    print(repair.describe(), file=out)
    if repair.is_already_feasible:
        return 0
    augmented = repair.augmented_policy(system.policy)
    from repro.core.planner import SafePlanner

    SafePlanner(augmented).plan(tree)
    print("\n(the plan is feasible under the augmented policy)", file=out)
    return 0


def _cmd_explain(system: DistributedSystem, args, out) -> int:
    from repro.analysis.explain import explain_planning, render_explanation

    spec = parse_query(args.sql, system.catalog)
    tree = build_plan(system.catalog, spec)
    explanations, feasible = explain_planning(system.policy, tree)
    print(tree.render(), file=out)
    print(file=out)
    print(render_explanation(system.policy, tree, explanations), file=out)
    print(f"\nfeasible: {feasible}", file=out)
    return 0 if feasible else 2


def _cmd_chaos(system: DistributedSystem, args, out) -> int:
    from repro.chaos import (
        ChaosError,
        ChaosRunConfig,
        InvariantMonitor,
        replay_artifact,
        run_chaos,
    )
    from repro.chaos.replay import write_run_artifact

    if args.replay:
        try:
            report, matched = replay_artifact(args.replay)
        except (OSError, ValueError, ReproError) as error:
            print(f"error: cannot replay {args.replay!r}: {error}", file=out)
            return 2
        print(
            f"replayed seed {report.config.seed} "
            f"({report.config.requests} requests): digest {report.digest()}",
            file=out,
        )
        if matched:
            print("replay matched the recorded digest", file=out)
            return 0
        print("replay DIVERGED from the recorded digest", file=out)
        return 1

    try:
        config = ChaosRunConfig(
            seed=args.seed,
            requests=args.requests,
            workers=args.workers,
            recovery=args.recovery,
            kill_every=args.kill_every or None,
            cancel_probability=args.cancel_rate,
            leader_crash_probability=args.leader_crash_rate,
            stall_probability=args.stall_rate,
            storm_probability=args.storm_rate,
            clock_jump_probability=args.clock_jump_rate,
            clock_jump=5.0 if args.clock_jump_rate else 0.0,
            spins=1,
        )
    except ChaosError as error:
        print(f"error: {error}", file=out)
        return 2
    monitor = InvariantMonitor()
    report = run_chaos(config, monitor=monitor)
    counts = report.status_counts()
    rendered = ", ".join(
        f"{status}={count}" for status, count in sorted(counts.items())
    )
    print(
        f"chaos seed {args.seed}: {report.ok_count}/{config.requests} ok "
        f"({rendered})",
        file=out,
    )
    print(
        f"kills {report.kills}, recovered {report.recovered}, "
        f"events {len(report.events)}, digest {report.digest()}",
        file=out,
    )
    clean = not report.invariant_violations and not report.audit_violations
    artifact = args.artifact_out
    if artifact is None and not clean:
        artifact = f"chaos_violations_seed{args.seed}.json"
    if artifact:
        write_run_artifact(report, artifact, monitor)
        print(f"replay artifact written to {artifact}", file=out)
    if clean:
        print(
            f"invariants clean ({report.monitor.get('checks', 0)} checks, "
            "0 violations)",
            file=out,
        )
        return 0
    print(
        f"VIOLATIONS: {report.invariant_violations} invariant, "
        f"{report.audit_violations} audit — replay with: "
        f"python -m repro.cli chaos --replay {artifact}",
        file=out,
    )
    return 1


def _cmd_check(system: DistributedSystem, args, out) -> int:
    pairs = []
    for condition in args.join:
        if "=" not in condition:
            print(f"error: bad join condition {condition!r}; use A=B", file=out)
            return 2
        left, right = condition.split("=", 1)
        pairs.append((left.strip(), right.strip()))
    profile = RelationProfile(args.attributes, JoinPath.of(*pairs))
    allowed = can_view(system.policy, profile, args.server)
    print(f"{args.server} may view {profile}: {allowed}", file=out)
    if not allowed:
        print(explain_denial(system.policy, profile, args.server), file=out)
    return 0 if allowed else 1


def _load_json_list(path: str):
    """Read a JSON array (workload / tenants files are lists, which
    :func:`repro.io.load_json` deliberately rejects)."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _load_serve_workload(path: str, out) -> Optional[List[dict]]:
    """Expand a JSON workload file into one request dict per submission
    (``repeat`` unrolled); ``None`` means the file was bad (reported)."""
    try:
        data = _load_json_list(path)
    except (OSError, ValueError) as error:
        print(f"error: cannot read workload {path!r}: {error}", file=out)
        return None
    if not isinstance(data, list):
        print(f"error: workload {path!r} must be a JSON list", file=out)
        return None
    requests: List[dict] = []
    for index, record in enumerate(data):
        if not isinstance(record, dict):
            print(f"error: workload entry {index} is not an object", file=out)
            return None
        sql = record.get("sql", record.get("query"))
        if not sql:
            print(f"error: workload entry {index} needs 'sql'", file=out)
            return None
        repeat = int(record.get("repeat", 1))
        if repeat < 1:
            print(f"error: workload entry {index}: repeat must be >= 1", file=out)
            return None
        request = {
            "query": sql,
            "tenant": record.get("tenant", "default"),
            "recipient": record.get("recipient"),
        }
        requests.extend([dict(request)] * repeat)
    return requests


def _cmd_serve(system: DistributedSystem, args, out) -> int:
    import asyncio

    from repro.service import TenantConfig, TenantConfigError

    if args.instances:
        system.load_instances(load_json(args.instances))
    elif not args.catalog:
        system.load_instances(
            generate_instances(seed=args.seed, citizens=args.citizens)
        )
    else:
        print("error: --instances is required for JSON workloads", file=out)
        return 2
    requests = _load_serve_workload(args.workload, out)
    if requests is None:
        return 2
    tenants = []
    if args.tenants:
        try:
            data = _load_json_list(args.tenants)
        except (OSError, ValueError) as error:
            print(f"error: cannot read tenants {args.tenants!r}: {error}", file=out)
            return 2
        if not isinstance(data, list):
            print(f"error: tenants {args.tenants!r} must be a JSON list", file=out)
            return 2
        try:
            tenants = [TenantConfig.from_dict(record) for record in data]
        except (TenantConfigError, TypeError, ValueError) as error:
            print(f"error: bad tenant config: {error}", file=out)
            return 2
    trace = None
    if args.trace_out:
        from repro.obs import TraceContext

        trace = TraceContext()
    return asyncio.run(_serve_async(system, requests, tenants, args, trace, out))


async def _serve_async(system, requests, tenants, args, trace, out) -> int:
    import asyncio
    import signal

    from repro.analysis.reporting import latency_percentiles
    from repro.obs import write_metrics
    from repro.service import FAILED, MetricsServer, QueryService

    service = QueryService(
        system,
        tenants=tenants,
        workers=args.workers,
        max_queue=args.max_queue,
        capacity_bytes=args.capacity_bytes,
        search_join_orders=args.search_orders,
        trace=trace,
    )
    await service.start()
    endpoint = None
    if args.port is not None:
        endpoint = MetricsServer(
            service.metrics,
            port=args.port,
            health=lambda: {
                "degrade_level": service.degrade_level(),
                "queue_depth": service.snapshot()["queue_depth"],
            },
        )
        port = await endpoint.start()
        print(f"serving metrics at http://127.0.0.1:{port}/metrics", file=out)
    stop_submitting = asyncio.Event()
    abort = asyncio.Event()
    interrupts = 0

    def on_sigint() -> None:
        nonlocal interrupts
        interrupts += 1
        if interrupts == 1:
            stop_submitting.set()
            print("interrupt: draining admitted work...", file=out, flush=True)
        else:
            abort.set()
            print("interrupt: aborting", file=out, flush=True)

    loop = asyncio.get_running_loop()
    handled_signal = False
    try:
        loop.add_signal_handler(signal.SIGINT, on_sigint)
        handled_signal = True
    except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
        pass
    semaphore = asyncio.Semaphore(args.window) if args.window > 0 else None

    async def one(request: dict):
        try:
            return await service.submit(
                request["query"],
                tenant=request["tenant"],
                recipient=request["recipient"],
            )
        finally:
            if semaphore is not None:
                semaphore.release()

    tasks = []
    try:
        for request in requests:
            if stop_submitting.is_set() or abort.is_set():
                break
            if semaphore is not None:
                await semaphore.acquire()
                if stop_submitting.is_set() or abort.is_set():
                    semaphore.release()
                    break
            tasks.append(asyncio.create_task(one(request)))
            if args.pace > 0:
                try:
                    await asyncio.wait_for(stop_submitting.wait(), args.pace)
                    break
                except TimeoutError:
                    pass
        outcomes = []
        if tasks:
            waiter = asyncio.gather(*tasks, return_exceptions=True)
            abort_waiter = asyncio.create_task(abort.wait())
            await asyncio.wait(
                [waiter, abort_waiter], return_when=asyncio.FIRST_COMPLETED
            )
            if abort.is_set():
                await service.stop(drain=False)
            else:
                abort_waiter.cancel()
            outcomes = [
                result
                for result in await waiter
                if result is not None and not isinstance(result, BaseException)
            ]
        await service.stop(drain=True)
    finally:
        if handled_signal:
            loop.remove_signal_handler(signal.SIGINT)
        if endpoint is not None:
            await endpoint.stop()
        # Flush observability on every exit path — an interrupted run's
        # metrics are exactly what the operator wants to look at.
        if trace is not None:
            trace.close_all()
            from repro.obs import write_trace

            write_trace(trace, args.trace_out, fmt=args.trace_format)
            print(f"trace: written to {args.trace_out}", file=out)
        if args.metrics_out:
            write_metrics(service.metrics, args.metrics_out)
            print(f"metrics: written to {args.metrics_out}", file=out)
    snapshot = service.snapshot()
    print(
        f"served: {snapshot['submitted']} submitted / "
        f"{snapshot['admitted']} admitted / {snapshot['shed']} shed / "
        f"{snapshot['ok']} ok / {snapshot['infeasible']} infeasible / "
        f"{snapshot['failed']} failed "
        f"({len(requests) - len(tasks)} never submitted)",
        file=out,
    )
    latencies = [o.latency for o in outcomes if o.ok]
    if latencies:
        pct = latency_percentiles(latencies)
        print(
            f"latency: p50={pct['p50']:.4f}s p95={pct['p95']:.4f}s "
            f"p99={pct['p99']:.4f}s over {len(latencies)} served",
            file=out,
        )
    if snapshot["plan_cache"] is not None:
        cache = snapshot["plan_cache"]
        print(
            f"plan cache: {cache['hits']} hits / {cache['misses']} misses / "
            f"{cache['coalesced']} coalesced / "
            f"{cache['revalidations']} revalidations",
            file=out,
        )
    if abort.is_set():
        print("aborted before all outcomes resolved", file=out)
        return 3
    if snapshot["failed"]:
        return 1
    return 0


def _parse_boundary(token: str):
    """Range boundary: int if it parses, then float, else the string."""
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    return token


def _parse_schemes(specs, group_servers, out):
    """``--scheme`` specs to a ``relation -> PartitionScheme`` mapping
    (``None`` and a message on a malformed spec)."""
    from repro.sharding import (
        HashPartitionScheme,
        PartitionGroup,
        RangePartitionScheme,
    )

    group = PartitionGroup("cli-group", group_servers)
    schemes = {}
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 4:
            print(
                f"error: bad --scheme {spec!r} "
                "(want REL:hash:ATTRS:SHARDS or REL:range:ATTR:BOUNDARIES)",
                file=out,
            )
            return None
        relation, kind, attrs, tail = parts
        if kind == "hash":
            try:
                shards = int(tail)
            except ValueError:
                print(f"error: bad shard count in --scheme {spec!r}", file=out)
                return None
            schemes[relation] = HashPartitionScheme(
                relation, attrs.split(","), shards, group
            )
        elif kind == "range":
            boundaries = [_parse_boundary(b) for b in tail.split(",")]
            schemes[relation] = RangePartitionScheme(
                relation, attrs, boundaries, group
            )
        else:
            print(
                f"error: unknown partition kind {kind!r} in --scheme {spec!r}",
                file=out,
            )
            return None
    return schemes


def _cmd_shard(system: DistributedSystem, args, out) -> int:
    if args.instances:
        system.load_instances(load_json(args.instances))
    elif not args.catalog:
        system.load_instances(
            generate_instances(seed=args.seed, citizens=args.citizens)
        )
    else:
        print("error: --instances is required for JSON workloads", file=out)
        return 2
    schemes = _parse_schemes(args.scheme, args.group, out)
    if schemes is None:
        return 2
    certificate = system.certify_sharding(args.sql, schemes)
    for name, scheme in sorted(schemes.items()):
        print(f"scheme: {name} -> {scheme.describe()}", file=out)
    verdict = "certified" if certificate.certified else "REJECTED"
    print(f"certificate: {verdict} mode={certificate.mode}", file=out)
    if certificate.reason:
        print(f"  reason: {certificate.reason}", file=out)
    if args.certify_only:
        return 0 if certificate.certified else 3
    result = system.execute_sharded(
        args.sql,
        schemes,
        recipient=args.recipient,
        allow_multiround=not args.no_multiround,
    )
    summary = result.summary_dict()
    print(
        f"result: mode={summary['mode']} rows={summary['rows']} "
        f"shards={summary['shards']} rounds={summary['rounds']} "
        f"transfers={summary['transfers']} violations={summary['violations']} "
        f"makespan={summary['makespan']:.4f}",
        file=out,
    )
    if summary["fallback_reason"]:
        print(f"  fallback: {summary['fallback_reason']}", file=out)
    if args.diff:
        single = system.execute(args.sql, recipient=args.recipient)
        identical = result.table == single.table
        print(
            f"differential: {'identical' if identical else 'MISMATCH'} "
            f"({len(single.table)} rows single-copy)",
            file=out,
        )
        if not identical:
            return 1
    return 0


_COMMANDS = {
    "describe": _cmd_describe,
    "plan": _cmd_plan,
    "execute": _cmd_execute,
    "analyze": _cmd_analyze,
    "suggest": _cmd_suggest,
    "explain": _cmd_explain,
    "check": _cmd_check,
    "serve": _cmd_serve,
    "shard": _cmd_shard,
    "chaos": _cmd_chaos,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        system = _load_system(args)
        return _COMMANDS[args.command](system, args, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 2


if __name__ == "__main__":
    sys.exit(main())
