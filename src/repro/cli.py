"""Command-line interface.

Five subcommands over a workload (the built-in medical scenario or
JSON catalog/policy files, see :mod:`repro.io`):

* ``describe`` — the catalog and the policy (Figure 3 layout);
* ``plan``     — minimized tree, Figure 7 style trace, executor
  assignment and per-server exposure for a SQL query;
* ``execute``  — run the query tuple-level and report every audited
  transfer (medical workload generates instances; JSON workloads take
  ``--instances``);
* ``suggest``  — for an infeasible query, the smallest grants that
  would unlock it (what-if analysis);
* ``check``    — a single CanView question: may SERVER see these
  attributes under this join path?

Examples::

    python -m repro.cli describe
    python -m repro.cli plan --sql "SELECT Plan, HealthAid FROM Insurance \
        JOIN Nat_registry ON Holder = Citizen"
    python -m repro.cli execute --sql "..." --citizens 200
    python -m repro.cli suggest --sql "SELECT Physician, Treatment FROM \
        Disease_list JOIN Hospital ON Illness = Disease"
    python -m repro.cli check --server S_I --attributes Holder Plan
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.algebra.builder import build_plan
from repro.algebra.joins import JoinPath
from repro.analysis.exposure import exposure_of_assignment
from repro.analysis.reporting import render_policy_table, render_trace_table
from repro.analysis.whatif import suggest_repair
from repro.core.access import can_view, explain_denial
from repro.core.profile import RelationProfile
from repro.distributed.faults import FaultInjector
from repro.distributed.health import HealthTracker
from repro.distributed.system import DistributedSystem
from repro.exceptions import (
    CheckpointError,
    DeadlineExceededError,
    DegradedExecutionError,
    InfeasiblePlanError,
    ReproError,
)
from repro.io import catalog_from_dict, load_json, policy_from_dict
from repro.io.serialize import checkpoint_from_dict, checkpoint_to_dict, save_json
from repro.sql import parse_query
from repro.workloads.medical import generate_instances, medical_catalog, medical_policy


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Controlled information sharing in collaborative "
        "distributed query processing (ICDCS 2008 reproduction).",
    )
    parser.add_argument(
        "--catalog", help="JSON catalog file (default: built-in medical workload)"
    )
    parser.add_argument(
        "--policy", help="JSON policy file (default: built-in Figure 3 policy)"
    )
    parser.add_argument(
        "--no-closure",
        action="store_true",
        help="do not close the policy under the chase before planning",
    )
    parser.add_argument(
        "--third-party",
        action="append",
        default=[],
        metavar="SERVER",
        help="server usable as a join coordinator (repeatable)",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--plan-cache",
        dest="plan_cache",
        action="store_true",
        default=True,
        help="cache safe assignments keyed on query fingerprint and "
        "policy epoch (default: on; repeated queries plan once)",
    )
    cache_group.add_argument(
        "--no-plan-cache",
        dest="plan_cache",
        action="store_false",
        help="plan every query from scratch",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("describe", help="print the catalog and the policy")

    plan_cmd = commands.add_parser("plan", help="plan a SQL query safely")
    plan_cmd.add_argument("--sql", required=True)
    plan_cmd.add_argument(
        "--search-orders",
        action="store_true",
        help="try alternative join orders when the given one is infeasible",
    )

    execute_cmd = commands.add_parser("execute", help="plan and run a SQL query")
    execute_cmd.add_argument("--sql", required=True)
    execute_cmd.add_argument("--recipient", help="deliver the result to this party")
    execute_cmd.add_argument(
        "--instances", help="JSON instances file (relation -> rows)"
    )
    execute_cmd.add_argument("--seed", type=int, default=7)
    execute_cmd.add_argument("--citizens", type=int, default=100)
    execute_cmd.add_argument(
        "--drop-rate",
        type=float,
        default=None,
        metavar="P",
        help="inject per-attempt transfer drops with probability P (enables "
        "retry/backoff and authorization-safe failover)",
    )
    execute_cmd.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault injector (runs are fully deterministic)",
    )
    execute_cmd.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="SERVER:START[:END]",
        help="take SERVER down during [START, END) of logical time "
        "(END omitted = forever; repeatable; enables fault injection)",
    )
    execute_cmd.add_argument(
        "--max-failovers",
        type=int,
        default=3,
        help="re-planning rounds before the query degrades",
    )
    execute_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="BUDGET",
        help="simulated-time budget for the whole execution; exhaustion "
        "exits 4 and (with --resume FILE) writes a checkpoint journal "
        "(enables fault injection)",
    )
    execute_cmd.add_argument(
        "--resume",
        default=None,
        metavar="FILE",
        help="checkpoint journal file: loaded (and re-audited) when it "
        "exists, written when the run is killed by deadline or "
        "degradation (enables fault injection)",
    )
    execute_cmd.add_argument(
        "--breakers",
        action="store_true",
        help="track per-server/per-link health with circuit breakers and "
        "plan around quarantined servers (enables fault injection)",
    )
    execute_cmd.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the run's trace (planning + execution spans) to FILE; "
        "written even when the run fails, so failed runs stay debuggable",
    )
    execute_cmd.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format: jsonl (one record per line) or chrome "
        "(trace-event JSON loadable in Perfetto / chrome://tracing)",
    )
    execute_cmd.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's metrics in Prometheus text exposition to FILE",
    )

    suggest_cmd = commands.add_parser(
        "suggest", help="suggest minimal grants for an infeasible query"
    )
    suggest_cmd.add_argument("--sql", required=True)

    explain_cmd = commands.add_parser(
        "explain", help="explain every CanView decision of a query's planning"
    )
    explain_cmd.add_argument("--sql", required=True)

    check_cmd = commands.add_parser("check", help="one CanView question")
    check_cmd.add_argument("--server", required=True)
    check_cmd.add_argument("--attributes", nargs="+", required=True)
    check_cmd.add_argument(
        "--join",
        action="append",
        default=[],
        metavar="A=B",
        help="join condition of the view's path (repeatable)",
    )
    return parser


def _load_system(args: argparse.Namespace) -> DistributedSystem:
    if args.catalog:
        catalog = catalog_from_dict(load_json(args.catalog))
    else:
        catalog = medical_catalog()
    if args.policy:
        policy = policy_from_dict(load_json(args.policy))
    else:
        policy = medical_policy()
    return DistributedSystem(
        catalog,
        policy,
        apply_closure=not args.no_closure,
        third_parties=args.third_party,
        plan_cache=args.plan_cache,
    )


def _cmd_describe(system: DistributedSystem, args, out) -> int:
    print(system.catalog.describe(), file=out)
    print(file=out)
    print(render_policy_table(system.explicit_policy), file=out)
    print(
        f"\n({len(system.explicit_policy)} explicit rules, "
        f"{len(system.policy)} after closure)",
        file=out,
    )
    return 0


def _cmd_plan(system: DistributedSystem, args, out) -> int:
    try:
        tree, assignment, trace = system.plan(
            args.sql, search_join_orders=args.search_orders
        )
    except InfeasiblePlanError as error:
        print(f"infeasible: {error}", file=out)
        return 2
    print(tree.render(), file=out)
    print(file=out)
    print(render_trace_table(trace), file=out)
    print("\nassignment:", file=out)
    print(assignment.describe(), file=out)
    print("\nexposure:", file=out)
    print(exposure_of_assignment(assignment, system.catalog).describe(), file=out)
    return 0


def _cmd_execute(system: DistributedSystem, args, out) -> int:
    if args.instances:
        system.load_instances(load_json(args.instances))
    elif not args.catalog:
        system.load_instances(
            generate_instances(seed=args.seed, citizens=args.citizens)
        )
    else:
        print("error: --instances is required for JSON workloads", file=out)
        return 2
    faults = _build_injector(args, out)
    if faults is _BAD_FAULT_SPEC:
        return 2
    health = HealthTracker() if args.breakers else None
    resume_from = None
    if args.resume:
        import os

        if os.path.exists(args.resume):
            try:
                resume_from = checkpoint_from_dict(load_json(args.resume))
            except ReproError as error:
                print(f"error: bad checkpoint file {args.resume!r}: {error}", file=out)
                return 2
            print(
                f"resuming from {args.resume} "
                f"({len(resume_from)} checkpointed subtrees)",
                file=out,
            )
    trace = None
    if args.trace_out or args.metrics_out:
        from repro.obs import TraceContext

        trace = TraceContext()
    try:
        result = system.execute(
            args.sql,
            recipient=args.recipient,
            faults=faults,
            max_failovers=args.max_failovers,
            deadline=args.deadline,
            health=health,
            checkpoint=bool(args.resume),
            resume_from=resume_from,
            trace=trace,
        )
    except InfeasiblePlanError as error:
        print(f"infeasible: {error}", file=out)
        return 2
    except CheckpointError as error:
        print(f"checkpoint refused: {error}", file=out)
        return 2
    except DeadlineExceededError as error:
        print(f"deadline exceeded: {error}", file=out)
        _save_journal(error.checkpoint, args.resume, out)
        return 4
    except DegradedExecutionError as error:
        print(f"degraded: {error}", file=out)
        _save_journal(getattr(error, "checkpoint", None), args.resume, out)
        return 3
    finally:
        # A failed run's partial trace is exactly what the operator
        # needs to debug it — export on every exit path.
        _write_observability(trace, args, out)
    print(f"result: {result.summary()}", file=out)
    if result.plan_cache is not None:
        cache = result.plan_cache
        print(
            f"plan cache: {cache['hits']} hits / {cache['misses']} misses / "
            f"{cache['revalidations']} revalidations",
            file=out,
        )
    print(result.transfers.describe(), file=out)
    if result.audit is not None:
        print(result.audit.summary(), file=out)
    if faults is not None:
        print(f"faults: {faults!r}", file=out)
    if health is not None:
        print(f"health: {health.describe()}", file=out)
    return 0


def _write_observability(trace, args, out) -> None:
    """Export the trace/metrics files requested by --trace-out and
    --metrics-out (no-op when tracing was not requested)."""
    if trace is None:
        return
    from repro.obs import write_metrics, write_trace

    trace.close_all()
    if args.trace_out:
        write_trace(trace, args.trace_out, fmt=args.trace_format)
        print(
            f"trace: {len(trace.spans)} spans, {len(trace.events)} events "
            f"written to {args.trace_out} ({args.trace_format})",
            file=out,
        )
    if args.metrics_out:
        write_metrics(trace.metrics, args.metrics_out)
        print(f"metrics: written to {args.metrics_out}", file=out)


def _save_journal(journal, path, out) -> None:
    """Persist a checkpoint journal for a later --resume, when asked to."""
    if journal is None or not path:
        return
    save_json(checkpoint_to_dict(journal), path)
    print(
        f"checkpoint: {len(journal)} completed subtrees written to {path}",
        file=out,
    )


#: Sentinel distinguishing "no faults requested" from "bad --crash spec".
_BAD_FAULT_SPEC = object()


def _build_injector(args, out):
    """An injector from --drop-rate/--crash flags, or None when absent.

    --deadline/--resume/--breakers need a logical clock even without
    injected faults, so any of them forces a (fault-free) injector.
    """
    if args.drop_rate is None and not args.crash:
        if args.deadline is not None or args.resume or args.breakers:
            return FaultInjector(seed=args.fault_seed)
        return None
    faults = FaultInjector(
        seed=args.fault_seed, drop_probability=args.drop_rate or 0.0
    )
    for spec in args.crash:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            print(f"error: bad crash spec {spec!r}; use SERVER:START[:END]", file=out)
            return _BAD_FAULT_SPEC
        try:
            start = float(parts[1])
            end = float(parts[2]) if len(parts) == 3 else None
        except ValueError:
            print(f"error: bad crash spec {spec!r}; use SERVER:START[:END]", file=out)
            return _BAD_FAULT_SPEC
        faults.crash(parts[0], start=start, end=end)
    return faults


def _cmd_suggest(system: DistributedSystem, args, out) -> int:
    spec = parse_query(args.sql, system.catalog)
    tree = build_plan(system.catalog, spec)
    repair = suggest_repair(system.policy, tree)
    print(repair.describe(), file=out)
    if repair.is_already_feasible:
        return 0
    augmented = repair.augmented_policy(system.policy)
    from repro.core.planner import SafePlanner

    SafePlanner(augmented).plan(tree)
    print("\n(the plan is feasible under the augmented policy)", file=out)
    return 0


def _cmd_explain(system: DistributedSystem, args, out) -> int:
    from repro.analysis.explain import explain_planning, render_explanation

    spec = parse_query(args.sql, system.catalog)
    tree = build_plan(system.catalog, spec)
    explanations, feasible = explain_planning(system.policy, tree)
    print(tree.render(), file=out)
    print(file=out)
    print(render_explanation(system.policy, tree, explanations), file=out)
    print(f"\nfeasible: {feasible}", file=out)
    return 0 if feasible else 2


def _cmd_check(system: DistributedSystem, args, out) -> int:
    pairs = []
    for condition in args.join:
        if "=" not in condition:
            print(f"error: bad join condition {condition!r}; use A=B", file=out)
            return 2
        left, right = condition.split("=", 1)
        pairs.append((left.strip(), right.strip()))
    profile = RelationProfile(args.attributes, JoinPath.of(*pairs))
    allowed = can_view(system.policy, profile, args.server)
    print(f"{args.server} may view {profile}: {allowed}", file=out)
    if not allowed:
        print(explain_denial(system.policy, profile, args.server), file=out)
    return 0 if allowed else 1


_COMMANDS = {
    "describe": _cmd_describe,
    "plan": _cmd_plan,
    "execute": _cmd_execute,
    "suggest": _cmd_suggest,
    "explain": _cmd_explain,
    "check": _cmd_check,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        system = _load_system(args)
        return _COMMANDS[args.command](system, args, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 2


if __name__ == "__main__":
    sys.exit(main())
