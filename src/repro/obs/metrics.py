"""Process-wide metrics: counters, gauges and histograms with labels.

A :class:`MetricsRegistry` is a flat namespace of metric *families*;
each family owns labeled *series* (one per distinct label set).  The
design follows the Prometheus data model closely enough that
:meth:`MetricsRegistry.prometheus_text` produces valid text exposition
format, while :meth:`MetricsRegistry.snapshot` yields a plain nested
dictionary for embedding into ``BENCH_*.json`` artifacts (see
:func:`repro.analysis.reporting.write_bench_json`).

Everything here is dependency-free and deterministic: no wall clock, no
background threads, no global state beyond the registry the caller
holds.  Creation of series is lazy — incrementing a counter with a
never-seen label set materializes the series — so instrumented code
never needs to pre-declare its label universe.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (bytes/latency friendly).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, object]) -> LabelSet:
    """Canonical (sorted, stringified) form of one label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus-style number rendering: integers without the dot."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Family:
    """Common series bookkeeping shared by the three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        _validate_metric_name(name)
        self.name = name
        self.help = help_text
        self._series: Dict[LabelSet, float] = {}

    def labelsets(self) -> List[LabelSet]:
        """Every label set with a live series, sorted."""
        return sorted(self._series)

    def value(self, **labels: object) -> float:
        """Current value of one series (0.0 if never touched)."""
        return self._series.get(_labelset(labels), 0.0)

    def snapshot(self) -> Dict[str, float]:
        """``rendered-labels -> value`` for every series."""
        return {
            _format_labels(key) or "": value
            for key, value in sorted(self._series.items())
        }


class Counter(_Family):
    """A monotonically increasing family of labeled series."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to one series."""
        if amount < 0:
            raise ValueError(f"counters only go up (got {amount!r})")
        key = _labelset(labels)
        self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(_Family):
    """A settable family of labeled series."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Set one series to ``value``."""
        self._series[_labelset(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (may be negative) to one series."""
        key = _labelset(labels)
        self._series[key] = self._series.get(key, 0.0) + amount


class Histogram:
    """Cumulative-bucket histogram family (Prometheus semantics).

    Args:
        name: metric name (exposed as ``name_bucket/_sum/_count``).
        help_text: one-line description.
        buckets: strictly increasing upper bounds; a ``+Inf`` bucket is
            implicit.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        _validate_metric_name(name)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.help = help_text
        self.buckets = tuple(float(b) for b in buckets)
        self._counts: Dict[LabelSet, List[int]] = {}
        self._sums: Dict[LabelSet, float] = {}
        self._totals: Dict[LabelSet, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the matching cumulative buckets."""
        key = _labelset(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0.0
            self._totals[key] = 0
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] += value
        self._totals[key] += 1

    def labelsets(self) -> List[LabelSet]:
        return sorted(self._counts)

    def count(self, **labels: object) -> int:
        """Observations recorded for one series."""
        return self._totals.get(_labelset(labels), 0)

    def sum(self, **labels: object) -> float:
        """Sum of observations for one series."""
        return self._sums.get(_labelset(labels), 0.0)

    def quantile(self, q: float, **labels: object) -> Optional[float]:
        """Nearest-rank quantile estimate from the cumulative buckets.

        Returns the upper bound of the first bucket whose cumulative
        count reaches rank ``ceil(q * count)`` — the standard Prometheus
        ``histogram_quantile`` resolution, conservative to one bucket
        width.  ``None`` for a series with no observations; the largest
        finite bound when the rank lands in the ``+Inf`` bucket (there
        is no finite upper estimate beyond it).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1] (got {q!r})")
        key = _labelset(labels)
        total = self._totals.get(key, 0)
        if total == 0:
            return None
        rank = max(1, math.ceil(q * total))
        cumulative = 0
        for bound, count in zip(self.buckets, self._counts[key]):
            cumulative += count
            if cumulative >= rank:
                return bound
        return self.buckets[-1]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for key in self.labelsets():
            cumulative = 0
            rendered: Dict[str, float] = {}
            for bound, count in zip(self.buckets, self._counts[key]):
                cumulative += count
                rendered[f"le={_format_value(bound)}"] = cumulative
            cumulative += self._counts[key][-1]
            rendered["le=+Inf"] = cumulative
            rendered["sum"] = self._sums[key]
            rendered["count"] = self._totals[key]
            out[_format_labels(key) or ""] = rendered
        return out


def _validate_metric_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name: {name!r}")


class MetricsRegistry:
    """A namespace of metric families.

    Families are created on first use (:meth:`counter` / :meth:`gauge` /
    :meth:`histogram` are get-or-create); re-requesting a name with a
    different kind raises ``ValueError`` — a name means one thing.
    """

    def __init__(self) -> None:
        self._families: Dict[str, object] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        family = self._families.get(name)
        if family is not None:
            if not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} is already registered as "
                    f"{family.kind}, not {cls.kind}"
                )
            return family
        family = cls(name, help_text, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create a counter family."""
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create a gauge family."""
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram family."""
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def families(self) -> List[object]:
        """Every registered family, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def __len__(self) -> int:
        return len(self._families)

    # ------------------------------------------------------------------
    # Convenience increments (used by instrumented call sites)
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Increment counter ``name`` (creating it if needed)."""
        self.counter(name).inc(amount, **labels)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set gauge ``name`` (creating it if needed)."""
        self.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Observe into histogram ``name`` (creating it if needed)."""
        self.histogram(name).observe(value, **labels)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """Nested plain-dict snapshot, fit for JSON artifacts."""
        out: Dict[str, dict] = {}
        for family in self.families():
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": family.snapshot(),
            }
        return out

    def prometheus_text(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every family."""
        lines: List[str] = []
        for family in self.families():
            # A family declared but never observed has no samples; a
            # TYPE line with nothing under it is invalid exposition
            # (parse_prometheus_text rejects it), so skip it entirely.
            if not family.labelsets():
                continue
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if isinstance(family, Histogram):
                for key in family.labelsets():
                    cumulative = 0
                    for bound, count in zip(family.buckets, family._counts[key]):
                        cumulative += count
                        bucket_labels = key + (("le", _format_value(bound)),)
                        lines.append(
                            f"{family.name}_bucket{_format_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    cumulative += family._counts[key][-1]
                    inf_labels = key + (("le", "+Inf"),)
                    lines.append(
                        f"{family.name}_bucket{_format_labels(inf_labels)} {cumulative}"
                    )
                    lines.append(
                        f"{family.name}_sum{_format_labels(key)} "
                        f"{_format_value(family._sums[key])}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(key)} "
                        f"{family._totals[key]}"
                    )
            else:
                for key, value in sorted(family._series.items()):
                    lines.append(
                        f"{family.name}{_format_labels(key)} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""
