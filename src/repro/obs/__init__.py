"""Dependency-free tracing and metrics for the query stack.

Construct a :class:`TraceContext`, pass it to
:meth:`DistributedSystem.execute(trace=...)
<repro.distributed.system.DistributedSystem.execute>` (or ``plan``),
and every layer — chase closure, planner candidate enumeration, CanView
checks, shipments, retries, breakers, deadlines, checkpoints — records
spans, instant events, and labeled metrics into it.  Export with
:func:`trace_jsonl`, :func:`chrome_trace_json` (Perfetto-loadable), or
:meth:`MetricsRegistry.prometheus_text`.

With no context installed every instrumented call site is a single
``is None`` test away from the uninstrumented code path; the ABL12
bench holds that overhead under 5%.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import MISSING, Span, TraceContext, TraceEvent
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    jsonl_lines,
    parse_prometheus_text,
    trace_jsonl,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MISSING",
    "Span",
    "TraceContext",
    "TraceEvent",
    "chrome_trace",
    "chrome_trace_json",
    "jsonl_lines",
    "parse_prometheus_text",
    "trace_jsonl",
    "validate_chrome_trace",
    "write_metrics",
    "write_trace",
]
