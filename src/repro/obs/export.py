"""Exporters for :class:`~repro.obs.trace.TraceContext` telemetry.

Three formats, all dependency-free:

* **JSONL** — one JSON object per line, ordered by emission sequence.
  Sorted keys and explicit separators make the output byte-stable for a
  deterministic (logical-clock) run, which the golden-file tests rely
  on.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` format
  that loads directly in ``about:tracing`` and Perfetto.  Spans become
  complete (``"ph": "X"``) events, instant events ``"ph": "i"``, and
  each track gets a ``thread_name`` metadata record so the UI shows
  server lanes instead of numeric tids.
* **Prometheus text exposition** — delegated to
  :meth:`~repro.obs.metrics.MetricsRegistry.prometheus_text`; this
  module adds :func:`parse_prometheus_text`, the line-format checker the
  acceptance tests run over the exported page.

The validators (:func:`validate_chrome_trace`,
:func:`parse_prometheus_text`) are shared by the test suite and the
ABL12 bench so "the export is valid" means the same thing everywhere.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceContext

#: Logical-clock units are seconds; Chrome trace timestamps are microseconds.
_MICROSECONDS = 1_000_000.0


def _dumps(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def jsonl_lines(trace: TraceContext) -> List[str]:
    """One JSON object per span/event, ordered by emission sequence."""
    records: List[Tuple[int, Dict[str, object]]] = []
    for span in trace.spans:
        records.append((span.seq, {
            "type": "span",
            "seq": span.seq,
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "cat": span.category,
            "track": span.track,
            "start": span.start,
            "end": span.end,
            "attrs": span.attrs,
        }))
    for event in trace.events:
        records.append((event.seq, {
            "type": "event",
            "seq": event.seq,
            "parent": event.parent_id,
            "name": event.name,
            "cat": event.category,
            "track": event.track,
            "ts": event.ts,
            "attrs": event.attrs,
        }))
    records.sort(key=lambda pair: pair[0])
    return [_dumps(record) for _, record in records]


def trace_jsonl(trace: TraceContext) -> str:
    """The full JSONL document (trailing newline included)."""
    lines = jsonl_lines(trace)
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------

def chrome_trace(trace: TraceContext) -> Dict[str, object]:
    """The trace as a Chrome trace-event document (Perfetto-loadable).

    Tracks map to thread ids: tid 0 is the main lane, additional tracks
    (servers, links) get tids in order of first appearance, each named
    via a ``thread_name`` metadata event.
    """
    tids: Dict[str, int] = {}

    def tid_for(track: Optional[str]) -> int:
        name = track if track is not None else "main"
        if name not in tids:
            tids[name] = len(tids)
        return tids[name]

    tid_for("main")
    events: List[Dict[str, object]] = []
    for span in trace.spans:
        start = span.start
        end = span.end if span.end is not None else start
        events.append({
            "name": span.name,
            "cat": span.category or "default",
            "ph": "X",
            "ts": start * _MICROSECONDS,
            "dur": max(0.0, end - start) * _MICROSECONDS,
            "pid": 1,
            "tid": tid_for(span.track),
            "args": dict(span.attrs, span_id=span.span_id, parent_id=span.parent_id),
        })
    for event in trace.events:
        events.append({
            "name": event.name,
            "cat": event.category or "default",
            "ph": "i",
            "s": "t",
            "ts": event.ts * _MICROSECONDS,
            "pid": 1,
            "tid": tid_for(event.track),
            "args": dict(event.attrs),
        })
    metadata: List[Dict[str, object]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": name},
        }
        for name, tid in sorted(tids.items(), key=lambda pair: pair[1])
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def chrome_trace_json(trace: TraceContext) -> str:
    """The Chrome trace document serialized (byte-stable)."""
    return _dumps(chrome_trace(trace)) + "\n"


def validate_chrome_trace(document: object) -> List[str]:
    """Check a parsed Chrome trace document against the trace-event
    schema subset we emit.  Returns a list of problems (empty = valid).
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "b", "e", "n"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: missing integer tid")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: missing non-negative ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event missing non-negative dur")
        if ph == "i" and event.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where}: instant scope must be t/p/g")
    return problems


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, float]]:
    """Parse (and strictly validate) Prometheus text exposition.

    Returns ``{sample_name: {rendered_labels: value}}``, where
    ``sample_name`` includes histogram suffixes (``_bucket`` etc.).
    Raises ``ValueError`` on any malformed line — this is the line-format
    checker the acceptance criteria call for.
    """
    samples: Dict[str, Dict[str, float]] = {}
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name = rest.split(" ", 1)[0]
            if not _NAME_RE.fullmatch(name):
                raise ValueError(f"line {lineno}: bad HELP metric name {name!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            name, kind = parts
            if not _NAME_RE.fullmatch(name):
                raise ValueError(f"line {lineno}: bad TYPE metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line: {line!r}")
        labels = match.group("labels")
        rendered = ""
        if labels is not None:
            parts = _split_labels(labels)
            for part in parts:
                if not _LABEL_RE.match(part):
                    raise ValueError(f"line {lineno}: malformed label {part!r}")
            rendered = "{" + ",".join(parts) + "}"
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            )
        samples.setdefault(match.group("name"), {})[rendered] = value
    for name, kind in typed.items():
        if kind == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                if name + suffix not in samples:
                    raise ValueError(
                        f"histogram {name} missing {name + suffix} samples"
                    )
            _validate_histogram(name, samples)
        elif name not in samples:
            raise ValueError(f"TYPE declared for {name} but no samples follow")
    return samples


def _validate_histogram(name: str, samples: Dict[str, Dict[str, float]]) -> None:
    """Cumulative-bucket semantics of one exposed histogram family.

    Per base label set: every ``_bucket`` sample carries a numeric (or
    ``+Inf``) ``le`` label, bucket counts are non-decreasing in ``le``
    order, the ``+Inf`` bucket exists and equals the ``_count`` sample,
    and a ``_sum`` sample is present.  Raises ``ValueError`` on the
    first violation.
    """
    counts = samples[name + "_count"]
    sums = samples[name + "_sum"]
    series: Dict[str, List[Tuple[float, float]]] = {}
    for rendered, value in samples[name + "_bucket"].items():
        le: Optional[float] = None
        rest: List[str] = []
        for part in _split_labels(rendered[1:-1]) if rendered else []:
            if part.startswith('le="') and part.endswith('"'):
                raw = part[len('le="'):-1]
                try:
                    le = float("inf") if raw == "+Inf" else float(raw)
                except ValueError:
                    raise ValueError(
                        f"histogram {name}: non-numeric le label {raw!r}"
                    )
            else:
                rest.append(part)
        if le is None:
            raise ValueError(
                f"histogram {name}: _bucket sample {rendered or '{}'} "
                "has no le label"
            )
        base = "{" + ",".join(rest) + "}" if rest else ""
        series.setdefault(base, []).append((le, value))
    for base, pairs in sorted(series.items()):
        pairs.sort(key=lambda pair: pair[0])
        previous = None
        for le, value in pairs:
            if previous is not None and value < previous:
                raise ValueError(
                    f"histogram {name}{base}: bucket counts decrease at "
                    f"le={le}"
                )
            previous = value
        if pairs[-1][0] != float("inf"):
            raise ValueError(f"histogram {name}{base}: missing +Inf bucket")
        if base not in counts:
            raise ValueError(f"histogram {name}{base}: missing _count sample")
        if pairs[-1][1] != counts[base]:
            raise ValueError(
                f"histogram {name}{base}: +Inf bucket {pairs[-1][1]} != "
                f"_count {counts[base]}"
            )
        if base not in sums:
            raise ValueError(f"histogram {name}{base}: missing _sum sample")


def _split_labels(labels: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in labels:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------

def write_trace(trace: TraceContext, path: str, fmt: str = "jsonl") -> None:
    """Write the trace to ``path`` as ``jsonl`` or ``chrome``."""
    if fmt == "jsonl":
        payload = trace_jsonl(trace)
    elif fmt == "chrome":
        payload = chrome_trace_json(trace)
    else:
        raise ValueError(f"unknown trace format {fmt!r} (want jsonl or chrome)")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def write_metrics(metrics: MetricsRegistry, path: str) -> None:
    """Write the registry as Prometheus text exposition to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(metrics.prometheus_text())
