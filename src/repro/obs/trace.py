"""Nested spans and instant events on the simulation's logical clock.

A :class:`TraceContext` is the single observability handle threaded
through the stack: planning opens spans around candidate enumeration,
the chase opens spans per round, the executor opens one ``transfer``
span per shipment, and the resilience/health/deadline/checkpoint layers
emit instant events inside whichever span is open.  Every instrumented
call site guards with ``if trace is not None`` — with no context
installed the code path is byte-for-byte the uninstrumented one, which
is what the ABL12 overhead bench asserts.

Time comes from a pluggable zero-argument ``clock``.  Executions under a
:class:`~repro.distributed.faults.FaultInjector` bind the injector's
*logical* clock (see :meth:`TraceContext.maybe_use_clock`), making every
timestamp deterministic and golden-file-stable; outside simulation the
context falls back to the wall clock (``time.perf_counter``).

The span tree is intentionally simple: integer ids assigned in opening
order, parent = the innermost open span, strictly LIFO closing.  Because
``parent_id < span_id`` always holds, the parent relation is acyclic by
construction — the exporter tests assert both invariants.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Sentinel for "no cached answer" in the covering-authorization cache.
MISSING = object()


class Span:
    """One timed, attributed region of work.

    Attributes:
        span_id: 1-based id in opening order.
        parent_id: enclosing span's id (``None`` at the roots).
        seq: global emission sequence number (spans and events share it).
        name: what ran (see the taxonomy in ``docs/observability.md``).
        category: coarse grouping (``planner``, ``engine``, ...).
        track: display lane for the Chrome exporter (e.g. a server name).
        start: opening timestamp (context clock units).
        end: closing timestamp, or ``None`` while still open.
        attrs: key -> JSON-safe value annotations.
    """

    __slots__ = (
        "span_id", "parent_id", "seq", "name", "category", "track",
        "start", "end", "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        seq: int,
        name: str,
        category: str,
        track: Optional[str],
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.seq = seq
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = {}

    @property
    def duration(self) -> float:
        """``end - start`` (0.0 while open)."""
        return 0.0 if self.end is None else self.end - self.start

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration:.3f}"
        return f"Span(#{self.span_id} {self.category}/{self.name}, {state})"


class TraceEvent:
    """One instant (zero-duration) occurrence inside the span tree."""

    __slots__ = ("seq", "parent_id", "name", "category", "track", "ts", "attrs")

    def __init__(
        self,
        seq: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        track: Optional[str],
        ts: float,
        attrs: Dict[str, object],
    ) -> None:
        self.seq = seq
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.track = track
        self.ts = ts
        self.attrs = attrs

    def __repr__(self) -> str:
        return f"TraceEvent({self.category}/{self.name} @ {self.ts:.3f})"


class _SpanHandle:
    """Context-manager wrapper returned by :meth:`TraceContext.span`."""

    __slots__ = ("_trace", "span")

    def __init__(self, trace: "TraceContext", span: Span) -> None:
        self._trace = trace
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._trace.end(self.span)


class TraceContext:
    """The tracing + metrics handle one run threads end-to-end.

    Args:
        clock: zero-argument callable yielding the current time.  When
            omitted, the wall clock is used until an execution binds a
            simulation's logical clock via :meth:`maybe_use_clock`.
        metrics: the registry instrumented counters feed; a fresh
            :class:`~repro.obs.metrics.MetricsRegistry` by default.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._clock = clock
        self._clock_pinned = clock is not None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._next_seq = 1
        self._covering: Dict[Tuple[str, object], object] = {}

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def now(self) -> float:
        """The current timestamp under the bound clock."""
        clock = self._clock
        return clock() if clock is not None else time.perf_counter()

    def use_clock(self, clock: Callable[[], float]) -> None:
        """Bind ``clock`` unconditionally (subsequent stamps use it)."""
        self._clock = clock
        self._clock_pinned = True

    def maybe_use_clock(self, clock: Callable[[], float]) -> None:
        """Bind ``clock`` unless one was explicitly chosen already.

        Executions call this with the fault injector's logical clock, so
        a context constructed without a clock automatically goes logical
        the moment it meets a simulation — while a test that pinned its
        own deterministic clock keeps it.
        """
        if not self._clock_pinned:
            self._clock = clock
            self._clock_pinned = True

    # ------------------------------------------------------------------
    # Spans and events
    # ------------------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str = "",
        track: Optional[str] = None,
        **attrs: object,
    ) -> Span:
        """Open a span as a child of the innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            self._next_id, parent, self._next_seq, name, category, track, self.now()
        )
        self._next_id += 1
        self._next_seq += 1
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs: object) -> None:
        """Close ``span`` (must be the innermost open one)."""
        if attrs:
            span.attrs.update(attrs)
        if span.end is not None:
            return
        # Strictly LIFO in correct code; tolerate (and close) abandoned
        # children so one buggy call site cannot leave the tree open.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.end = self.now()
            top.attrs.setdefault("abandoned", True)
        span.end = self.now()

    def span(
        self,
        name: str,
        category: str = "",
        track: Optional[str] = None,
        **attrs: object,
    ) -> _SpanHandle:
        """``with trace.span(...):`` convenience around begin/end."""
        return _SpanHandle(self, self.begin(name, category, track, **attrs))

    def event(
        self,
        name: str,
        category: str = "",
        track: Optional[str] = None,
        **attrs: object,
    ) -> TraceEvent:
        """Record an instant event inside the innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        record = TraceEvent(
            self._next_seq, parent, name, category, track, self.now(), dict(attrs)
        )
        self._next_seq += 1
        self.events.append(record)
        return record

    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Shorthand for ``metrics.inc`` — the common call-site verb."""
        self.metrics.inc(name, amount, **labels)

    def record_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        track: Optional[str] = None,
        **attrs: object,
    ) -> Span:
        """Record an already-finished span retroactively.

        The discrete-event simulator computes task intervals after the
        fact (its event loop processes completions out of wall order),
        so it cannot bracket them with :meth:`begin`/:meth:`end`.  A
        retroactive span is a root (no parent) — it never joins the
        live stack and cannot orphan open spans.
        """
        span = Span(self._next_id, None, self._next_seq, name, category, track, start)
        self._next_id += 1
        self._next_seq += 1
        span.end = end
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (innermost last)."""
        return list(self._stack)

    def spans_named(self, name: str) -> List[Span]:
        """All spans with ``name``, in opening order."""
        return [span for span in self.spans if span.name == name]

    def close_all(self) -> None:
        """Close any spans still open (crash-path hygiene)."""
        while self._stack:
            self.end(self._stack[-1])

    # ------------------------------------------------------------------
    # Covering-authorization reuse (audit <-> explain)
    # ------------------------------------------------------------------

    def record_covering(self, server: str, profile: object, rule: object) -> None:
        """Remember the covering authorization computed for
        ``(server, profile)`` so later consumers (the explain path, the
        audit stamp test) reuse it instead of re-probing the policy."""
        self._covering[(server, profile)] = rule

    def covering_for(self, server: str, profile: object) -> object:
        """The cached covering rule (may be ``None`` = known denial), or
        :data:`MISSING` when this pair was never computed."""
        return self._covering.get((server, profile), MISSING)

    def __repr__(self) -> str:
        return (
            f"TraceContext({len(self.spans)} spans, {len(self.events)} events, "
            f"{len(self._stack)} open)"
        )
