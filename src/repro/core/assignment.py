"""Executor assignments (Definitions 4.1-4.3).

An *executor assignment* maps every node of a query tree plan to a pair
``[master, slave]``:

1. leaves get ``[storing server, NULL]``;
2. unary nodes get ``[S_l, NULL]`` where ``S_l`` is the server holding
   the operand (the child's master);
3. join nodes get ``[master, slave]`` with the master drawn from the two
   operand servers, the slave from the other operand's server or
   ``NULL``, and ``master != slave``.

An assignment is *safe* when every data flow it entails (Figure 5) is an
authorized release; a plan is *feasible* when a safe assignment exists.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.algebra.tree import JoinNode, LeafNode, PlanNode, QueryTreePlan, UnaryNode
from repro.core.profile import RelationProfile
from repro.exceptions import PlanError


class Executor:
    """The ``[master, slave]`` pair assigned to one node."""

    __slots__ = ("master", "slave")

    def __init__(self, master: str, slave: Optional[str] = None) -> None:
        if not master:
            raise PlanError("executor master must be a server name")
        if slave is not None and slave == master:
            raise PlanError("executor master and slave must differ (Definition 4.1)")
        self.master = master
        self.slave = slave

    @property
    def is_semi_join(self) -> bool:
        """Whether the executor denotes a semi-join (slave present)."""
        return self.slave is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Executor):
            return NotImplemented
        return self.master == other.master and self.slave == other.slave

    def __hash__(self) -> int:
        return hash((self.master, self.slave))

    def __repr__(self) -> str:
        slave = self.slave if self.slave is not None else "NULL"
        return f"[{self.master}, {slave}]"

    __str__ = __repr__


class Assignment:
    """A complete executor assignment for a plan, plus node profiles.

    Produced by the safe planner (or the exhaustive baseline); consumed
    by the safety verifier, the cost model and the execution engine.
    """

    def __init__(self, plan: QueryTreePlan) -> None:
        self._plan = plan
        self._executors: Dict[int, Executor] = {}
        self._profiles: Dict[int, RelationProfile] = {}
        self._coordinators: Dict[int, str] = {}
        self._materialized: Dict[int, str] = {}

    @property
    def plan(self) -> QueryTreePlan:
        """The plan being assigned."""
        return self._plan

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------

    def set_executor(self, node_id: int, executor: Executor) -> None:
        """Record the executor of one node (planner-internal)."""
        self._plan.node(node_id)  # validates the id
        self._executors[node_id] = executor

    def executor(self, node_id: int) -> Executor:
        """Executor of a node.

        Raises:
            PlanError: if the node has no executor (incomplete assignment).
        """
        try:
            return self._executors[node_id]
        except KeyError:
            raise PlanError(f"node {node_id} has no executor assigned") from None

    def master(self, node_id: int) -> str:
        """Master server of a node — who holds the node's result."""
        return self.executor(node_id).master

    def is_complete(self) -> bool:
        """Whether every *live* node of the plan has an executor.

        Nodes strictly below a materialized subtree root never execute
        (their result already exists), so they need no executor.
        """
        skipped = self.skipped_node_ids()
        return all(
            node.node_id in self._executors
            for node in self._plan
            if node.node_id not in skipped
        )

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------

    def set_profile(self, node_id: int, profile: RelationProfile) -> None:
        """Record the profile of one node's output (planner-internal)."""
        self._plan.node(node_id)
        self._profiles[node_id] = profile

    def profile(self, node_id: int) -> RelationProfile:
        """Profile of a node's output relation.

        Raises:
            PlanError: if the profile was never computed.
        """
        try:
            return self._profiles[node_id]
        except KeyError:
            raise PlanError(f"node {node_id} has no profile computed") from None

    # ------------------------------------------------------------------
    # Third-party coordinators (footnote 3 extension)
    # ------------------------------------------------------------------

    def set_coordinator(self, node_id: int, server: str) -> None:
        """Mark a join as executed by a third-party coordinator.

        The coordinator is a server holding neither operand: both operand
        results are shipped to it and it computes the join (the paper's
        footnote 3).  The node's executor must name the coordinator as
        master with no slave.
        """
        node = self._plan.node(node_id)
        if not isinstance(node, JoinNode):
            raise PlanError(f"node n{node_id} is not a join; coordinators apply to joins")
        self._coordinators[node_id] = server

    def coordinator(self, node_id: int) -> Optional[str]:
        """The third-party coordinator of a join, or ``None``."""
        return self._coordinators.get(node_id)

    def uses_third_party(self) -> bool:
        """Whether any node is executed by a third-party coordinator."""
        return bool(self._coordinators)

    # ------------------------------------------------------------------
    # Materialized subtrees (failover reuse)
    # ------------------------------------------------------------------

    def set_materialized(self, node_id: int, server: str) -> None:
        """Mark a node's result as already available at ``server``.

        Used by failover re-planning: a subtree completed by an earlier
        execution attempt need not re-execute — its result sits at the
        recorded server, no flow happens at or below the node, and the
        node's executor must be ``[server, NULL]``.
        """
        self._plan.node(node_id)
        self._materialized[node_id] = server

    def materialized_server(self, node_id: int) -> Optional[str]:
        """Where a materialized node's result sits, or ``None``."""
        return self._materialized.get(node_id)

    def is_materialized(self, node_id: int) -> bool:
        """Whether the node's result is reused rather than computed."""
        return node_id in self._materialized

    def materialized_nodes(self) -> Tuple[int, ...]:
        """Materialized node ids, sorted."""
        return tuple(sorted(self._materialized))

    def servers_used(self) -> Tuple[str, ...]:
        """Every server the assignment involves, sorted.

        Masters and slaves of live nodes, coordinators, and the holders
        of materialized subtree results; nodes below a materialized root
        contribute nothing (they never execute).
        """
        skipped = self.skipped_node_ids()
        names = set()
        for node in self._plan:
            node_id = node.node_id
            if node_id in skipped:
                continue
            if node_id in self._materialized:
                names.add(self._materialized[node_id])
                continue
            executor = self._executors.get(node_id)
            if executor is not None:
                names.add(executor.master)
                if executor.slave is not None:
                    names.add(executor.slave)
            coordinator = self._coordinators.get(node_id)
            if coordinator is not None:
                names.add(coordinator)
        return tuple(sorted(names))

    def skipped_node_ids(self) -> frozenset:
        """Ids of nodes strictly below a materialized root.

        These nodes are never executed, carry no executor, and entail
        no flow — their work happened in a previous execution attempt.
        """
        if not self._materialized:
            return frozenset()
        skipped = set()

        def collect(node: PlanNode) -> None:
            for child in node.children():
                skipped.add(child.node_id)
                collect(child)

        for node_id in self._materialized:
            collect(self._plan.node(node_id))
        return frozenset(skipped)

    # ------------------------------------------------------------------
    # Structural validation (Definition 4.1)
    # ------------------------------------------------------------------

    def validate_structure(self) -> None:
        """Check the three structural clauses of Definition 4.1.

        Raises:
            PlanError: on any violation or on an incomplete assignment.
        """
        skipped = self.skipped_node_ids()
        if not self.is_complete():
            missing = [
                n.node_id
                for n in self._plan
                if n.node_id not in self._executors and n.node_id not in skipped
            ]
            raise PlanError(f"assignment is incomplete; unassigned nodes: {missing}")
        for node in self._plan:
            if node.node_id in skipped:
                continue
            executor = self._executors[node.node_id]
            if node.node_id in self._materialized:
                server = self._materialized[node.node_id]
                if executor.master != server or executor.slave is not None:
                    raise PlanError(
                        f"materialized node n{node.node_id} must be assigned "
                        f"[{server}, NULL], got {executor}"
                    )
                continue
            if isinstance(node, LeafNode):
                if node.server is None:
                    raise PlanError(f"leaf {node.label()} has no storing server")
                if executor.master != node.server or executor.slave is not None:
                    raise PlanError(
                        f"leaf {node.label()} must be assigned [{node.server}, NULL], "
                        f"got {executor}"
                    )
            elif isinstance(node, UnaryNode):
                child_master = self.master(node.left.node_id)  # type: ignore[union-attr]
                if executor.master != child_master or executor.slave is not None:
                    raise PlanError(
                        f"unary node n{node.node_id} must run at its operand's "
                        f"server [{child_master}, NULL], got {executor}"
                    )
            elif isinstance(node, JoinNode):
                left_master = self.master(node.left.node_id)  # type: ignore[union-attr]
                right_master = self.master(node.right.node_id)  # type: ignore[union-attr]
                operands = {left_master, right_master}
                coordinator = self._coordinators.get(node.node_id)
                if coordinator is not None:
                    if executor.master != coordinator or executor.slave is not None:
                        raise PlanError(
                            f"join n{node.node_id} with coordinator {coordinator} "
                            f"must be assigned [{coordinator}, NULL], got {executor}"
                        )
                    if coordinator in operands:
                        raise PlanError(
                            f"join n{node.node_id}: coordinator {coordinator} holds "
                            "an operand; use a plain executor instead"
                        )
                    continue
                if executor.master not in operands:
                    raise PlanError(
                        f"join n{node.node_id} master {executor.master} is neither "
                        f"operand server ({sorted(operands)})"
                    )
                if executor.slave is not None and executor.slave not in operands:
                    raise PlanError(
                        f"join n{node.node_id} slave {executor.slave} is neither "
                        f"operand server ({sorted(operands)})"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[PlanNode, Executor]]:
        """(node, executor) pairs in post-order (skipping the unexecuted
        interiors of materialized subtrees)."""
        skipped = self.skipped_node_ids()
        for node in self._plan:
            if node.node_id in skipped:
                continue
            yield node, self.executor(node.node_id)

    def result_server(self) -> str:
        """Server holding the final query result (root master)."""
        return self.master(self._plan.root.node_id)

    def describe(self) -> str:
        """One line per node: ``n<id> <label>: [master, slave]``."""
        lines = []
        for node, executor in self.items():
            lines.append(f"n{node.node_id} {node.label()}: {executor}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Assignment({len(self._executors)}/{len(self._plan)} nodes)"
