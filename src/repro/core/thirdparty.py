"""Third-party execution (the extension of footnote 3).

The paper notes that a join with no safe assignment among its operand
servers may still execute safely with the help of a *third party*,
"acting either as a proxy for one of the two operands or as a
coordinator for them", and omits the algorithm for space reasons.  This
module supplies both facets:

* :class:`ThirdPartyPlanner` — a :class:`~repro.core.planner.SafePlanner`
  that, whenever a join admits no ordinary candidate, tries each
  declared third-party server as a **coordinator**: both operands are
  shipped to it (requiring ``CanView`` of both operand profiles) and it
  computes the join, becoming the holder of the result and a candidate
  for the joins above.  Plans the base algorithm rejects can thus become
  feasible; plans it accepts are planned identically (the fallback never
  fires when ordinary candidates exist).

* :func:`proxy_options` — an analysis of the **proxy** facet: a third
  party standing in for one operand's server.  The proxied operand is
  shipped to the proxy, and the join then executes between the proxy and
  the other operand's server in any of the four Figure 5 modes with the
  proxy substituted.  The function enumerates the safe arrangements with
  their full flow lists; it is used by the third-party benchmarks and by
  callers wanting to rescue an infeasible join without re-planning.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.algebra.joins import JoinPath
from repro.algebra.tree import JoinNode, PlanNode
from repro.core.access import can_view
from repro.core.assignment import Assignment, Executor
from repro.core.authorization import Policy
from repro.core.candidates import FROM_LEAF, MODE_THIRD_PARTY, Candidate
from repro.core.flows import Flow, join_executions
from repro.core.planner import NodeDecision, PlannerTrace, SafePlanner
from repro.core.profile import RelationProfile
from repro.exceptions import PlanError


class ThirdPartyPlanner(SafePlanner):
    """Safe planner with third-party coordinator fallback.

    Args:
        policy: the authorization policy.
        third_parties: servers (holding none of the involved relations is
            not required but is the typical case) that may be asked to
            coordinate joins.  Tried in the given order; order therefore
            determines which coordinator a rescued join gets.
        excluded_servers: servers barred from every executor role,
            including coordination (see
            :class:`~repro.core.planner.SafePlanner`).
        pinned: materialized subtree roots (see
            :class:`~repro.core.planner.SafePlanner`).
    """

    def __init__(
        self,
        policy: Policy,
        third_parties: Sequence[str],
        excluded_servers=(),
        pinned=None,
        obs=None,
    ) -> None:
        super().__init__(policy, excluded_servers=excluded_servers, pinned=pinned, obs=obs)
        self._third_parties = tuple(third_parties)

    @property
    def third_parties(self) -> Tuple[str, ...]:
        """The declared third-party servers, in trial order."""
        return self._third_parties

    def _visit_join(self, node, assignment, trace, decision) -> None:  # type: ignore[override]
        super()._visit_join(node, assignment, trace, decision)
        if not decision.candidates.is_empty():
            return
        left_profile = assignment.profile(node.left.node_id)
        right_profile = assignment.profile(node.right.node_id)
        for server in self._third_parties:
            if server in self.excluded_servers:
                continue
            if can_view(self.policy, left_profile, server) and can_view(
                self.policy, right_profile, server
            ):
                decision.candidates.add(
                    Candidate(server, FROM_LEAF, 1, MODE_THIRD_PARTY)
                )

    def _assign_ex(self, node, from_parent, assignment, trace) -> None:  # type: ignore[override]
        decision = trace.decision(node.node_id)
        if from_parent is not None:
            chosen = decision.candidates.search(from_parent)
        else:
            chosen = decision.candidates.get_first()
        if chosen is None or chosen.mode != MODE_THIRD_PARTY:
            super()._assign_ex(node, from_parent, assignment, trace)
            return
        if not isinstance(node, JoinNode):  # pragma: no cover - only joins get the mode
            raise PlanError("third-party candidates only apply to join nodes")
        trace.assign_order.append((node.node_id, from_parent))
        executor = Executor(chosen.server, None)
        decision.executor = executor
        assignment.set_executor(node.node_id, executor)
        assignment.set_coordinator(node.node_id, chosen.server)
        self._assign_ex(node.left, None, assignment, trace)
        self._assign_ex(node.right, None, assignment, trace)


class ProxyOption:
    """One safe proxy arrangement for a single join.

    Attributes:
        third_party: the proxy server.
        proxied_side: ``"left"`` or ``"right"`` — which operand is handed
            to the proxy.
        mode_tag: the Figure 5 mode of the proxy-substituted join.
        master: server computing the join (holds the result).
        flows: every flow of the arrangement, shipment to the proxy first.
    """

    __slots__ = ("third_party", "proxied_side", "mode_tag", "master", "flows")

    def __init__(
        self,
        third_party: str,
        proxied_side: str,
        mode_tag: str,
        master: str,
        flows: Tuple[Flow, ...],
    ) -> None:
        self.third_party = third_party
        self.proxied_side = proxied_side
        self.mode_tag = mode_tag
        self.master = master
        self.flows = flows

    def __repr__(self) -> str:
        return (
            f"ProxyOption({self.third_party} proxies {self.proxied_side}, "
            f"{self.mode_tag}, master={self.master})"
        )


def proxy_options(
    policy: Policy,
    left_profile: RelationProfile,
    right_profile: RelationProfile,
    left_server: str,
    right_server: str,
    conditions: JoinPath,
    third_parties: Sequence[str],
) -> List[ProxyOption]:
    """Enumerate the safe proxy arrangements for one join.

    For each third party ``T`` and each side, ``T`` must be authorized to
    view the proxied operand (the shipment to the proxy), and every flow
    of the proxy-substituted Figure 5 mode must be authorized for its
    receiver.  Arrangements where the proxy equals the proxied operand's
    server are skipped (that is no proxy at all).
    """
    options: List[ProxyOption] = []
    sides = (
        ("left", left_profile, left_server, right_profile, right_server),
        ("right", right_profile, right_server, left_profile, left_server),
    )
    for third_party in third_parties:
        for side, proxied, proxied_server, other, other_server in sides:
            if third_party in (proxied_server, other_server):
                continue
            if not can_view(policy, proxied, third_party):
                continue
            shipment = Flow(
                proxied_server, third_party, proxied, f"{side} operand -> proxy"
            )
            if side == "left":
                executions = join_executions(
                    proxied, other, third_party, other_server, conditions
                )
            else:
                executions = join_executions(
                    other, proxied, other_server, third_party, conditions
                )
            for execution in executions:
                safe = all(
                    can_view(policy, profile, receiver)
                    for receiver, profile in execution.required_views()
                )
                if not safe:
                    continue
                options.append(
                    ProxyOption(
                        third_party,
                        side,
                        execution.mode.tag,
                        execution.master,
                        (shipment,) + execution.flows,
                    )
                )
    return options
