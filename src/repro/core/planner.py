"""The safe query planning algorithm (Section 5, Figure 6).

The algorithm solves Problem 4.1 — decide whether a query tree plan is
feasible under a policy and, if so, produce a safe executor assignment —
with two traversals:

* **Find_candidates** (post-order): computes every node's profile
  (Figure 4) and its candidate masters.  A leaf's only candidate is its
  storing server; a unary node inherits its child's candidates; a join
  node admits, from each child's candidate list, the servers that can
  master the join either as a semi-join (preferred — the opposite child
  must first yield a slave able to view the join-attribute projection)
  or as a regular join.  Admitted candidates carry their child's counter
  incremented by one; if no candidate survives, the plan is infeasible
  and the failing node is reported (the paper's ``exit(n)``).

* **Assign_ex** (pre-order): commits executors top-down.  At the root
  the highest-counter candidate wins; the chosen master is pushed to the
  child it came from and the recorded slave (if any) to the other child,
  recursively.

Two aspects deserve a note (both documented in DESIGN.md):

* The published pseudocode's indentation would make the regular-join
  check reachable only when a slave exists, contradicting the paper's
  own Figure 7 trace (node ``n_2``); we implement the trace-consistent
  reading: try semi-join admission first, fall back to the regular-join
  check.
* ``Assign_ex`` as published pairs any chosen master with the recorded
  slave even if that master was admitted only via the regular-join
  check, silently changing the exposed views.  Our candidates remember
  their admission mode, and only semi-admitted masters get the slave.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.algebra.tree import (
    PROJECT,
    JoinNode,
    LeafNode,
    PlanNode,
    QueryTreePlan,
    UnaryNode,
)
from repro.core.access import can_view
from repro.core.assignment import Assignment, Executor
from repro.core.authorization import Policy
from repro.core.candidates import (
    FROM_LEAF,
    FROM_LEFT,
    FROM_RIGHT,
    MODE_LEAF,
    MODE_PINNED,
    MODE_REGULAR,
    MODE_SEMI,
    MODE_UNARY,
    Candidate,
    CandidateList,
)
from repro.core.profile import RelationProfile
from repro.exceptions import InfeasiblePlanError, PlanError


class NodeDecision:
    """Planner state recorded for one node (one Figure 7 table row)."""

    __slots__ = ("node_id", "candidates", "left_slave", "right_slave", "executor")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.candidates = CandidateList()
        self.left_slave: Optional[Candidate] = None
        self.right_slave: Optional[Candidate] = None
        self.executor: Optional[Executor] = None


class PlannerTrace:
    """Complete record of a planning run, for Figure 7 style reporting.

    Attributes:
        find_order: node ids in ``Find_candidates`` visit order.
        assign_order: ``(node_id, pushed_server)`` pairs in ``Assign_ex``
            call order (``pushed_server`` is ``None`` at the root and
            where a NULL slave was pushed).
        decisions: per-node :class:`NodeDecision` records.
    """

    def __init__(self) -> None:
        self.find_order: List[int] = []
        self.assign_order: List[Tuple[int, Optional[str]]] = []
        self.decisions: Dict[int, NodeDecision] = {}

    def decision(self, node_id: int) -> NodeDecision:
        """The decision record for a node (created on first access)."""
        if node_id not in self.decisions:
            self.decisions[node_id] = NodeDecision(node_id)
        return self.decisions[node_id]


class SafePlanner:
    """Figure 6's algorithm bound to one policy.

    Args:
        policy: the authorization policy (ideally already closed under
            the chase, see :func:`repro.core.closure.close_policy`).
        excluded_servers: servers that may not appear in any executor —
            the failover layer passes the currently-crashed servers here,
            so re-planning only considers surviving assignments.  The
            candidate space shrinks but safety checks are unchanged: a
            restricted plan is always also a plan of the full problem.
        pinned: ``node_id -> server`` for subtrees whose results already
            sit at a surviving server (completed by an earlier execution
            attempt).  A pinned node plans as a materialized source: its
            only candidate is the given server, nothing below it is
            planned, and no flow is entailed at or below it.
        obs: optional :class:`~repro.obs.trace.TraceContext`.  When set,
            ``plan`` opens spans around the traversals and every join's
            candidate enumeration, and the CanView entry point is wrapped
            to count calls and memo-cache hits/misses.  When ``None``
            (the default) the hot path is byte-for-byte the uninstrumented
            algorithm: the traced variants of ``plan``,
            ``_find_candidates`` and ``_admit_master`` are bound onto the
            *instance* only when a context is installed, so the class
            bodies carry no observability checks at all (the ABL12 bench
            gates this at <5% overhead).
        batch_canview: whether each join's candidate enumeration should
            warm the CanView kernel with one
            :meth:`~repro.core.authorization.Policy.can_view_batch` call
            per distinct candidate server (all six views a join consults
            answered in one kernel pass) before running the admission
            loops on memo hits.  Admitted candidates, slaves and
            assignments are **identical** either way — batching only
            changes how answers are computed (a property the Hypothesis
            differential suite asserts).  Default ``None`` resolves to
            batched when untraced and scalar when traced, because the
            warm-up changes *when* misses happen and would skew the
            ``repro_canview_*`` hit/miss counters; it also requires a
            closed :class:`Policy` (duck-typed ``permits`` policies have
            no batch kernel and always probe scalar).
    """

    def __init__(
        self,
        policy: Policy,
        excluded_servers: Iterable[str] = (),
        pinned: Optional[Mapping[int, str]] = None,
        obs=None,
        batch_canview: Optional[bool] = None,
    ) -> None:
        self._policy = policy
        self._obs = obs
        # Bind the CanView entry point once: the planner issues thousands
        # of probes per run, and re-dispatching on the policy's type for
        # each (as the module-level ``can_view`` must) is pure overhead.
        permits = getattr(policy, "permits", None)
        if permits is not None:
            self._can_view = lambda profile, server: bool(permits(profile, server))
        elif isinstance(policy, Policy):
            self._can_view = policy.can_view
        else:
            self._can_view = lambda profile, server: can_view(policy, profile, server)
        if obs is not None:
            self._can_view = self._traced_can_view(self._can_view, obs)
            # Route the three hot methods through their traced variants.
            # Instance attributes shadow the class methods, so the
            # untraced path never evaluates an observability guard.
            self.plan = self._plan_traced  # type: ignore[method-assign]
            self._find_candidates = self._find_candidates_traced  # type: ignore[method-assign]
            self._admit_master = self._admit_master_traced  # type: ignore[method-assign]
        if batch_canview is None:
            batch_canview = obs is None
        self._batch_canview = batch_canview and isinstance(policy, Policy)
        self._excluded = frozenset(excluded_servers)
        self._pinned = dict(pinned or {})
        for node_id, server in self._pinned.items():
            if server in self._excluded:
                raise PlanError(
                    f"pinned node n{node_id} sits at excluded server {server!r}"
                )

    def _traced_can_view(self, inner, obs):
        """Wrap the bound CanView callable with call/hit/miss counting.

        Only built when a trace context is installed, so the untraced
        planner keeps the raw callable.  Hits are derived from the
        policy's cold-path miss counter (bumped in ``_can_view_uncached``
        only), which keeps the memoized hit path free of bookkeeping.
        """
        policy = self._policy if isinstance(self._policy, Policy) else None

        def counted(profile, server):
            if policy is None:
                result = inner(profile, server)
                obs.count("repro_canview_calls_total", server=server)
                return result
            before = policy.uncached_can_view_calls
            result = inner(profile, server)
            if policy.uncached_can_view_calls == before:
                obs.count("repro_canview_cache_hits_total")
            else:
                obs.count("repro_canview_cache_misses_total")
            obs.count("repro_canview_calls_total", server=server)
            return result

        return counted

    @property
    def policy(self) -> Policy:
        """The policy the planner enforces."""
        return self._policy

    @property
    def excluded_servers(self) -> frozenset:
        """Servers barred from every executor role."""
        return self._excluded

    @property
    def pinned(self) -> Dict[int, str]:
        """Materialized subtree roots: node id -> holding server."""
        return dict(self._pinned)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def plan(self, tree: QueryTreePlan) -> Tuple[Assignment, PlannerTrace]:
        """Solve Problem 4.1 for ``tree``.

        Returns:
            ``(assignment, trace)`` — a complete safe executor assignment
            and the full planning trace.

        Raises:
            InfeasiblePlanError: if some node admits no candidate; the
                error carries the failing node's id (the paper's
                ``exit(n)``).
        """
        trace = PlannerTrace()
        assignment = Assignment(tree)
        self._find_candidates(tree.root, assignment, trace)
        self._assign_ex(tree.root, None, assignment, trace)
        return assignment, trace

    def _plan_traced(self, tree: QueryTreePlan) -> Tuple[Assignment, PlannerTrace]:
        """``plan`` with spans; bound over it when a context is set."""
        trace = PlannerTrace()
        assignment = Assignment(tree)
        with self._obs.span("plan", "planner") as span:
            with self._obs.span("find_candidates", "planner"):
                self._find_candidates(tree.root, assignment, trace)
            with self._obs.span("assign_ex", "planner"):
                self._assign_ex(tree.root, None, assignment, trace)
            span.attrs["root_master"] = assignment.executor(tree.root.node_id).master
        return assignment, trace

    def is_feasible(self, tree: QueryTreePlan) -> bool:
        """Whether a safe assignment exists (Definition 4.3)."""
        try:
            self.plan(tree)
        except InfeasiblePlanError:
            return False
        return True

    # ------------------------------------------------------------------
    # First traversal: Find_candidates (post-order)
    # ------------------------------------------------------------------

    def _find_candidates(
        self, node: PlanNode, assignment: Assignment, trace: PlannerTrace
    ) -> None:
        if node.node_id in self._pinned:
            # Materialized source: fill the subtree's profiles (parents
            # need this node's profile for their view checks) but plan
            # nothing below — the result already exists at the server.
            self._fill_profiles(node, assignment)
            trace.find_order.append(node.node_id)
            decision = trace.decision(node.node_id)
            decision.candidates.add(
                Candidate(self._pinned[node.node_id], FROM_LEAF, 0, MODE_PINNED)
            )
            return
        for child in node.children():
            self._find_candidates(child, assignment, trace)
        trace.find_order.append(node.node_id)
        decision = trace.decision(node.node_id)
        if isinstance(node, LeafNode):
            self._visit_leaf(node, assignment, decision)
        elif isinstance(node, UnaryNode):
            self._visit_unary(node, assignment, trace, decision)
        elif isinstance(node, JoinNode):
            self._visit_join(node, assignment, trace, decision)
        else:  # pragma: no cover - node kinds are closed
            raise PlanError(f"unknown node kind: {type(node).__name__}")
        if decision.candidates.is_empty():
            raise self._infeasible(node)

    def _find_candidates_traced(
        self, node: PlanNode, assignment: Assignment, trace: PlannerTrace
    ) -> None:
        """``_find_candidates`` with a span around each join's candidate
        enumeration; bound over it when a context is set."""
        if node.node_id in self._pinned:
            self._fill_profiles(node, assignment)
            trace.find_order.append(node.node_id)
            decision = trace.decision(node.node_id)
            decision.candidates.add(
                Candidate(self._pinned[node.node_id], FROM_LEAF, 0, MODE_PINNED)
            )
            return
        for child in node.children():
            self._find_candidates(child, assignment, trace)
        trace.find_order.append(node.node_id)
        decision = trace.decision(node.node_id)
        if isinstance(node, LeafNode):
            self._visit_leaf(node, assignment, decision)
        elif isinstance(node, UnaryNode):
            self._visit_unary(node, assignment, trace, decision)
        elif isinstance(node, JoinNode):
            with self._obs.span(
                "enumerate_candidates", "planner", node=f"n{node.node_id}"
            ) as span:
                self._visit_join(node, assignment, trace, decision)
                span.attrs["admitted"] = len(decision.candidates)
        else:  # pragma: no cover - node kinds are closed
            raise PlanError(f"unknown node kind: {type(node).__name__}")
        if decision.candidates.is_empty():
            raise self._infeasible(node)

    def _infeasible(self, node: PlanNode) -> InfeasiblePlanError:
        suffix = (
            f" (excluded servers: {sorted(self._excluded)})"
            if self._excluded
            else ""
        )
        return InfeasiblePlanError(
            f"no safe assignment exists: node n{node.node_id} "
            f"({node.label()}) admits no candidate executor{suffix}",
            node_id=node.node_id,
        )

    def _fill_profiles(self, node: PlanNode, assignment: Assignment) -> None:
        """Post-order profile computation without candidate search."""
        for child in node.children():
            self._fill_profiles(child, assignment)
        assignment.set_profile(node.node_id, self._node_profile(node, assignment))

    def _node_profile(
        self, node: PlanNode, assignment: Assignment
    ) -> RelationProfile:
        """The Figure 4 profile of one node, children already profiled."""
        if isinstance(node, LeafNode):
            return RelationProfile.of_base_relation(node.relation)
        if isinstance(node, UnaryNode):
            child_profile = assignment.profile(node.left.node_id)
            if node.operator == PROJECT:
                return child_profile.project(node.projection_attributes)
            return child_profile.select(node.predicate.attributes)
        if isinstance(node, JoinNode):
            return assignment.profile(node.left.node_id).join(
                assignment.profile(node.right.node_id), node.path
            )
        raise PlanError(f"unknown node kind: {type(node).__name__}")

    def _visit_leaf(
        self, node: LeafNode, assignment: Assignment, decision: NodeDecision
    ) -> None:
        if node.server is None:
            raise PlanError(
                f"base relation {node.relation.name!r} is not placed at any server"
            )
        assignment.set_profile(node.node_id, RelationProfile.of_base_relation(node.relation))
        if node.server in self._excluded:
            return
        decision.candidates.add(Candidate(node.server, FROM_LEAF, 0, MODE_LEAF))

    def _visit_unary(
        self,
        node: UnaryNode,
        assignment: Assignment,
        trace: PlannerTrace,
        decision: NodeDecision,
    ) -> None:
        child = node.left
        child_profile = assignment.profile(child.node_id)
        if node.operator == PROJECT:
            profile = child_profile.project(node.projection_attributes)
        else:
            profile = child_profile.select(node.predicate.attributes)
        assignment.set_profile(node.node_id, profile)
        for candidate in trace.decision(child.node_id).candidates:
            decision.candidates.add(
                candidate.propagated(FROM_LEFT, candidate.count, MODE_UNARY)
            )

    def _visit_join(
        self,
        node: JoinNode,
        assignment: Assignment,
        trace: PlannerTrace,
        decision: NodeDecision,
    ) -> None:
        left, right = node.left, node.right
        left_profile = assignment.profile(left.node_id)
        right_profile = assignment.profile(right.node_id)
        profile = left_profile.join(right_profile, node.path)
        assignment.set_profile(node.node_id, profile)

        j_left = node.path.attributes & left_profile.attributes
        j_right = node.path.attributes & right_profile.attributes

        # Views exposed by each Figure 5 mode (see repro.core.flows).
        right_slave_view = left_profile.project(j_left)
        left_slave_view = right_profile.project(j_right)
        right_master_view = right_profile.project(j_right).join(left_profile, node.path)
        left_master_view = left_profile.project(j_left).join(right_profile, node.path)
        right_full_view = left_profile
        left_full_view = right_profile

        left_candidates = trace.decision(left.node_id).candidates
        right_candidates = trace.decision(right.node_id).candidates

        if self._batch_canview:
            # Warm the CanView kernel: one batched call per distinct
            # candidate server answers all six views this join consults
            # (both slave projections, both semi-join master views, both
            # full operand profiles), so the admission loops below run
            # entirely on memo hits.  Extra answers are only ever
            # warm-up — the loops' logic and outcomes are unchanged.
            views = [
                left_slave_view,
                right_slave_view,
                right_master_view,
                left_master_view,
                right_full_view,
                left_full_view,
            ]
            excluded = self._excluded
            can_view_batch = self._policy.can_view_batch
            warmed = set()
            for candidates in (left_candidates, right_candidates):
                for server in candidates.distinct_servers():
                    if server not in excluded and server not in warmed:
                        warmed.add(server)
                        can_view_batch(views, server)

        # --- cases [S_r, NULL] and [S_r, S_l]: masters from the right ---
        decision.left_slave = self._first_slave(left_candidates, left_slave_view)
        for candidate in right_candidates.in_count_order():
            self._admit_master(
                decision,
                candidate,
                FROM_RIGHT,
                slave_found=decision.left_slave is not None,
                master_view=right_master_view,
                full_view=right_full_view,
            )

        # --- cases [S_l, NULL] and [S_l, S_r]: masters from the left ---
        decision.right_slave = self._first_slave(right_candidates, right_slave_view)
        for candidate in left_candidates.in_count_order():
            self._admit_master(
                decision,
                candidate,
                FROM_LEFT,
                slave_found=decision.right_slave is not None,
                master_view=left_master_view,
                full_view=left_full_view,
            )

    def _first_slave(
        self, candidates: CandidateList, slave_view: RelationProfile
    ) -> Optional[Candidate]:
        """First candidate (by decreasing counter) able to act as slave —
        one slave is enough, slaves are not propagated upwards."""
        for candidate in candidates.in_count_order():
            if candidate.server in self._excluded:
                continue
            if self._can_view(slave_view, candidate.server):
                return candidate
        return None

    def _admit_master(
        self,
        decision: NodeDecision,
        candidate: Candidate,
        from_child: str,
        slave_found: bool,
        master_view: RelationProfile,
        full_view: RelationProfile,
    ) -> None:
        """Admit one child candidate as a join master, if authorized.

        Semi-join admission is attempted first (the paper favours
        semi-joins); the regular-join check is the fallback.
        """
        if candidate.server in self._excluded:
            return
        if slave_found and self._can_view(master_view, candidate.server):
            mode = MODE_SEMI
        elif self._can_view(full_view, candidate.server):
            mode = MODE_REGULAR
        else:
            return
        decision.candidates.add(
            candidate.propagated(from_child, candidate.count + 1, mode)
        )

    def _admit_master_traced(
        self,
        decision: NodeDecision,
        candidate: Candidate,
        from_child: str,
        slave_found: bool,
        master_view: RelationProfile,
        full_view: RelationProfile,
    ) -> None:
        """``_admit_master`` with generated/admitted counters; bound over
        it when a context is set."""
        self._obs.count("repro_candidates_generated_total")
        if candidate.server in self._excluded:
            return
        if slave_found and self._can_view(master_view, candidate.server):
            mode = MODE_SEMI
        elif self._can_view(full_view, candidate.server):
            mode = MODE_REGULAR
        else:
            return
        self._obs.count("repro_candidates_admitted_total", mode=mode)
        decision.candidates.add(
            candidate.propagated(from_child, candidate.count + 1, mode)
        )

    # ------------------------------------------------------------------
    # Second traversal: Assign_ex (pre-order)
    # ------------------------------------------------------------------

    def _assign_ex(
        self,
        node: PlanNode,
        from_parent: Optional[str],
        assignment: Assignment,
        trace: PlannerTrace,
    ) -> None:
        trace.assign_order.append((node.node_id, from_parent))
        decision = trace.decision(node.node_id)
        if from_parent is not None:
            chosen = decision.candidates.search(from_parent)
            if chosen is None:
                raise PlanError(
                    f"server {from_parent!r} pushed down to node n{node.node_id} "
                    "is not among its candidates (planner invariant violated)"
                )
        else:
            chosen = decision.candidates.get_first()
            if chosen is None:  # pragma: no cover - Find_candidates guarantees one
                raise PlanError(f"node n{node.node_id} has no candidates")

        if chosen.mode == MODE_PINNED:
            # Materialized source: the result already sits at the server;
            # nothing below is assigned and no flow happens here.
            executor = Executor(chosen.server, None)
            decision.executor = executor
            assignment.set_executor(node.node_id, executor)
            assignment.set_materialized(node.node_id, chosen.server)
            return

        slave_candidate: Optional[Candidate] = None
        if isinstance(node, JoinNode) and chosen.mode == MODE_SEMI:
            slave_candidate = (
                decision.right_slave if chosen.from_child == FROM_LEFT else decision.left_slave
            )
        # What gets pushed down the slave-side child: the slave server (so
        # that the child's result materializes where the semi-join expects
        # it), or NULL for regular joins.
        push_to_slave_side = slave_candidate.server if slave_candidate is not None else None
        slave_server = push_to_slave_side
        if slave_server == chosen.server:
            # Degenerate semi-join: the same server is both master and
            # slave, so it holds both operands and every flow is local.
            # The executor records a plain local join, but the chosen
            # server is still pushed down both children so the operands
            # really do materialize there.
            slave_server = None
        executor = Executor(chosen.server, slave_server)
        decision.executor = executor
        assignment.set_executor(node.node_id, executor)

        if isinstance(node, JoinNode):
            if chosen.from_child == FROM_LEFT:
                self._assign_ex(node.left, executor.master, assignment, trace)
                self._assign_ex(node.right, push_to_slave_side, assignment, trace)
            else:
                self._assign_ex(node.left, push_to_slave_side, assignment, trace)
                self._assign_ex(node.right, executor.master, assignment, trace)
        elif isinstance(node, UnaryNode):
            self._assign_ex(node.left, executor.master, assignment, trace)


def plan_safely(policy: Policy, tree: QueryTreePlan) -> Assignment:
    """Convenience wrapper: plan ``tree`` under ``policy``, return only
    the assignment.

    Raises:
        InfeasiblePlanError: when the plan is not feasible.
    """
    assignment, _ = SafePlanner(policy).plan(tree)
    return assignment
