"""Relation profiles (Definition 3.2) and their composition (Figure 4).

A relation profile is the triple :math:`[R^\\pi, R^\\bowtie, R^\\sigma]`
describing the information content of a (base or computed) relation:

* :math:`R^\\pi` — the attributes of the relation (its schema);
* :math:`R^\\bowtie` — the join path used in its construction;
* :math:`R^\\sigma` — the attributes involved in selection conditions in
  its construction.

The three relational operators compose profiles per Figure 4:

========================  =====================  ==================================  ============================
Operation                 :math:`R^\\pi`          :math:`R^\\bowtie`                   :math:`R^\\sigma`
========================  =====================  ==================================  ============================
:math:`\\pi_X(R_l)`        :math:`X`              :math:`R_l^\\bowtie`                 :math:`R_l^\\sigma`
:math:`\\sigma_X(R_l)`     :math:`R_l^\\pi`        :math:`R_l^\\bowtie`                 :math:`R_l^\\sigma \\cup X`
:math:`R_l \\bowtie_j R_r`  :math:`R_l^\\pi \\cup R_r^\\pi`  :math:`R_l^\\bowtie \\cup R_r^\\bowtie \\cup j`  :math:`R_l^\\sigma \\cup R_r^\\sigma`
========================  =====================  ==================================  ============================

Profiles are immutable value objects; composition returns new profiles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Optional

from repro.algebra.attributes import AttributeSet, attribute_set, format_attribute_set
from repro.algebra.joins import JoinPath
from repro.algebra.schema import RelationSchema
from repro.algebra.universe import AttrSet
from repro.exceptions import ExpressionError

#: Module-level composition observer, ``None`` when nobody is watching.
#: Each Figure 4 composition calls ``_observer(op)`` with the operator
#: name — one ``is None`` test on the uninstrumented path.  Installed via
#: :func:`observed_compositions`; kept module-global (not per-profile) so
#: profiles stay slim immutable values.
_observer: Optional[Callable[[str], None]] = None


@contextmanager
def observed_compositions(callback: Callable[[str], None]):
    """Install ``callback`` as the profile-composition observer.

    The callback receives the operator name (``"project"``, ``"select"``
    or ``"join"``) for every profile composed while the context is
    active.  Observers do not nest: entering while one is installed
    replaces it, and exiting restores the previous one.
    """
    global _observer
    previous = _observer
    _observer = callback
    try:
        yield
    finally:
        _observer = previous


class RelationProfile:
    """The information-content profile :math:`[R^\\pi, R^\\bowtie, R^\\sigma]`.

    Args:
        attributes: the visible attributes :math:`R^\\pi`.
        join_path: the join path :math:`R^\\bowtie` of the construction;
            defaults to the empty path.
        selection_attributes: the selection attributes :math:`R^\\sigma`;
            defaults to the empty set.
    """

    __slots__ = ("_attributes", "_join_path", "_selection_attributes", "_exposed", "_hash")

    def __init__(
        self,
        attributes: Iterable[str],
        join_path: Optional[JoinPath] = None,
        selection_attributes: Iterable[str] = (),
    ) -> None:
        self._attributes = attribute_set(attributes)
        self._join_path = join_path if join_path is not None else JoinPath.empty()
        if not isinstance(self._join_path, JoinPath):
            raise ExpressionError("join_path must be a JoinPath")
        self._selection_attributes = attribute_set(selection_attributes)
        self._exposed: AttributeSet = None  # type: ignore[assignment]
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def of_base_relation(cls, relation: RelationSchema) -> "RelationProfile":
        """Profile of a stored base relation:
        :math:`[\\{A_1, ..., A_n\\}, \\emptyset, \\emptyset]`."""
        return cls(relation.attribute_set)

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> AttributeSet:
        """:math:`R^\\pi` — the visible attributes."""
        return self._attributes

    @property
    def join_path(self) -> JoinPath:
        """:math:`R^\\bowtie` — the construction join path."""
        return self._join_path

    @property
    def selection_attributes(self) -> AttributeSet:
        """:math:`R^\\sigma` — attributes used in selection conditions."""
        return self._selection_attributes

    @property
    def exposed_attributes(self) -> AttributeSet:
        """:math:`R^\\pi \\cup R^\\sigma` — everything an authorization's
        ``Attributes`` component must cover (Definition 3.3).  Cached:
        every ``CanView`` probe starts here."""
        if self._exposed is None:
            if not self._selection_attributes:
                self._exposed = self._attributes
            else:
                self._exposed = self._attributes | self._selection_attributes
        return self._exposed

    # ------------------------------------------------------------------
    # Composition (Figure 4)
    # ------------------------------------------------------------------

    def project(self, attributes: Iterable[str]) -> "RelationProfile":
        """Profile of :math:`\\pi_X(R)`.

        Raises:
            ExpressionError: if ``attributes`` is not a subset of
                :math:`R^\\pi` (a projection cannot invent attributes).
        """
        retained = attribute_set(attributes)
        missing = retained - self._attributes
        if missing:
            raise ExpressionError(
                f"cannot project on attributes outside the profile: {sorted(missing)}"
            )
        if not retained:
            raise ExpressionError("projection must retain at least one attribute")
        if isinstance(self._attributes, AttrSet) and not isinstance(retained, AttrSet):
            # ``retained ⊆ attributes`` was just checked, so intersecting
            # re-expresses the same set in the interned bitset form and
            # keeps masks flowing through projection chains.
            retained = self._attributes & retained
        if _observer is not None:
            _observer("project")
        return RelationProfile(retained, self._join_path, self._selection_attributes)

    def select(self, attributes: Iterable[str]) -> "RelationProfile":
        """Profile of :math:`\\sigma_X(R)` where ``X`` is the set of
        attributes appearing in the selection condition.

        Raises:
            ExpressionError: if the condition references attributes the
                relation does not carry.
        """
        condition_attributes = attribute_set(attributes)
        missing = condition_attributes - self._attributes
        if missing:
            raise ExpressionError(
                f"selection references attributes outside the profile: {sorted(missing)}"
            )
        if isinstance(self._attributes, AttrSet) and not isinstance(
            condition_attributes, AttrSet
        ):
            condition_attributes = self._attributes & condition_attributes
        if _observer is not None:
            _observer("select")
        return RelationProfile(
            self._attributes,
            self._join_path,
            self._selection_attributes | condition_attributes,
        )

    def join(self, other: "RelationProfile", conditions: JoinPath) -> "RelationProfile":
        """Profile of :math:`R_l \\bowtie_j R_r`.

        The result captures both operands and their association:
        attributes and selection attributes are unioned, and the join path
        is the union of the operand paths with the operation's own
        conditions ``j``.
        """
        if not isinstance(other, RelationProfile):
            raise ExpressionError("join operand must be a RelationProfile")
        if not isinstance(conditions, JoinPath) or conditions.is_empty():
            raise ExpressionError("join requires a non-empty JoinPath")
        if _observer is not None:
            _observer("join")
        return RelationProfile(
            self._attributes | other._attributes,
            self._join_path.union(other._join_path, conditions),
            self._selection_attributes | other._selection_attributes,
        )

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, RelationProfile):
            return NotImplemented
        return (
            self._join_path == other._join_path
            and self._attributes == other._attributes
            and self._selection_attributes == other._selection_attributes
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._attributes, self._join_path, self._selection_attributes)
            )
        return self._hash

    def __repr__(self) -> str:
        return (
            f"RelationProfile({format_attribute_set(self._attributes)}, "
            f"{self._join_path}, {format_attribute_set(self._selection_attributes)})"
        )

    def __str__(self) -> str:
        return (
            f"[{format_attribute_set(self._attributes)}, {self._join_path}, "
            f"{format_attribute_set(self._selection_attributes)}]"
        )
