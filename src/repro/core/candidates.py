"""Candidate bookkeeping for the safe planner (Figure 6).

``Find_candidates`` associates with every node a list of records
``[server, fromchild, counter]``: a server that could act as master for
the node's operation, the child subtree its copy of the data would come
from, and the number of joins in the subtree for which it is a
candidate.  The counter implements the paper's second cost principle —
*prefer the server involved in the most join operations* — and the list
is consumed in decreasing counter order (``GetFirst``).

Beyond the paper's record we keep one extra field, ``mode``: whether the
candidate was admitted by the semi-join master check or by the
regular-join check.  Figure 6's ``Assign_ex`` unconditionally pairs a
chosen master with the recorded slave, which would silently turn a
candidate verified only for a *regular* join into the master of a
*semi-join* — a different (unchecked) set of exposed views.  Recording
the admission mode preserves safety without changing the algorithm's
search behaviour; semi-join admission is attempted first, consistent
with the paper's stated preference for semi-joins.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.exceptions import PlanError

#: ``fromchild`` values.
FROM_LEFT = "left"
FROM_RIGHT = "right"
FROM_LEAF = "-"

#: Admission modes.
MODE_LEAF = "leaf"
MODE_UNARY = "unary"
MODE_SEMI = "semi"
MODE_REGULAR = "regular"
MODE_THIRD_PARTY = "third-party"
#: A node whose result is already materialized at a server (failover
#: re-planning reuses completed subtrees; no flow happens below it).
MODE_PINNED = "pinned"


class Candidate:
    """One candidate record ``[server, fromchild, counter]`` (+ mode)."""

    __slots__ = ("server", "from_child", "count", "mode")

    def __init__(self, server: str, from_child: str, count: int, mode: str) -> None:
        if from_child not in (FROM_LEFT, FROM_RIGHT, FROM_LEAF):
            raise PlanError(f"invalid fromchild: {from_child!r}")
        if mode not in (
            MODE_LEAF,
            MODE_UNARY,
            MODE_SEMI,
            MODE_REGULAR,
            MODE_THIRD_PARTY,
            MODE_PINNED,
        ):
            raise PlanError(f"invalid candidate mode: {mode!r}")
        if count < 0:
            raise PlanError("candidate counter cannot be negative")
        self.server = server
        self.from_child = from_child
        self.count = count
        self.mode = mode

    def propagated(self, from_child: str, count: int, mode: str) -> "Candidate":
        """A copy of this candidate as seen by the parent node."""
        return Candidate(self.server, from_child, count, mode)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Candidate):
            return NotImplemented
        return (
            self.server == other.server
            and self.from_child == other.from_child
            and self.count == other.count
            and self.mode == other.mode
        )

    def __hash__(self) -> int:
        return hash((self.server, self.from_child, self.count, self.mode))

    def __repr__(self) -> str:
        return f"[{self.server}, {self.from_child}, {self.count}]"


class CandidateList:
    """An ordered candidate list consumed in decreasing counter order.

    Insertion is stable within equal counters, so traversal order (and
    therefore planning) is fully deterministic.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Optional[List[Candidate]] = None) -> None:
        self._items: List[Candidate] = []
        for item in items or []:
            self.add(item)

    def add(self, candidate: Candidate) -> None:
        """Insert keeping the list sorted by decreasing counter (stable).

        Binary search for the insertion point: a new candidate lands
        *after* every existing candidate of equal or higher counter, so
        equal-counter candidates keep insertion order (stability is what
        makes planning fully deterministic).
        """
        items = self._items
        count = candidate.count
        lo, hi = 0, len(items)
        while lo < hi:
            mid = (lo + hi) // 2
            if items[mid].count >= count:
                lo = mid + 1
            else:
                hi = mid
        items.insert(lo, candidate)

    def get_first(self) -> Optional[Candidate]:
        """The paper's ``GetFirst``: highest-counter candidate, or None."""
        return self._items[0] if self._items else None

    def search(self, server: str) -> Optional[Candidate]:
        """The paper's ``Search``: first candidate of ``server``, or None."""
        for candidate in self._items:
            if candidate.server == server:
                return candidate
        return None

    def in_count_order(self) -> Iterator[Candidate]:
        """Candidates in decreasing counter order (the consumption order
        of ``Find_candidates``'s slave search and master loops)."""
        return iter(self._items)

    def servers(self) -> List[str]:
        """Candidate server names in list order (may repeat)."""
        return [c.server for c in self._items]

    def distinct_servers(self) -> List[str]:
        """Distinct candidate servers, in first-occurrence list order.

        The batched CanView path iterates these to warm the kernel with
        one batch probe per server; first-occurrence order keeps the
        warm-up (and therefore the policy's miss accounting)
        deterministic."""
        seen: List[str] = []
        for candidate in self._items:
            if candidate.server not in seen:
                seen.append(candidate.server)
        return seen

    def is_empty(self) -> bool:
        """Whether no candidate exists (the node is not executable)."""
        return not self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Candidate]:
        return iter(self._items)

    def __repr__(self) -> str:
        return "CandidateList(" + ", ".join(repr(c) for c in self._items) + ")"
