"""Authorized-view evaluation (Definition 3.3) — the paper's ``CanView``.

A server ``S`` is authorized to view a relation with profile
:math:`[R^\\pi, R^\\bowtie, R^\\sigma]` iff some authorization
``[A, J] -> S`` satisfies **both**:

1. :math:`R^\\pi \\cup R^\\sigma \\subseteq A` — the rule grants every
   attribute the relation exposes, including those consumed by selection
   conditions along its construction; and
2. :math:`R^\\bowtie = J` — the join paths are *equal*.

Condition 2 is deliberately not a containment: a relation built with an
extra join condition carries extra information (which of its tuples have
matches in the joined relation), so an authorization whose join path is
a subset of the profile's does **not** imply the release — this is the
Disease_list counterexample of Section 3.2.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.authorization import Authorization, Policy
from repro.core.profile import RelationProfile
from repro.obs.trace import MISSING


def authorization_covers(authorization: Authorization, profile: RelationProfile) -> bool:
    """Whether one rule covers one profile (both Definition 3.3 clauses)."""
    if not profile.exposed_attributes <= authorization.attributes:
        return False
    return profile.join_path == authorization.join_path


def can_view(policy, profile: RelationProfile, server: str) -> bool:
    """The paper's ``CanView(profile, S)``: whether ``server`` may be
    released a relation with ``profile`` under ``policy``.

    ``policy`` is normally a closed :class:`Policy`; any object exposing
    a ``permits(profile, server)`` method (e.g. the open-policy variant
    of :class:`repro.core.openpolicy.OpenPolicy`) is also accepted, so the
    planner and verifier work under both regimes.
    """
    permits = getattr(policy, "permits", None)
    if permits is not None:
        return bool(permits(profile, server))
    if isinstance(policy, Policy):
        # The memoized bitset kernel: exact-path index probe, superset
        # mask fast path, answer cached per profile signature.
        return policy.can_view(profile, server)
    return any(
        authorization_covers(rule, profile) for rule in policy.rules_for(server)
    )


def can_view_batch(
    policy,
    profiles: Iterable[RelationProfile],
    server: str,
    trace=None,
) -> List[bool]:
    """Batched ``CanView``: one answer per profile, in input order.

    Semantically identical to ``[can_view(policy, p, server) for p in
    profiles]`` — the Hypothesis differential suite asserts the
    equivalence at random batch sizes — but a closed :class:`Policy`
    answers the whole batch through
    :meth:`~repro.core.authorization.Policy.can_view_batch`: misses are
    grouped by join path, each distinct path costs one index probe, and
    the per-profile work is integer mask arithmetic.  Duck-typed
    ``permits`` policies and naive rule lists fall back to scalar checks
    per profile.

    With a :class:`~repro.obs.trace.TraceContext`, feeds the
    ``repro_canview_batch_calls_total`` / ``repro_canview_batch_probes_total``
    counters (metrics only — no spans or events).
    """
    profiles = list(profiles)
    permits = getattr(policy, "permits", None)
    if permits is not None:
        answers = [bool(permits(profile, server)) for profile in profiles]
    elif isinstance(policy, Policy):
        answers = policy.can_view_batch(profiles, server)
    else:
        answers = [
            any(
                authorization_covers(rule, profile)
                for rule in policy.rules_for(server)
            )
            for profile in profiles
        ]
    if trace is not None:
        trace.count("repro_canview_batch_calls_total")
        trace.count("repro_canview_batch_probes_total", len(profiles))
    return answers


def covering_authorizations(
    policy: Policy, profile: RelationProfile, server: str
) -> List[Authorization]:
    """All rules of ``server`` covering ``profile`` (for explanations,
    audit records and tests).

    Clause 2 of Definition 3.3 is a join-path *equality*, so only the
    exact-path bucket of the policy index can contain covering rules —
    rules with any other path are skipped without being inspected.
    Bucket order preserves per-server insertion order, so results match
    a full ``rules_for`` scan exactly.
    """
    exposed = profile.exposed_attributes
    return [
        rule
        for rule in policy.rules_for_path(server, profile.join_path)
        if exposed <= rule.attributes
    ]


def first_covering_authorization(
    policy: Policy, profile: RelationProfile, server: str, trace=None
) -> Optional[Authorization]:
    """The first covering rule in policy order, or ``None``.

    The runtime audit attaches this rule to every permitted transfer so
    that each release is accountable to a specific grant.  Like
    :func:`covering_authorizations` this probes only the exact-path
    bucket; within a server's rules the bucket preserves insertion
    order, so "first" is the same rule a full scan would return.

    With a :class:`~repro.obs.trace.TraceContext`, the answer is cached
    per ``(server, profile)`` so the audit and explain paths compute the
    covering rule once and agree by construction.
    """
    if trace is not None:
        cached = trace.covering_for(server, profile)
        if cached is not MISSING:
            return cached
    exposed = profile.exposed_attributes
    found = None
    for rule in policy.rules_for_path(server, profile.join_path):
        if exposed <= rule.attributes:
            found = rule
            break
    if trace is not None:
        trace.record_covering(server, profile, found)
    return found


def explain_denial(policy: Policy, profile: RelationProfile, server: str) -> str:
    """Human-readable explanation of why ``server`` cannot view ``profile``.

    For each of the server's rules, reports which Definition 3.3 clause
    fails.  Returns an empty string when access is actually granted.
    """
    if can_view(policy, profile, server):
        return ""
    if not isinstance(policy, Policy):
        return f"{server} cannot view {profile} under {policy!r}"
    rules = policy.rules_for(server)
    if not rules:
        return f"{server} holds no authorizations at all"
    lines = [f"{server} cannot view {profile}:"]
    for rule in rules:
        missing = sorted(profile.exposed_attributes - rule.attributes)
        reasons = []
        if missing:
            reasons.append(f"attributes not granted: {missing}")
        if profile.join_path != rule.join_path:
            reasons.append(
                f"join path mismatch: profile has {profile.join_path}, rule has "
                f"{rule.join_path}"
            )
        lines.append(f"  {rule}: " + "; ".join(reasons))
    return "\n".join(lines)
