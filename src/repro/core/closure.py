"""Chase-based closure of a policy (Section 3.2).

The paper observes that a server should be allowed to view a relation
even without an explicit authorization whenever it holds authorizations
for all the underlying relations and could therefore compute the view by
itself, and assumes policies are closed under such derivations "by means
of a chase procedure [Aho-Beeri-Ullman]" without spelling it out.

We implement the derivation the observation licenses, bounded by the
catalog's declared join edges (the "lines" of Figure 1):

    **Join derivation.**  From two rules of the same server,
    ``[A1, J1] -> S`` and ``[A2, J2] -> S``, and a join edge ``a = b``
    with ``a in A1`` and ``b in A2``, derive
    ``[A1 ∪ A2, J1 ∪ J2 ∪ {a=b}] -> S``.

The rule is *sound*: ``S`` can materialize the two authorized views and
join them locally on attributes it is allowed to see, so the derived
view discloses nothing new to ``S``.  Projections need no derivation
(Definition 3.3 already compares attributes with ``⊆``) and neither do
selections (selection attributes are drawn from the visible ones).

The fixpoint is finite — attribute sets and join paths are subsets of
finite universes — but can be exponential in adversarial policies, so
:func:`close_policy` takes a ``max_rules`` safety valve.

:func:`minimize_policy` is the inverse housekeeping step: it drops rules
*dominated* by another rule of the same server (same join path, subset
attributes), which never changes any ``CanView`` answer.

:func:`extend_closure` maintains an already-closed policy
*incrementally*: when a new explicit rule arrives, the fixpoint is
extended by chasing from that rule's frontier alone (semi-naive
evaluation) instead of recomputing from scratch.  This is sound and
complete because every derivation producing a rule absent from the old
fixpoint must involve at least one new rule, and every new rule enters
the frontier where it is paired against the complete current rule set.
Revocation has no such shortcut — removing a rule can strand previously
derivable rules — so callers fall back to a full :func:`close_policy`
recompute on revoke (correctness first; see
:meth:`repro.distributed.system.DistributedSystem.revoke_authorization`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Set, Tuple

from repro.algebra.joins import JoinCondition, JoinPath
from repro.algebra.schema import Catalog
from repro.core.authorization import Authorization, Policy
from repro.exceptions import PolicyError


def derive_joined_authorizations(
    first: Authorization,
    second: Authorization,
    join_edges: Iterable[JoinCondition],
) -> List[Authorization]:
    """All single-edge join derivations combining two rules.

    Both rules must belong to the same server; each applicable edge — one
    endpoint granted by ``first``, the other by ``second`` — yields one
    derived rule.  Returns an empty list when the servers differ or no
    edge applies.
    """
    if first.server != second.server:
        return []
    derived = []
    for edge in join_edges:
        a, b = edge.first, edge.second
        bridges = (a in first.attributes and b in second.attributes) or (
            b in first.attributes and a in second.attributes
        )
        if not bridges:
            continue
        derived.append(
            Authorization(
                first.attributes | second.attributes,
                first.join_path.union(second.join_path).with_condition(edge),
                first.server,
            )
        )
    return derived


def close_policy(
    policy: Policy,
    catalog: Catalog,
    max_rules: int = 10_000,
    obs=None,
) -> Policy:
    """Close ``policy`` under the join derivation, to a fixpoint.

    Args:
        policy: the explicitly specified rules (left untouched; a new
            policy is returned).
        catalog: supplies the join edges bounding the derivation.
        max_rules: safety valve; exceeding it raises
            :class:`~repro.exceptions.PolicyError` rather than silently
            truncating the closure.
        obs: optional :class:`~repro.obs.trace.TraceContext`; when set,
            the chase emits one span per breadth-first round plus
            ``repro_chase_*`` counters.

    Returns:
        A new :class:`Policy` containing the original rules plus every
        derivable one.
    """
    edges = catalog.join_edges()
    # Intern derivations in the catalog universe so derived-rule masks
    # line up with profile bitsets built from the same catalog.
    closed = Policy(universe=catalog.universe)
    closed.add_all(policy)
    # FIFO work queue of rules whose pairings have not been explored yet:
    # breadth-first order makes the derivation (and therefore per-server
    # rule insertion order) deterministic and independent of recursion
    # shape — shallow derivations are always discovered before the deeper
    # rules they enable.
    frontier: Deque[Authorization] = deque(closed)
    if obs is None:
        _chase(closed, frontier, edges, max_rules)
        return closed
    with obs.span("close_policy", "closure", explicit_rules=len(policy)):
        _chase(closed, frontier, edges, max_rules, obs)
        obs.count("repro_chase_derived_rules_total", len(closed) - len(policy))
    return closed


def extend_closure(
    closed: Policy,
    new_rules: Iterable[Authorization],
    catalog: Catalog,
    max_rules: int = 10_000,
    obs=None,
) -> int:
    """Extend an already-closed policy with new rules, incrementally.

    ``closed`` is mutated in place: each genuinely new rule is added and
    the join derivation is chased from those rules' frontier until the
    fixpoint is restored.  Rules already present (explicitly or as prior
    derivations) are skipped silently — re-granting a derivable view is
    a no-op.

    Args:
        closed: a policy already closed under the join derivation.
        new_rules: the arriving explicit rules.
        catalog: supplies the join edges bounding the derivation.
        max_rules: safety valve, as in :func:`close_policy`.
        obs: optional :class:`~repro.obs.trace.TraceContext`; the
            incremental chase emits an ``extend_closure`` span plus the
            same per-round spans and ``repro_chase_*`` counters as the
            full chase.

    Returns:
        The number of rules added (explicit and derived).

    Raises:
        PolicyError: when the extension overflows ``max_rules``.
    """
    edges = catalog.join_edges()
    before = len(closed)
    frontier: Deque[Authorization] = deque()
    for rule in new_rules:
        if rule not in closed:
            closed.add(rule)
            frontier.append(rule)
    if not frontier:
        return 0
    fresh = len(frontier)
    if obs is None:
        _chase(closed, frontier, edges, max_rules)
        return len(closed) - before
    with obs.span("extend_closure", "closure", new_rules=fresh):
        _chase(closed, frontier, edges, max_rules, obs)
        added = len(closed) - before
        obs.count("repro_chase_derived_rules_total", added - fresh)
    return added


def _chase(
    closed: Policy,
    frontier: "Deque[Authorization]",
    edges,
    max_rules: int,
    obs=None,
) -> None:
    """Drain the chase frontier to a fixpoint (breadth-first).

    A *round* processes every rule that was queued when the round began;
    rules derived during a round are explored in the next one.  The
    rounds exist only for observability — the fixpoint is identical
    either way — so the untraced path skips the bookkeeping entirely.
    """
    round_index = 0
    while frontier:
        remaining = len(frontier)
        span = None
        derived_this_round = 0
        pairings = 0
        if obs is not None:
            round_index += 1
            span = obs.begin(
                "chase_round", "closure", round=round_index, frontier=remaining
            )
        try:
            while remaining:
                remaining -= 1
                rule = frontier.popleft()
                peers = closed.rules_for(rule.server)
                for peer in peers:
                    pairings += 1
                    for derived in derive_joined_authorizations(rule, peer, edges):
                        if derived in closed:
                            continue
                        if len(closed) >= max_rules:
                            raise PolicyError(
                                f"policy closure exceeded max_rules={max_rules}; "
                                "the policy's derivable views blow up — raise the "
                                "limit or restrict the catalog's join edges"
                            )
                        closed.add(derived)
                        frontier.append(derived)
                        derived_this_round += 1
        finally:
            if span is not None:
                obs.count("repro_chase_rounds_total")
                obs.count("repro_chase_pairings_total", pairings)
                obs.end(span, derived=derived_this_round)


def minimize_policy(policy: Policy) -> Policy:
    """Drop dominated rules.

    A rule ``[A, J] -> S`` is dominated when another rule
    ``[A', J] -> S`` with ``A ⊂ A'`` exists (same server, same join
    path, strictly larger attribute set).  Domination never changes a
    ``CanView`` answer, so minimization is safe to apply after closure.
    """
    minimized = Policy(universe=policy.universe)
    for server in policy.servers():
        rules = policy.rules_for(server)
        by_path: Dict[JoinPath, List[Authorization]] = {}
        for rule in rules:
            by_path.setdefault(rule.join_path, []).append(rule)
        # Canonical interned-path key: a total, hash-independent order
        # over join paths (sorted tuples of condition pairs), unlike the
        # old str() rendering which was both slow and collision-prone
        # as a sort key.
        for _, group in sorted(by_path.items(), key=lambda kv: kv[0].canonical_key()):
            keep: List[Authorization] = []
            # Largest attribute sets first so dominated rules are filtered
            # in one pass.
            for rule in sorted(group, key=lambda r: (-len(r.attributes), sorted(r.attributes))):
                if any(rule.attributes <= kept.attributes for kept in keep):
                    continue
                keep.append(rule)
            for rule in keep:
                minimized.add(rule)
    return minimized
