"""Policy-epoch plan cache: reuse safe assignments across a workload.

Planning a query is the expensive part of serving it — SQL parsing,
plan minimization, the Figure 6 candidate traversal and the independent
safety verification all run per call — yet heavy workloads repeat the
same query texts over and over, and the answer only depends on the
bound query and the policy in force.  This module memoizes the whole
planning product, ``(tree, assignment, planner trace)``, keyed on

* a **canonical fingerprint** of the bound query
  (:meth:`~repro.algebra.builder.QuerySpec.fingerprint`, which reuses
  :meth:`~repro.algebra.joins.JoinPath.canonical_key` so condition and
  conjunct ordering never split the cache), and
* the policy **epoch** (:attr:`~repro.core.authorization.Policy.epoch`)
  the cached assignment was last proven safe at.

Epoch semantics make the cache *policy-churn tolerant* instead of
merely invalidate-on-write:

* **unchanged epoch** — the policy is exactly the one the plan was
  verified under; the hit is a pure dictionary probe.
* **bumped epoch** — the policy mutated since validation.  The entry is
  **revalidated**: every release flow the cached assignment entails is
  re-checked against the *current* policy through the existing
  covering-authorization probe (:mod:`repro.engine.audit`).  Grants
  only ever widen the policy, so revalidation after an ``add``
  succeeds and merely restamps the entry; after a revocation the probe
  fails exactly when the plan relied on the withdrawn rule, and the
  entry is evicted so the caller replans.  A stale plan can therefore
  never ship a transfer the current policy forbids — the same property
  the runtime audit enforces, applied one layer earlier.

The cache is a plain LRU (``maxsize`` entries, least-recently-used
evicted first) and deliberately caches only *feasible* plans:
infeasibility is policy-dependent in the unhelpful direction (a later
grant can make it feasible), so negative answers are recomputed.

**Interleaved access.**  The cache is used from asyncio services where
many in-flight queries share it (:mod:`repro.service`).  Lookups and
stores are synchronous and never await, so coroutines cannot observe a
half-applied LRU mutation — but the revalidation path runs arbitrary
audit/trace callbacks which may re-enter the cache (and future callers
may probe from threads).  :meth:`PlanCache.lookup` therefore treats the
revalidation window as a critical section per fingerprint: a re-entrant
lookup of a fingerprint mid-revalidation reports a miss instead of
recursing, and every mutation re-checks that the entry it is about to
touch is still the one it resolved (a re-entrant ``store``/``clear``
can swap or drop it).  Concurrent fills of the *same* fingerprint are
expected to be coalesced one layer up (single-flight planning, see
:class:`repro.service.singleflight.SingleFlight`); followers served by a
leader's fill are counted in :attr:`PlanCacheStats.coalesced` via
:meth:`PlanCache.record_coalesced`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.algebra.tree import (
    PROJECT,
    JoinNode,
    LeafNode,
    PlanNode,
    QueryTreePlan,
    UnaryNode,
)
from repro.core.authorization import Policy
from repro.exceptions import PlanError

#: The always-present keys of a plan-cache stats snapshot; downstream
#: JSON consumers (``summary_dict``, ``BENCH_*.json``) rely on every key
#: existing regardless of which events a run actually saw.
PLAN_CACHE_KEYS = (
    "hits",
    "misses",
    "revalidations",
    "revalidation_failures",
    "evictions",
    "coalesced",
    "entries",
)


class PlanCacheStats:
    """Counters of one cache's lifetime.

    Attributes:
        hits: lookups answered from the cache (pure hits plus
            successful revalidations).
        misses: lookups that fell through to fresh planning (absent
            fingerprints plus failed revalidations).
        revalidations: epoch-bumped entries re-audited against the
            current policy (successful or not).
        revalidation_failures: re-audits that found a now-forbidden
            flow; the entry was evicted and the query replanned.
        evictions: entries dropped by LRU pressure (revalidation
            failures are counted separately).
        coalesced: concurrent requests served by another request's
            in-flight cache fill instead of planning themselves
            (single-flight followers; see
            :meth:`PlanCache.record_coalesced`).
    """

    __slots__ = (
        "hits",
        "misses",
        "revalidations",
        "revalidation_failures",
        "evictions",
        "coalesced",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.revalidations = 0
        self.revalidation_failures = 0
        self.evictions = 0
        self.coalesced = 0

    def __repr__(self) -> str:
        return (
            f"PlanCacheStats(hits={self.hits}, misses={self.misses}, "
            f"revalidations={self.revalidations}, "
            f"revalidation_failures={self.revalidation_failures}, "
            f"evictions={self.evictions}, coalesced={self.coalesced})"
        )


class PlanCacheEntry:
    """One cached planning product.

    Attributes:
        tree: the minimized :class:`~repro.algebra.tree.QueryTreePlan`.
        assignment: the safe executor assignment (treated as immutable
            after planning — the execution layers only read it).
        planner_trace: the Figure 7 trace of the original planning run.
        validated_epoch: the policy epoch the assignment was last
            proven safe at.
    """

    __slots__ = ("tree", "assignment", "planner_trace", "validated_epoch")

    def __init__(self, tree, assignment, planner_trace, validated_epoch: int) -> None:
        self.tree = tree
        self.assignment = assignment
        self.planner_trace = planner_trace
        self.validated_epoch = validated_epoch


def fingerprint_tree(tree: QueryTreePlan) -> Tuple[object, ...]:
    """A canonical, hashable identity of an explicitly shaped plan.

    Used for queries that bypass :class:`~repro.algebra.builder.QuerySpec`
    (parenthesized/bushy SQL FROM clauses bind straight to a tree): the
    fingerprint is the recursive structure of the tree — operator kinds,
    relation names, sorted projection sets, sorted predicate atoms and
    :meth:`~repro.algebra.joins.JoinPath.canonical_key` join paths.
    """

    def walk(node: PlanNode) -> Tuple[object, ...]:
        if isinstance(node, LeafNode):
            return ("leaf", node.relation.name)
        if isinstance(node, UnaryNode):
            if node.operator == PROJECT:
                parameter: Tuple[object, ...] = tuple(sorted(node.parameter))
            else:
                parameter = tuple(sorted(str(c) for c in node.parameter.comparisons))
            return (node.operator, parameter, walk(node.left))
        if isinstance(node, JoinNode):
            return (
                "join",
                node.path.canonical_key(),
                walk(node.left),
                walk(node.right),
            )
        raise PlanError(f"unknown node kind: {type(node).__name__}")  # pragma: no cover

    return ("tree", walk(tree.root))


class PlanCache:
    """An LRU of safe assignments keyed on ``(fingerprint, epoch)``.

    Args:
        maxsize: entry cap; the least recently used entry is evicted
            when a store overflows it.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"plan cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[object, PlanCacheEntry]" = OrderedDict()
        # Fingerprints currently inside the revalidation critical
        # section; a re-entrant lookup of one of these reports a miss
        # instead of recursing into a second re-audit (see the module
        # docstring's interleaved-access notes).
        self._revalidating: set = set()
        self.stats = PlanCacheStats()

    @property
    def maxsize(self) -> int:
        """The entry cap."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"PlanCache({len(self._entries)}/{self._maxsize} entries, {self.stats!r})"

    def lookup(
        self, fingerprint: object, policy: Policy, obs=None
    ) -> Optional[PlanCacheEntry]:
        """The cached entry for ``fingerprint``, revalidated if stale.

        Returns ``None`` on a miss (absent, or present but no longer
        safe under ``policy`` — the entry is then evicted).  Hits and
        successful revalidations refresh the entry's LRU position.

        Args:
            fingerprint: a value from
                :meth:`~repro.algebra.builder.QuerySpec.fingerprint` or
                :func:`fingerprint_tree` (any hashable works).
            policy: the policy currently in force; its
                :attr:`~repro.core.authorization.Policy.epoch` decides
                between a pure hit and a revalidation.
            obs: optional :class:`~repro.obs.trace.TraceContext`;
                lookups feed ``repro_plan_cache_*`` counters and emit
                one ``plan_cache`` event per outcome.
        """
        entry = self._entries.get(fingerprint)
        if entry is None or fingerprint in self._revalidating:
            # Mid-revalidation re-entry is answered as a miss: the outer
            # frame owns the entry's fate, and recursing into a second
            # re-audit of the same assignment could interleave its LRU
            # mutations with ours.
            self.stats.misses += 1
            self._observe(obs, "miss")
            return None
        epoch = policy.epoch
        if entry.validated_epoch != epoch:
            self.stats.revalidations += 1
            self._revalidating.add(fingerprint)
            try:
                safe = self._still_safe(policy, entry.assignment, obs)
            finally:
                self._revalidating.discard(fingerprint)
            if not safe:
                # The current policy forbids a flow this plan ships —
                # the entry is unusable at any later epoch too (only a
                # fresh plan can route around the revocation).  The
                # audit probe may have re-entered the cache, so only
                # evict the entry we actually revalidated.
                if self._entries.get(fingerprint) is entry:
                    del self._entries[fingerprint]
                self.stats.revalidation_failures += 1
                self.stats.misses += 1
                self._observe(obs, "revalidation_failed")
                return None
            entry.validated_epoch = epoch
            self._observe(obs, "revalidated")
        else:
            self._observe(obs, "hit")
        if self._entries.get(fingerprint) is entry:
            self._entries.move_to_end(fingerprint)
        self.stats.hits += 1
        return entry

    def store(
        self,
        fingerprint: object,
        policy: Policy,
        tree,
        assignment,
        planner_trace,
    ) -> PlanCacheEntry:
        """Cache one freshly planned product, validated at ``policy``'s
        current epoch (LRU-evicting on overflow)."""
        entry = PlanCacheEntry(tree, assignment, planner_trace, policy.epoch)
        self._entries[fingerprint] = entry
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return entry

    def clear(self) -> None:
        """Drop every entry (stats are kept — they are lifetime counters)."""
        self._entries.clear()

    def record_coalesced(self, count: int = 1, obs=None) -> None:
        """Count ``count`` requests served by another request's
        in-flight fill (single-flight followers).

        The service layer calls this once per follower it parks on a
        leader's planning future, so the counter prices exactly the
        planner stampedes the single-flight layer absorbed.
        """
        if count < 0:
            raise ValueError(f"coalesced count must be >= 0, got {count}")
        self.stats.coalesced += count
        if obs is not None and count:
            obs.count("repro_plan_cache_coalesced_total", count)

    def snapshot(self) -> dict:
        """JSON-safe stats snapshot with every :data:`PLAN_CACHE_KEYS`
        key present."""
        stats = self.stats
        return {
            "hits": stats.hits,
            "misses": stats.misses,
            "revalidations": stats.revalidations,
            "revalidation_failures": stats.revalidation_failures,
            "evictions": stats.evictions,
            "coalesced": stats.coalesced,
            "entries": len(self._entries),
        }

    @staticmethod
    def _still_safe(policy: Policy, assignment, obs) -> bool:
        """Re-audit every release flow of a cached assignment.

        Runs the exact covering-authorization probe the runtime audit
        layer uses (:class:`~repro.engine.audit.AuditLog`), so "the
        cache revalidated the plan" and "the engine would have permitted
        every shipment" are the same judgement by construction.
        """
        # Deferred import: the audit layer sits above core in the module
        # layering, and only this cold revalidation path needs it.
        from repro.core.safety import enumerate_assignment_flows
        from repro.engine.audit import AuditLog

        audit = AuditLog(policy, enforce=False, trace=obs)
        for flow in enumerate_assignment_flows(assignment):
            if not flow.is_release:
                continue
            allowed, _ = audit.authorize(flow.sender, flow.receiver, flow.profile)
            if not allowed:
                return False
        return True

    @staticmethod
    def _observe(obs, outcome: str) -> None:
        if obs is None:
            return
        obs.count(f"repro_plan_cache_{outcome}_total")
        obs.event("plan_cache", "planner", outcome=outcome)
