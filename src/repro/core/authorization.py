"""Authorizations and policies (Definition 3.1, Figure 3).

An authorization is a rule ``[Attributes, JoinPath] -> Server``:

1. ``Attributes`` is a set of attributes from one or more relations;
2. ``JoinPath`` is a join path including (at least) every relation
   contributing attributes — it may be empty when all attributes belong
   to a single relation, and it may mention *additional* relations for
   connectivity constraints or instance-based restrictions;
3. ``Server`` is the grantee.

The paper assumes a closed policy: anything not explicitly (or
derivably, see :mod:`repro.core.closure`) authorized is forbidden.
A :class:`Policy` is the set of authorizations of a distributed system,
indexed by grantee.

Beyond the plain per-server index, a policy maintains the *CanView
kernel* the whole planning stack runs on:

* an exact-path index ``(server, join path) -> rules`` — clause 2 of
  Definition 3.3 is an equality, so a check only ever probes one bucket;
* per-bucket **bitmasks** of each rule's granted attributes (interned in
  an :class:`~repro.algebra.universe.AttributeUniverse`), plus the
  bucket's union mask as a superset fast path — a profile whose exposed
  attributes are not even covered by the union cannot be covered by any
  single rule;
* a memoized :meth:`Policy.can_view` cache keyed on the profile
  signature (exposed attributes × join path) and the grantee,
  invalidated wholesale whenever the policy mutates.

Policies additionally carry an **epoch** — a monotonic counter bumped by
every semantic mutation (:meth:`Policy.add`, :meth:`Policy.remove`).
The plan cache (:mod:`repro.core.plancache`) keys cached safe
assignments on the epoch they were last validated at: an unchanged epoch
means the policy is byte-for-byte the one the plan was proven safe
under, while a bumped epoch forces a cheap re-audit before reuse.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.algebra.attributes import AttributeSet, attribute_set, format_attribute_set
from repro.algebra.joins import JoinPath, intern_path
from repro.algebra.schema import Catalog
from repro.algebra.universe import AttributeUniverse, AttrSet
from repro.exceptions import AuthorizationError, PolicyError

#: Soft cap on memoized CanView answers; the cache is dropped wholesale
#: when it fills (distinct profile signatures are workload-bounded in
#: practice, so this is a safety valve, not a tuning knob).
_MAX_CAN_VIEW_CACHE = 1 << 18

_MISS = object()


class Authorization:
    """A rule ``[Attributes, JoinPath] -> Server``.

    Instances are immutable and hashable; two rules are equal when their
    three components are equal (join-path equality is order-insensitive
    at the atomic-condition level, see :class:`~repro.algebra.joins.JoinPath`).
    The join path is stored in its canonical interned form, so rule
    hashing and policy-index probes run at interned speed.
    """

    __slots__ = ("_attributes", "_join_path", "_server", "_hash")

    def __init__(
        self,
        attributes: Iterable[str],
        join_path: Optional[JoinPath],
        server: str,
    ) -> None:
        self._attributes = attribute_set(attributes)
        if not self._attributes:
            raise AuthorizationError("an authorization must grant at least one attribute")
        if join_path is None:
            self._join_path = JoinPath.empty()
        elif isinstance(join_path, JoinPath):
            self._join_path = intern_path(join_path)
        else:
            raise AuthorizationError("join_path must be a JoinPath")
        if not server or not isinstance(server, str):
            raise AuthorizationError(f"invalid server name: {server!r}")
        self._server = server
        self._hash = hash((self._attributes, self._join_path, self._server))

    @property
    def attributes(self) -> AttributeSet:
        """The granted ``Attributes`` component."""
        return self._attributes

    @property
    def join_path(self) -> JoinPath:
        """The ``JoinPath`` component (canonical interned instance)."""
        return self._join_path

    @property
    def server(self) -> str:
        """The grantee server."""
        return self._server

    def validate_against(self, catalog: Catalog) -> None:
        """Check the rule's well-formedness w.r.t. a catalog.

        Definition 3.1 requires the join path to include (at least) all
        relations owning granted attributes: whenever the attributes span
        more than one relation, the join path must connect *all* of them
        (mention at least one attribute of each), and with an empty join
        path all attributes must belong to a single relation.

        Raises:
            AuthorizationError: if the rule violates Definition 3.1 or
                references unknown attributes.
        """
        granted_relations = set(catalog.relations_of(self._attributes))
        catalog.validate_join_path(self._join_path)
        if self._join_path.is_empty():
            if len(granted_relations) > 1:
                raise AuthorizationError(
                    f"attributes of {self} span relations {sorted(granted_relations)} "
                    "but the join path is empty"
                )
            return
        path_relations = set(catalog.relations_of(self._join_path.attributes))
        uncovered = granted_relations - path_relations
        # A single-relation grant with a join path is fine (instance-based
        # restriction) as long as that relation participates in the path.
        if uncovered:
            raise AuthorizationError(
                f"join path of {self} does not include relations {sorted(uncovered)} "
                "whose attributes are granted"
            )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Authorization):
            return NotImplemented
        return (
            self._server == other._server
            and self._join_path == other._join_path
            and self._attributes == other._attributes
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"[{format_attribute_set(self._attributes)}, {self._join_path}] -> "
            f"{self._server}"
        )

    __str__ = __repr__


class _PathBucket:
    """Index entry for one ``(server, join path)`` bucket: the rules, a
    parallel list of granted-attribute masks, and their union (the
    superset-mask fast path)."""

    __slots__ = ("rules", "masks", "union_mask")

    def __init__(self) -> None:
        self.rules: List[Authorization] = []
        self.masks: List[int] = []
        self.union_mask = 0

    def add(self, rule: Authorization, mask: int) -> None:
        self.rules.append(rule)
        self.masks.append(mask)
        self.union_mask |= mask

    def remove(self, rule: Authorization) -> None:
        index = self.rules.index(rule)
        del self.rules[index]
        del self.masks[index]
        self.union_mask = 0
        for mask in self.masks:
            self.union_mask |= mask


class Policy:
    """A set of authorizations indexed by grantee server.

    Iteration order and :meth:`rules_for` order are deterministic
    (insertion order per server); duplicates are rejected.

    Args:
        authorizations: initial rules.
        universe: the :class:`~repro.algebra.universe.AttributeUniverse`
            to intern granted attributes in — pass the owning catalog's
            (``catalog.universe``) so profile bitsets and rule bitsets
            share bit positions; by default the policy owns a private
            universe and adopts names as rules arrive.
    """

    def __init__(
        self,
        authorizations: Iterable[Authorization] = (),
        universe: Optional[AttributeUniverse] = None,
    ) -> None:
        self._universe = universe if universe is not None else AttributeUniverse()
        self._by_server: Dict[str, List[Authorization]] = {}
        # Exact-path index: Definition 3.3 compares join paths with
        # equality, so a CanView check only ever needs the rules whose
        # path equals the profile's — one dictionary probe instead of a
        # scan of the grantee's whole rule list.
        self._by_server_path: Dict[Tuple[str, JoinPath], _PathBucket] = {}
        self._all: set = set()
        # Stable 1-based id per rule in insertion order — the audit layer
        # stamps this onto transfer spans so a release is traceable to a
        # specific grant without serializing the whole rule.  Ids are
        # never reused: removal retires an id for good.
        self._rule_ids: Dict[Authorization, int] = {}
        self._next_rule_id = 1
        # Mutation counter; bumping it invalidates every memoized answer.
        self._version = 0
        # Semantic-generation counter for external caches (plan cache):
        # bumped on every add/remove, and advanced past a predecessor's
        # epoch when a policy is rebuilt from scratch (revocation path).
        self._epoch = 0
        self._can_view_cache: Dict[Tuple[str, JoinPath, AttributeSet], bool] = {}
        # Cold-path counter: bumped only on cache misses, so the hot hit
        # path stays one dict probe.  Traced planners read the delta to
        # derive cache-hit ratios without touching the hit path.
        self._uncached_calls = 0
        for authorization in authorizations:
            self.add(authorization)

    @property
    def universe(self) -> AttributeUniverse:
        """The universe granted attributes are interned in."""
        return self._universe

    @property
    def version(self) -> int:
        """Monotonic mutation counter (each :meth:`add` bumps it)."""
        return self._version

    @property
    def epoch(self) -> int:
        """Semantic-generation counter for external caches.

        Every :meth:`add` and :meth:`remove` bumps it; a plan proven
        safe at epoch ``e`` is guaranteed still safe while the epoch
        stays ``e`` — any change forces revalidation (see
        :mod:`repro.core.plancache`).
        """
        return self._epoch

    def advance_epoch(self, floor: int) -> None:
        """Ensure ``epoch > floor - 1`` (i.e. at least ``floor``).

        Used when a policy is rebuilt from scratch — the revocation
        path recomputes the full closure into a *new* :class:`Policy`
        whose epoch restarts at its own add count; advancing it past the
        predecessor's epoch keeps the system-level epoch line strictly
        increasing, so cache entries validated under any earlier policy
        can never be mistaken for current.
        """
        if self._epoch < floor:
            self._epoch = floor

    def add(self, authorization: Authorization) -> None:
        """Add one rule.

        Adding invalidates the memoized ``CanView`` cache.

        Raises:
            PolicyError: if the exact rule is already present.
        """
        if not isinstance(authorization, Authorization):
            raise PolicyError("policies contain Authorization objects")
        if authorization in self._all:
            raise PolicyError(f"duplicate authorization: {authorization}")
        self._all.add(authorization)
        self._rule_ids[authorization] = self._next_rule_id
        self._next_rule_id += 1
        self._by_server.setdefault(authorization.server, []).append(authorization)
        key = (authorization.server, authorization.join_path)
        bucket = self._by_server_path.get(key)
        if bucket is None:
            bucket = self._by_server_path[key] = _PathBucket()
        bucket.add(authorization, self._universe.mask_of(authorization.attributes))
        self._version += 1
        self._epoch += 1
        if self._can_view_cache:
            self._can_view_cache.clear()

    def remove(self, authorization: Authorization) -> None:
        """Revoke one rule.

        Removal invalidates the memoized ``CanView`` cache and bumps the
        epoch; the rule's stable id is retired, never reassigned.

        Raises:
            PolicyError: if the rule is not in the policy.
        """
        if authorization not in self._all:
            raise PolicyError(f"cannot revoke absent authorization: {authorization}")
        self._all.discard(authorization)
        del self._rule_ids[authorization]
        rules = self._by_server[authorization.server]
        rules.remove(authorization)
        if not rules:
            del self._by_server[authorization.server]
        key = (authorization.server, authorization.join_path)
        bucket = self._by_server_path[key]
        bucket.remove(authorization)
        if not bucket.rules:
            del self._by_server_path[key]
        self._version += 1
        self._epoch += 1
        if self._can_view_cache:
            self._can_view_cache.clear()

    def add_all(self, authorizations: Iterable[Authorization]) -> None:
        """Add several rules (duplicates rejected as in :meth:`add`)."""
        for authorization in authorizations:
            self.add(authorization)

    def extend_ignoring_duplicates(self, authorizations: Iterable[Authorization]) -> int:
        """Add rules, silently skipping exact duplicates.

        Returns the number of rules actually added.  Used by the chase
        closure, which naturally re-derives existing rules.
        """
        added = 0
        for authorization in authorizations:
            if authorization not in self._all:
                self.add(authorization)
                added += 1
        return added

    def rules_for(self, server: str) -> Tuple[Authorization, ...]:
        """All rules granted to ``server`` (the paper's ``view(S)``)."""
        return tuple(self._by_server.get(server, ()))

    def rule_id(self, authorization: Authorization) -> Optional[int]:
        """Stable 1-based insertion-order id of a rule (``None`` if the
        rule is not in this policy)."""
        return self._rule_ids.get(authorization)

    def rules_for_path(self, server: str, join_path: JoinPath) -> Tuple[Authorization, ...]:
        """The rules of ``server`` whose join path equals ``join_path``.

        This is the only bucket a Definition 3.3 check can match (clause
        2 is an equality), so ``CanView`` runs on it directly.
        """
        bucket = self._by_server_path.get((server, join_path))
        return tuple(bucket.rules) if bucket is not None else ()

    # ------------------------------------------------------------------
    # CanView kernel (Definition 3.3)
    # ------------------------------------------------------------------

    def can_view(self, profile, server: str) -> bool:
        """Memoized Definition 3.3 check: may ``server`` view ``profile``?

        The cache key is ``(server, profile)`` — profiles hash by value
        (cached) and compare identity-first, so structurally equal
        profiles share one cached answer and the hot hit path is a
        single dict probe.  :meth:`add` invalidates the cache.
        """
        key = (server, profile)
        cache = self._can_view_cache
        cached = cache.get(key, _MISS)
        if cached is not _MISS:
            return cached
        result = self._can_view_uncached(
            server, profile.join_path, profile.exposed_attributes
        )
        if len(cache) >= _MAX_CAN_VIEW_CACHE:
            cache.clear()
        cache[key] = result
        return result

    @property
    def uncached_can_view_calls(self) -> int:
        """How many :meth:`can_view` calls missed the memo cache."""
        return self._uncached_calls

    def can_view_batch(self, profiles, server: str) -> List[bool]:
        """Batched Definition 3.3: CanView for N profiles against one
        server in one kernel pass.

        Cached answers are served from the same memo the scalar path
        uses; the remaining misses are grouped by join path so each
        distinct path costs **one** bucket probe, then every miss runs
        the integer kernel against that bucket's mask arrays (union-mask
        fast reject, then per-rule superset test).  Answers — including
        the misses computed here — land in the memo cache exactly as the
        scalar path would have stored them, and every miss bumps
        :attr:`uncached_can_view_calls` by one, so scalar and batched
        probes are indistinguishable to cache-hit accounting.

        Returns:
            one boolean per profile, in input order — identical to
            ``[self.can_view(p, server) for p in profiles]``.
        """
        profiles = list(profiles)
        cache = self._can_view_cache
        answers: List[Optional[bool]] = []
        misses: Dict[JoinPath, List[int]] = {}
        for position, profile in enumerate(profiles):
            cached = cache.get((server, profile), _MISS)
            if cached is not _MISS:
                answers.append(cached)
            else:
                answers.append(None)
                misses.setdefault(profile.join_path, []).append(position)
        if not misses:
            return answers  # type: ignore[return-value]
        universe = self._universe
        for join_path, positions in misses.items():
            self._uncached_calls += len(positions)
            bucket = self._by_server_path.get((server, join_path))
            if bucket is None:
                for position in positions:
                    answers[position] = False
            else:
                union_mask = bucket.union_mask
                masks = bucket.masks
                exposed_masks = universe.try_masks(
                    profiles[position].exposed_attributes for position in positions
                )
                for position, exposed_mask in zip(positions, exposed_masks):
                    if exposed_mask is None or exposed_mask & ~union_mask:
                        # Unknown attribute (never granted) or the union
                        # of the bucket's grants doesn't cover it.
                        answers[position] = False
                        continue
                    result = False
                    for mask in masks:
                        if not exposed_mask & ~mask:
                            result = True
                            break
                    answers[position] = result
            for position in positions:
                if len(cache) >= _MAX_CAN_VIEW_CACHE:
                    cache.clear()
                cache[(server, profiles[position])] = answers[position]
        return answers  # type: ignore[return-value]

    def _can_view_uncached(
        self, server: str, join_path: JoinPath, exposed: AttributeSet
    ) -> bool:
        self._uncached_calls += 1
        bucket = self._by_server_path.get((server, join_path))
        if bucket is None:
            return False
        universe = self._universe
        if isinstance(exposed, AttrSet) and exposed.universe is universe:
            exposed_mask = exposed.mask
        else:
            exposed_mask = universe.try_mask(exposed)
            if exposed_mask is None:
                # Some exposed attribute was never granted by any rule of
                # this policy, so no rule can cover the profile.
                return False
        # Superset fast path: not even the union of the bucket's grants
        # covers the exposure.
        if exposed_mask & ~bucket.union_mask:
            return False
        for mask in bucket.masks:
            if not exposed_mask & ~mask:
                return True
        return False

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def servers(self) -> List[str]:
        """All grantee servers, sorted."""
        return sorted(self._by_server)

    def validate_against(self, catalog: Catalog) -> None:
        """Validate every rule against ``catalog`` (Definition 3.1)."""
        for authorization in self:
            authorization.validate_against(catalog)

    def copy(self) -> "Policy":
        """An independent shallow copy (rules are immutable).

        The copy shares the universe — universes are append-only
        interners, so sharing is safe and keeps masks comparable across
        the copies.
        """
        clone = Policy(universe=self._universe)
        for authorization in self:
            clone.add(authorization)
        return clone

    def __contains__(self, authorization: object) -> bool:
        return authorization in self._all

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[Authorization]:
        for server in sorted(self._by_server):
            yield from self._by_server[server]

    def __repr__(self) -> str:
        return f"Policy({len(self._all)} rules, servers={self.servers()})"

    def describe(self) -> str:
        """Figure 3 style rendering, one rule per line."""
        return "\n".join(str(a) for a in self)
