"""Authorizations and policies (Definition 3.1, Figure 3).

An authorization is a rule ``[Attributes, JoinPath] -> Server``:

1. ``Attributes`` is a set of attributes from one or more relations;
2. ``JoinPath`` is a join path including (at least) every relation
   contributing attributes — it may be empty when all attributes belong
   to a single relation, and it may mention *additional* relations for
   connectivity constraints or instance-based restrictions;
3. ``Server`` is the grantee.

The paper assumes a closed policy: anything not explicitly (or
derivably, see :mod:`repro.core.closure`) authorized is forbidden.
A :class:`Policy` is the set of authorizations of a distributed system,
indexed by grantee.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.algebra.attributes import AttributeSet, attribute_set, format_attribute_set
from repro.algebra.joins import JoinPath
from repro.algebra.schema import Catalog
from repro.exceptions import AuthorizationError, PolicyError


class Authorization:
    """A rule ``[Attributes, JoinPath] -> Server``.

    Instances are immutable and hashable; two rules are equal when their
    three components are equal (join-path equality is order-insensitive
    at the atomic-condition level, see :class:`~repro.algebra.joins.JoinPath`).
    """

    __slots__ = ("_attributes", "_join_path", "_server")

    def __init__(
        self,
        attributes: Iterable[str],
        join_path: Optional[JoinPath],
        server: str,
    ) -> None:
        self._attributes = attribute_set(attributes)
        if not self._attributes:
            raise AuthorizationError("an authorization must grant at least one attribute")
        self._join_path = join_path if join_path is not None else JoinPath.empty()
        if not isinstance(self._join_path, JoinPath):
            raise AuthorizationError("join_path must be a JoinPath")
        if not server or not isinstance(server, str):
            raise AuthorizationError(f"invalid server name: {server!r}")
        self._server = server

    @property
    def attributes(self) -> AttributeSet:
        """The granted ``Attributes`` component."""
        return self._attributes

    @property
    def join_path(self) -> JoinPath:
        """The ``JoinPath`` component."""
        return self._join_path

    @property
    def server(self) -> str:
        """The grantee server."""
        return self._server

    def validate_against(self, catalog: Catalog) -> None:
        """Check the rule's well-formedness w.r.t. a catalog.

        Definition 3.1 requires the join path to include (at least) all
        relations owning granted attributes: whenever the attributes span
        more than one relation, the join path must connect *all* of them
        (mention at least one attribute of each), and with an empty join
        path all attributes must belong to a single relation.

        Raises:
            AuthorizationError: if the rule violates Definition 3.1 or
                references unknown attributes.
        """
        granted_relations = set(catalog.relations_of(self._attributes))
        catalog.validate_join_path(self._join_path)
        if self._join_path.is_empty():
            if len(granted_relations) > 1:
                raise AuthorizationError(
                    f"attributes of {self} span relations {sorted(granted_relations)} "
                    "but the join path is empty"
                )
            return
        path_relations = set(catalog.relations_of(self._join_path.attributes))
        uncovered = granted_relations - path_relations
        # A single-relation grant with a join path is fine (instance-based
        # restriction) as long as that relation participates in the path.
        if uncovered:
            raise AuthorizationError(
                f"join path of {self} does not include relations {sorted(uncovered)} "
                "whose attributes are granted"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Authorization):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and self._join_path == other._join_path
            and self._server == other._server
        )

    def __hash__(self) -> int:
        return hash((self._attributes, self._join_path, self._server))

    def __repr__(self) -> str:
        return (
            f"[{format_attribute_set(self._attributes)}, {self._join_path}] -> "
            f"{self._server}"
        )

    __str__ = __repr__


class Policy:
    """A set of authorizations indexed by grantee server.

    Iteration order and :meth:`rules_for` order are deterministic
    (insertion order per server); duplicates are rejected.
    """

    def __init__(self, authorizations: Iterable[Authorization] = ()) -> None:
        self._by_server: Dict[str, List[Authorization]] = {}
        # Exact-path index: Definition 3.3 compares join paths with
        # equality, so a CanView check only ever needs the rules whose
        # path equals the profile's — one dictionary probe instead of a
        # scan of the grantee's whole rule list.
        self._by_server_path: Dict[Tuple[str, JoinPath], List[Authorization]] = {}
        self._all: set = set()
        for authorization in authorizations:
            self.add(authorization)

    def add(self, authorization: Authorization) -> None:
        """Add one rule.

        Raises:
            PolicyError: if the exact rule is already present.
        """
        if not isinstance(authorization, Authorization):
            raise PolicyError("policies contain Authorization objects")
        if authorization in self._all:
            raise PolicyError(f"duplicate authorization: {authorization}")
        self._all.add(authorization)
        self._by_server.setdefault(authorization.server, []).append(authorization)
        key = (authorization.server, authorization.join_path)
        self._by_server_path.setdefault(key, []).append(authorization)

    def add_all(self, authorizations: Iterable[Authorization]) -> None:
        """Add several rules (duplicates rejected as in :meth:`add`)."""
        for authorization in authorizations:
            self.add(authorization)

    def extend_ignoring_duplicates(self, authorizations: Iterable[Authorization]) -> int:
        """Add rules, silently skipping exact duplicates.

        Returns the number of rules actually added.  Used by the chase
        closure, which naturally re-derives existing rules.
        """
        added = 0
        for authorization in authorizations:
            if authorization not in self._all:
                self.add(authorization)
                added += 1
        return added

    def rules_for(self, server: str) -> Tuple[Authorization, ...]:
        """All rules granted to ``server`` (the paper's ``view(S)``)."""
        return tuple(self._by_server.get(server, ()))

    def rules_for_path(self, server: str, join_path: JoinPath) -> Tuple[Authorization, ...]:
        """The rules of ``server`` whose join path equals ``join_path``.

        This is the only bucket a Definition 3.3 check can match (clause
        2 is an equality), so ``CanView`` runs on it directly.
        """
        return tuple(self._by_server_path.get((server, join_path), ()))

    def servers(self) -> List[str]:
        """All grantee servers, sorted."""
        return sorted(self._by_server)

    def validate_against(self, catalog: Catalog) -> None:
        """Validate every rule against ``catalog`` (Definition 3.1)."""
        for authorization in self:
            authorization.validate_against(catalog)

    def copy(self) -> "Policy":
        """An independent shallow copy (rules are immutable)."""
        clone = Policy()
        for authorization in self:
            clone.add(authorization)
        return clone

    def __contains__(self, authorization: object) -> bool:
        return authorization in self._all

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[Authorization]:
        for server in sorted(self._by_server):
            yield from self._by_server[server]

    def __repr__(self) -> str:
        return f"Policy({len(self._all)} rules, servers={self.servers()})"

    def describe(self) -> str:
        """Figure 3 style rendering, one rule per line."""
        return "\n".join(str(a) for a in self)
