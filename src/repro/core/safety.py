"""Independent safety verification (Definitions 4.2 and 4.3).

Given *any* complete executor assignment — produced by the Figure 6
planner, by the exhaustive baseline, or by hand — this module re-derives
from first principles (Figure 5) every data flow the assignment entails
and checks each against the policy with ``CanView``.  The planner is
never trusted: tests assert that everything it emits passes this
verifier, and the tuple-level engine audits the same flows again at
runtime.

Flow derivation per node kind:

* leaf — no flow (a server reads its own relation);
* unary — no flow (executed where the operand already is);
* join with operands held at ``S_l``/``S_r`` (the child masters) and
  executor ``[M, V]``:

  - ``[S_l, NULL]``: one flow ``S_r -> S_l`` carrying the right operand;
  - ``[S_r, NULL]``: one flow ``S_l -> S_r`` carrying the left operand;
  - ``[S_l, S_r]``: the master ships its join-attribute projection to
    the slave and receives the slave-side join back (two flows);
  - ``[S_r, S_l]``: symmetric.

Flows between a server and itself are local hand-offs, not releases, and
are skipped (they are how degenerate both-operands-on-one-server joins
stay trivially safe).
"""

from __future__ import annotations

from typing import List, Optional

from repro.algebra.tree import JoinNode, LeafNode, QueryTreePlan, UnaryNode
from repro.core.access import can_view, explain_denial
from repro.core.assignment import Assignment
from repro.core.authorization import Policy
from repro.core.flows import Flow, semi_join_probe_profile, semi_join_result_profile
from repro.exceptions import PlanError, UnsafeAssignmentError


def enumerate_assignment_flows(
    assignment: Assignment, recipient: Optional[str] = None
) -> List[Flow]:
    """All data flows (including local hand-offs) the assignment entails.

    Args:
        assignment: a complete assignment with node profiles.
        recipient: if given, the party the final result is delivered to;
            a closing flow ``root master -> recipient`` carrying the root
            profile is appended.

    Raises:
        PlanError: if the assignment is structurally invalid
            (Definition 4.1) or incomplete.
    """
    assignment.validate_structure()
    plan = assignment.plan
    flows: List[Flow] = []
    skipped = assignment.skipped_node_ids()
    for node in plan:
        if node.node_id in skipped or assignment.is_materialized(node.node_id):
            # Materialized subtrees (failover reuse) entail no flow: the
            # result already sits at its server, put there by a previous
            # execution attempt whose flows were verified and audited.
            continue
        if isinstance(node, (LeafNode, UnaryNode)):
            continue
        if not isinstance(node, JoinNode):  # pragma: no cover - closed kinds
            raise PlanError(f"unknown node kind: {type(node).__name__}")
        flows.extend(_join_flows(assignment, node))
    if recipient is not None:
        root = plan.root
        flows.append(
            Flow(
                assignment.master(root.node_id),
                recipient,
                assignment.profile(root.node_id),
                f"result of n{root.node_id} -> recipient",
            )
        )
    return flows


def _join_flows(assignment: Assignment, node: JoinNode) -> List[Flow]:
    left_master = assignment.master(node.left.node_id)
    right_master = assignment.master(node.right.node_id)
    left_profile = assignment.profile(node.left.node_id)
    right_profile = assignment.profile(node.right.node_id)
    executor = assignment.executor(node.node_id)
    where = f"join n{node.node_id}"

    coordinator = assignment.coordinator(node.node_id)
    if coordinator is not None:
        # Third-party coordinator (footnote 3): both operands are shipped
        # to a server holding neither, which computes the join.
        return [
            Flow(left_master, coordinator, left_profile, f"{where}: R_l -> coordinator"),
            Flow(right_master, coordinator, right_profile, f"{where}: R_r -> coordinator"),
        ]

    if executor.slave is None:
        # Regular join at the master; the opposite operand is shipped in.
        if executor.master == left_master:
            return [
                Flow(right_master, left_master, right_profile, f"{where}: R_r -> master")
            ]
        if executor.master == right_master:
            return [
                Flow(left_master, right_master, left_profile, f"{where}: R_l -> master")
            ]
        raise PlanError(
            f"{where}: master {executor.master} holds neither operand "
            f"({left_master}, {right_master})"
        )

    # Semi-join: identify which operand the master holds.
    if executor.master == left_master and executor.slave == right_master:
        master_operand, slave_operand = left_profile, right_profile
    elif executor.master == right_master and executor.slave == left_master:
        master_operand, slave_operand = right_profile, left_profile
    else:
        raise PlanError(
            f"{where}: executor {executor} does not match operand servers "
            f"({left_master}, {right_master})"
        )
    master_join_attrs = node.path.attributes & master_operand.attributes
    if not master_join_attrs:
        raise PlanError(f"{where}: master operand carries no join attributes")
    probe = semi_join_probe_profile(master_operand, master_join_attrs)
    shipped_back = semi_join_result_profile(
        master_operand, slave_operand, master_join_attrs, node.path
    )
    return [
        Flow(executor.master, executor.slave, probe, f"{where}: probe -> slave"),
        Flow(executor.slave, executor.master, shipped_back, f"{where}: join -> master"),
    ]


def unauthorized_flows(
    policy: Policy, assignment: Assignment, recipient: Optional[str] = None
) -> List[Flow]:
    """The subset of the assignment's release flows the policy forbids.

    Distinct flows of one assignment frequently expose the same
    ``(profile, receiver)`` pair (e.g. both directions of a semi-join
    chain at the same server), so the verdicts are memoized locally —
    this also spares non-:class:`Policy` ``permits`` objects, which have
    no cache of their own, from re-deciding identical releases.
    """
    verdicts: dict = {}
    violations: List[Flow] = []
    for flow in enumerate_assignment_flows(assignment, recipient):
        if not flow.is_release:
            continue
        key = (flow.receiver, flow.profile)
        allowed = verdicts.get(key)
        if allowed is None:
            allowed = verdicts[key] = can_view(policy, flow.profile, flow.receiver)
        if not allowed:
            violations.append(flow)
    return violations


def verify_assignment(
    policy: Policy, assignment: Assignment, recipient: Optional[str] = None
) -> None:
    """Assert that an assignment is safe (Definition 4.2).

    Raises:
        UnsafeAssignmentError: listing every unauthorized flow, each with
            the per-rule explanation of :func:`explain_denial`.
        PlanError: if the assignment is structurally invalid.
    """
    violations = unauthorized_flows(policy, assignment, recipient)
    if not violations:
        return
    details = []
    for flow in violations:
        details.append(
            f"{flow.description}: {flow.sender} -> {flow.receiver} "
            f"exposing {flow.profile}\n"
            + explain_denial(policy, flow.profile, flow.receiver)
        )
    raise UnsafeAssignmentError(
        "assignment is unsafe; unauthorized flows:\n" + "\n".join(details)
    )


def is_safe(
    policy: Policy, assignment: Assignment, recipient: Optional[str] = None
) -> bool:
    """Boolean form of :func:`verify_assignment`."""
    try:
        verify_assignment(policy, assignment, recipient)
    except UnsafeAssignmentError:
        return False
    return True
