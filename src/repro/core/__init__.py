"""The paper's primary contribution.

This package implements the security model of Sections 3-5:

* :mod:`repro.core.profile` — relation profiles (Definition 3.2) and the
  composition rules of Figure 4;
* :mod:`repro.core.authorization` — authorizations
  ``[Attributes, JoinPath] -> Server`` (Definition 3.1) and policies;
* :mod:`repro.core.access` — the authorized-view check (Definition 3.3);
* :mod:`repro.core.closure` — chase-based closure of a policy under
  derivable views (Section 3.2);
* :mod:`repro.core.flows` — the join execution modes of Figure 5 and the
  views each mode exposes;
* :mod:`repro.core.planner` — the two-pass safe-assignment algorithm of
  Figure 6 (``Find_candidates`` / ``Assign_ex``);
* :mod:`repro.core.safety` — an independent verifier for Definition 4.2;
* :mod:`repro.core.thirdparty` — the third-party extension the paper
  sketches in footnote 3;
* :mod:`repro.core.openpolicy` — the open-policy variant of footnote 1;
* :mod:`repro.core.plancache` — the policy-epoch plan cache memoizing
  safe assignments across a repeated-query workload.
"""

from repro.core.profile import RelationProfile
from repro.core.authorization import Authorization, Policy
from repro.core.access import can_view, can_view_batch, covering_authorizations
from repro.core.closure import close_policy, extend_closure
from repro.core.plancache import PlanCache, PlanCacheStats
from repro.core.flows import (
    ExecutionMode,
    Flow,
    JoinExecution,
    REGULAR_LEFT,
    REGULAR_RIGHT,
    SEMI_LEFT_MASTER,
    SEMI_RIGHT_MASTER,
    join_executions,
)
from repro.core.candidates import Candidate, CandidateList
from repro.core.assignment import Assignment, Executor
from repro.core.planner import PlannerTrace, SafePlanner, plan_safely
from repro.core.safety import enumerate_assignment_flows, verify_assignment
from repro.core.thirdparty import ThirdPartyPlanner
from repro.core.openpolicy import OpenPolicy
from repro.core.costplanner import CostAwarePlan, CostAwareSafePlanner

__all__ = [
    "RelationProfile",
    "Authorization",
    "Policy",
    "can_view",
    "can_view_batch",
    "covering_authorizations",
    "close_policy",
    "extend_closure",
    "PlanCache",
    "PlanCacheStats",
    "ExecutionMode",
    "Flow",
    "JoinExecution",
    "REGULAR_LEFT",
    "REGULAR_RIGHT",
    "SEMI_LEFT_MASTER",
    "SEMI_RIGHT_MASTER",
    "join_executions",
    "Candidate",
    "CandidateList",
    "Assignment",
    "Executor",
    "SafePlanner",
    "PlannerTrace",
    "plan_safely",
    "enumerate_assignment_flows",
    "verify_assignment",
    "ThirdPartyPlanner",
    "OpenPolicy",
    "CostAwarePlan",
    "CostAwareSafePlanner",
]
