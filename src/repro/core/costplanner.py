"""Cost-aware safe planning — the two-step optimization of Section 5.

The paper closes by noting that distributed query optimization usually
runs in two steps — pick a good plan, then assign operations to servers
— and that its algorithm "nicely fits" the second step.  This module
supplies the missing first step and the glue: search the connected
left-deep join orders of a query, find a safe assignment for each
(either the Figure 6 heuristic or the exhaustive optimum), price every
candidate with the static communication estimator, and return the
cheapest safe strategy overall.

This subsumes the plain planner in capability (never worse, given the
same search budget) at the price of enumeration; use it when queries
are small and policies are tight, and the plain
:class:`~repro.core.planner.SafePlanner` otherwise.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.algebra.builder import QuerySpec, build_plan
from repro.algebra.optimizer import enumerate_join_orders
from repro.algebra.schema import Catalog
from repro.algebra.tree import QueryTreePlan
from repro.core.assignment import Assignment
from repro.core.planner import SafePlanner
from repro.engine.coster import (
    CostModel,
    HealthAwareCostModel,
    estimate_assignment_cost,
)
from repro.exceptions import InfeasiblePlanError, PlanError

#: Assignment-search strategies.
HEURISTIC = "heuristic"
EXHAUSTIVE = "exhaustive"


class StatsAwareCostModel(CostModel):
    """A cost model fed by harvested runtime statistics.

    Bundles a :class:`~repro.profiling.StatsStore` with a base
    :class:`~repro.engine.coster.CostModel`.  Pricing delegates to the
    base model unchanged — what the store changes is the *input* to the
    estimator: :meth:`effective_stats` overlays observed row counts,
    NDVs and widths onto the static catalog statistics, and
    :meth:`selectivity` exposes observed per-join-path selectivities
    that replace the System-R independence guess.  The
    :class:`CostAwareSafePlanner` applies both on every ``plan()`` call,
    so a store warmed by harvested profiles immediately re-ranks
    candidate strategies — the plan-quality feedback loop of ROADMAP
    item #1.

    Args:
        store: the statistics store (anything with ``table_stats`` and
            ``selectivity``; in practice a `StatsStore`).
        base: the underlying cost model (default: uniform bytes).
    """

    def __init__(self, store, base: "CostModel" = None) -> None:
        super().__init__(None)
        self.store = store
        self._base = base or CostModel()

    def transfer_cost(self, sender: str, receiver: str, byte_size: float) -> float:
        return self._base.transfer_cost(sender, receiver, byte_size)

    def effective_stats(self, static):
        """Static base stats overlaid with the store's observations."""
        return self.store.table_stats(static)

    def selectivity(self, path_key: str):
        """Observed selectivity of one join path (``None`` if unseen)."""
        return self.store.selectivity(path_key)


class CostAwarePlan:
    """Outcome of a cost-aware planning run.

    Attributes:
        plan: the chosen query tree plan (possibly a reordering of the
            user's FROM clause).
        assignment: the chosen safe executor assignment.
        estimated_cost: its predicted communication cost.
        orders_considered: join orders enumerated.
        orders_feasible: join orders admitting at least one safe
            assignment.
    """

    __slots__ = (
        "plan",
        "assignment",
        "estimated_cost",
        "orders_considered",
        "orders_feasible",
    )

    def __init__(
        self,
        plan: QueryTreePlan,
        assignment: Assignment,
        estimated_cost: float,
        orders_considered: int,
        orders_feasible: int,
    ) -> None:
        self.plan = plan
        self.assignment = assignment
        self.estimated_cost = estimated_cost
        self.orders_considered = orders_considered
        self.orders_feasible = orders_feasible

    def __repr__(self) -> str:
        return (
            f"CostAwarePlan(cost={self.estimated_cost:.0f}, "
            f"{self.orders_feasible}/{self.orders_considered} orders feasible)"
        )


class CostAwareSafePlanner:
    """Join-order search x safe-assignment search x cost estimation.

    Args:
        policy: the authorization policy (closed, ideally).
        base_stats: per-relation :class:`~repro.engine.coster.TableStats`
            driving the estimator.
        cost_model: optional :class:`~repro.engine.coster.CostModel`
            (e.g. wrapping a :class:`~repro.distributed.network.NetworkModel`).
        assignment_search: :data:`HEURISTIC` (Figure 6 per order, fast)
            or :data:`EXHAUSTIVE` (optimal per order, ``O(4^joins)``).
        search_join_orders: enumerate alternative connected orders; when
            false only the user's order is considered.
        health: optional
            :class:`~repro.distributed.health.HealthTracker` (duck-typed
            — anything with ``penalty_factor`` and
            ``quarantined_servers``).  Quarantined servers are excluded
            from the Figure 6 search when a safe assignment survives the
            exclusion (advisory: falls back to the full server set
            otherwise), and every candidate's estimated cost is
            surcharged on unhealthy routes, steering ties and near-ties
            toward healthy servers.
        obs: optional :class:`~repro.obs.trace.TraceContext`, forwarded
            to every :class:`~repro.core.planner.SafePlanner` the search
            constructs.
        batch_canview: forwarded to every
            :class:`~repro.core.planner.SafePlanner` the search
            constructs (see its docstring) — join-order search issues
            the same view checks across many orders, so the batched
            kernel pays off most here.  Default ``None`` keeps the
            planner's auto behaviour (batched untraced, scalar traced).
        stats_store: optional :class:`~repro.profiling.StatsStore` of
            harvested runtime statistics.  Shorthand for passing a
            :class:`StatsAwareCostModel` as ``cost_model``: on every
            ``plan()`` call the store's observations overlay
            ``base_stats`` and observed join selectivities replace the
            System-R guesses, for both the heuristic pricing and the
            exhaustive per-order search.
    """

    def __init__(
        self,
        policy,
        base_stats: Mapping[str, "TableStats"],
        cost_model=None,
        assignment_search: str = HEURISTIC,
        search_join_orders: bool = True,
        health=None,
        obs=None,
        batch_canview=None,
        stats_store=None,
    ) -> None:
        if assignment_search not in (HEURISTIC, EXHAUSTIVE):
            raise PlanError(
                f"unknown assignment search strategy: {assignment_search!r}"
            )
        self._policy = policy
        self._base_stats = base_stats
        self._health = health
        if isinstance(cost_model, StatsAwareCostModel) and stats_store is None:
            stats_store = cost_model.store
        elif stats_store is not None:
            cost_model = StatsAwareCostModel(stats_store, base=cost_model)
        self._stats_store = stats_store
        if health is not None:
            cost_model = HealthAwareCostModel(health, base=cost_model)
        self._cost_model = cost_model
        self._assignment_search = assignment_search
        self._search_join_orders = search_join_orders
        self._obs = obs
        self._batch_canview = batch_canview
        self._heuristic = SafePlanner(policy, obs=obs, batch_canview=batch_canview)

    def plan(self, catalog: Catalog, spec: QuerySpec) -> CostAwarePlan:
        """Find the cheapest safe strategy for ``spec``.

        Raises:
            InfeasiblePlanError: when no considered order admits a safe
                assignment.
        """
        # Activate the catalog's interned kernel up front: every join
        # order enumerated below shares the same universe, leaf bitsets
        # and (via the reused planner) one memoized CanView cache, so
        # view checks repeated across orders are answered once.
        catalog.universe
        # Resolve the effective statistics once per planning call: a
        # stats store warmed between calls immediately re-ranks orders.
        stats = self._base_stats
        selectivities = None
        if self._stats_store is not None:
            stats = self._stats_store.table_stats(stats)
            selectivities = self._stats_store
        if self._search_join_orders:
            candidates = enumerate_join_orders(catalog, spec)
        else:
            candidates = iter([spec])
        best: Optional[Tuple[QueryTreePlan, Assignment, float]] = None
        considered = 0
        feasible = 0
        for candidate in candidates:
            considered += 1
            try:
                tree = build_plan(catalog, candidate)
            except PlanError:
                continue
            found = self._best_assignment_for(tree, stats, selectivities)
            if found is None:
                continue
            feasible += 1
            assignment, cost = found
            if cost is None:
                cost = estimate_assignment_cost(
                    assignment, stats, self._cost_model, selectivities
                )
            if best is None or cost < best[2]:
                best = (tree, assignment, cost)
        if best is None:
            raise InfeasiblePlanError(
                f"no safe assignment exists for any of the {considered} "
                "considered join orders"
            )
        return CostAwarePlan(best[0], best[1], best[2], considered, feasible)

    def shard_estimate(
        self,
        spec: QuerySpec,
        schemes,
        certificate,
        tables=None,
    ):
        """Partition-aware sizing of a certified sharded execution.

        Delegates to :func:`repro.sharding.cost.estimate_sharded_cost`,
        feeding it this planner's statistics store so harvested runtime
        row counts — the same observations that re-rank join orders —
        also drive the partitioned-vs-single-copy decision.

        Args:
            spec: the parsed query.
            schemes: partition schemes by relation name.
            certificate: a
                :class:`~repro.sharding.ShardCertificate` from the
                parallel-correctness checker.
            tables: optional relation-name → table mapping used as a
                row-count fallback for relations the store has not
                observed.

        Returns:
            a :class:`~repro.sharding.ShardCostEstimate`.
        """
        from repro.sharding.cost import estimate_sharded_cost

        return estimate_sharded_cost(
            spec,
            schemes,
            certificate,
            stats=self._stats_store,
            tables=tables,
        )

    def recommend_execution_mode(
        self,
        spec: QuerySpec,
        schemes,
        certificate,
        tables=None,
        min_speedup: Optional[float] = None,
    ) -> str:
        """``"partitioned"``, ``"multiround"`` or ``"single_copy"``.

        Cost advice only — the correctness gate stays with the checker:
        an uncertified certificate always maps to single-copy no matter
        what the statistics say.
        """
        from repro.sharding.cost import MIN_SPEEDUP, choose_execution_mode

        return choose_execution_mode(
            spec,
            schemes,
            certificate,
            stats=self._stats_store,
            tables=tables,
            min_speedup=min_speedup if min_speedup is not None else MIN_SPEEDUP,
        )

    def _best_assignment_for(
        self, tree: QueryTreePlan, stats=None, selectivities=None
    ) -> Optional[Tuple[Assignment, Optional[float]]]:
        if stats is None:
            stats = self._base_stats
        if self._assignment_search == HEURISTIC:
            quarantined = (
                tuple(sorted(self._health.quarantined_servers()))
                if self._health is not None
                else ()
            )
            if quarantined:
                # Advisory exclusion: prefer a plan that routes around
                # quarantined servers, fall back to the full server set.
                try:
                    restricted = SafePlanner(
                        self._policy,
                        excluded_servers=quarantined,
                        obs=self._obs,
                        batch_canview=self._batch_canview,
                    )
                    assignment, _ = restricted.plan(tree)
                    return assignment, None
                except InfeasiblePlanError:
                    pass
            try:
                assignment, _ = self._heuristic.plan(tree)
            except InfeasiblePlanError:
                return None
            return assignment, None
        from repro.baselines.exhaustive import optimal_safe_assignment

        best = optimal_safe_assignment(
            self._policy, tree, stats, self._cost_model, selectivities
        )
        if best is None:
            return None
        return best
