"""Open-policy variant (footnote 1).

The paper assumes a closed policy but notes the approach "can be adapted
to an open policy scenario, where data are visible by default and
negative rules specify restrictions".  This module provides that
adaptation: an :class:`OpenPolicy` holds *denials* of the same
``[Attributes, JoinPath] -> Server`` shape and exposes a
``permits(profile, server)`` method, making it a drop-in policy for the
planner, the verifier and the engine (they all go through
:func:`repro.core.access.can_view`, which duck-types on ``permits``).

Denial semantics (our interpretation — the paper defers to [17] without
details, so we pick the natural dual of Definition 3.3 and document it):
a denial ``[A, J] -x-> S`` blocks the release of a relation with profile
:math:`[R^\\pi, R^\\bowtie, R^\\sigma]` to ``S`` iff

1. :math:`(R^\\pi \\cup R^\\sigma) \\cap A \\neq \\emptyset` — the view
   exposes at least one denied attribute, and
2. :math:`J \\subseteq R^\\bowtie` — the view embodies at least the denied
   association (an empty ``J`` therefore denies the attributes in every
   context).

Clause 2 is a containment rather than Definition 3.3's equality because
denials and grants dualize differently: a grant for a *specific*
association must not leak stronger associations (hence equality), while
a denial of an association must also block every view that *refines* it
(hence containment) — otherwise adding an extra join condition would
launder a forbidden association.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.core.authorization import Authorization
from repro.core.profile import RelationProfile
from repro.exceptions import PolicyError


class Denial(Authorization):
    """A negative rule; structurally identical to an authorization."""

    def __repr__(self) -> str:
        base = super().__repr__()
        return base.replace(" -> ", " -x-> ")

    __str__ = __repr__


class OpenPolicy:
    """Default-allow policy restricted by denials.

    Iteration and :meth:`denials_for` follow insertion order per server.
    """

    def __init__(self, denials: Iterable[Denial] = ()) -> None:
        self._by_server: Dict[str, List[Denial]] = {}
        self._all: set = set()
        for denial in denials:
            self.deny(denial)

    def deny(self, denial: Denial) -> None:
        """Add one denial.

        Raises:
            PolicyError: on a duplicate or a non-:class:`Denial` rule.
        """
        if not isinstance(denial, Denial):
            raise PolicyError("open policies contain Denial objects")
        if denial in self._all:
            raise PolicyError(f"duplicate denial: {denial}")
        self._all.add(denial)
        self._by_server.setdefault(denial.server, []).append(denial)

    def denials_for(self, server: str) -> Tuple[Denial, ...]:
        """All denials targeting ``server``."""
        return tuple(self._by_server.get(server, ()))

    def blocking_denials(
        self, profile: RelationProfile, server: str
    ) -> List[Denial]:
        """The denials that block releasing ``profile`` to ``server``."""
        blocked = []
        for denial in self.denials_for(server):
            exposes_denied = bool(profile.exposed_attributes & denial.attributes)
            embodies_association = denial.join_path.issubset(profile.join_path)
            if exposes_denied and embodies_association:
                blocked.append(denial)
        return blocked

    def permits(self, profile: RelationProfile, server: str) -> bool:
        """Whether ``server`` may view ``profile`` (default allow)."""
        return not self.blocking_denials(profile, server)

    def servers(self) -> List[str]:
        """All servers targeted by at least one denial, sorted."""
        return sorted(self._by_server)

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[Denial]:
        for server in sorted(self._by_server):
            yield from self._by_server[server]

    def __repr__(self) -> str:
        return f"OpenPolicy({len(self._all)} denials, servers={self.servers()})"

    def describe(self) -> str:
        """One denial per line."""
        return "\n".join(str(d) for d in self)
