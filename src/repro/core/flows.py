"""Join execution modes and the views they expose (Figure 5).

A join :math:`R_l \\bowtie_{J_{lr}} R_r`, with the left operand held by
server ``S_l`` and the right by ``S_r``, can execute in four modes,
written ``[master, slave]``:

* ``[S_l, NULL]`` — *regular join at the left server*: ``S_r`` ships its
  whole relation to ``S_l``; ``S_l`` must be authorized to view
  :math:`[R_r^\\pi, R_r^\\bowtie, R_r^\\sigma]`.
* ``[S_r, NULL]`` — symmetric regular join at the right server.
* ``[S_l, S_r]`` — *semi-join with the left server as master* (5 steps):
  ``S_l`` sends :math:`\\pi_{J_l}(R_l)` to ``S_r`` (exposing
  :math:`[J_l, R_l^\\bowtie, R_l^\\sigma]`); ``S_r`` joins it with
  :math:`R_r` and ships the result back (exposing
  :math:`[J_l \\cup R_r^\\pi,\\;R_l^\\bowtie \\cup R_r^\\bowtie \\cup J_{lr},\\;
  R_l^\\sigma \\cup R_r^\\sigma]`); ``S_l`` finishes with a natural join.
* ``[S_r, S_l]`` — symmetric semi-join mastered by the right server.

This module computes, for each mode, the data *flows* (sender, receiver,
exposed profile) that query execution entails.  The planner checks these
profiles with ``CanView`` before admitting a mode; the independent
verifier and the tuple-level engine re-derive the very same flows.

As the paper notes, semi-joins both cost less (only matching tuples
travel) and expose less (the slave sees only join-attribute values), so
the planner prefers them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algebra.attributes import AttributeSet
from repro.algebra.joins import JoinPath
from repro.core.profile import RelationProfile
from repro.exceptions import PlanError

#: Mode tags (the ``[master, slave]`` pairs of Figure 5).
REGULAR_LEFT = "[S_l, NULL]"
REGULAR_RIGHT = "[S_r, NULL]"
SEMI_LEFT_MASTER = "[S_l, S_r]"
SEMI_RIGHT_MASTER = "[S_r, S_l]"

#: All modes, in the paper's Figure 5 row order.
ALL_MODES = (REGULAR_LEFT, REGULAR_RIGHT, SEMI_LEFT_MASTER, SEMI_RIGHT_MASTER)


class ExecutionMode:
    """Descriptor of one Figure 5 execution mode.

    Attributes:
        tag: one of the four mode constants.
        is_semi_join: whether the mode is a semi-join.
        master_is_left: whether the left operand's server is the master.
    """

    __slots__ = ("tag", "is_semi_join", "master_is_left")

    def __init__(self, tag: str) -> None:
        if tag not in ALL_MODES:
            raise PlanError(f"unknown execution mode: {tag!r}")
        self.tag = tag
        self.is_semi_join = tag in (SEMI_LEFT_MASTER, SEMI_RIGHT_MASTER)
        self.master_is_left = tag in (REGULAR_LEFT, SEMI_LEFT_MASTER)

    _INTERNED: dict = {}

    @classmethod
    def of(cls, tag: str) -> "ExecutionMode":
        """The shared descriptor for ``tag`` — there are only four modes,
        so the hot enumeration paths reuse one instance per tag."""
        mode = cls._INTERNED.get(tag)
        if mode is None:
            mode = cls._INTERNED[tag] = cls(tag)
        return mode

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ExecutionMode):
            return NotImplemented
        return self.tag == other.tag

    def __hash__(self) -> int:
        return hash(self.tag)

    def __repr__(self) -> str:
        return f"ExecutionMode({self.tag})"


class Flow:
    """A single data communication: ``sender`` releases ``profile`` to
    ``receiver``.

    A flow whose sender equals its receiver is a local hand-off, entails
    no release, and never needs authorization.
    """

    __slots__ = ("sender", "receiver", "profile", "description")

    def __init__(
        self, sender: str, receiver: str, profile: RelationProfile, description: str
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.profile = profile
        self.description = description

    @property
    def is_release(self) -> bool:
        """Whether data actually crosses a server boundary."""
        return self.sender != self.receiver

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Flow):
            return NotImplemented
        return (
            self.sender == other.sender
            and self.receiver == other.receiver
            and self.profile == other.profile
            and self.description == other.description
        )

    def __hash__(self) -> int:
        return hash((self.sender, self.receiver, self.profile, self.description))

    def __repr__(self) -> str:
        return f"Flow({self.sender} -> {self.receiver}: {self.profile} ({self.description}))"


class JoinExecution:
    """One concrete way of executing one join: a mode plus its flows.

    Attributes:
        mode: the :class:`ExecutionMode`.
        master: server computing the join (holds the result afterwards).
        slave: cooperating server for semi-joins, else ``None``.
        flows: the communications the mode entails, in execution order.
    """

    __slots__ = ("mode", "master", "slave", "flows")

    def __init__(
        self,
        mode: ExecutionMode,
        master: str,
        slave: Optional[str],
        flows: Tuple[Flow, ...],
    ) -> None:
        self.mode = mode
        self.master = master
        self.slave = slave
        self.flows = flows

    def required_views(self) -> List[Tuple[str, RelationProfile]]:
        """The ``(receiver, profile)`` pairs that must be authorized —
        flows that are actual releases."""
        return [(f.receiver, f.profile) for f in self.flows if f.is_release]

    def __repr__(self) -> str:
        return f"JoinExecution({self.mode.tag}, master={self.master}, slave={self.slave})"


def semi_join_probe_profile(
    operand_profile: RelationProfile, join_attributes: AttributeSet
) -> RelationProfile:
    """Profile of the projection of an operand on its join attributes —
    what the master sends to the slave in a semi-join
    (:math:`[J_l, R_l^\\bowtie, R_l^\\sigma]`)."""
    return operand_profile.project(join_attributes)


def semi_join_result_profile(
    master_operand: RelationProfile,
    slave_operand: RelationProfile,
    master_join_attributes: AttributeSet,
    conditions: JoinPath,
) -> RelationProfile:
    """Profile of what the slave ships back in a semi-join:
    :math:`[J_m \\cup R_s^\\pi,\\;R_m^\\bowtie \\cup R_s^\\bowtie \\cup j,\\;
    R_m^\\sigma \\cup R_s^\\sigma]`."""
    probe = semi_join_probe_profile(master_operand, master_join_attributes)
    return probe.join(slave_operand, conditions)


def join_executions(
    left_profile: RelationProfile,
    right_profile: RelationProfile,
    left_server: str,
    right_server: str,
    conditions: JoinPath,
) -> List[JoinExecution]:
    """All four Figure 5 executions of one join, in Figure 5 row order.

    Args:
        left_profile: profile of the left operand :math:`R_l`.
        right_profile: profile of the right operand :math:`R_r`.
        left_server: server holding the left operand (``S_l``).
        right_server: server holding the right operand (``S_r``).
        conditions: the join's own conditions :math:`J_{lr}`.

    The join attributes :math:`J_l` / :math:`J_r` are derived by
    intersecting the condition attributes with each operand's attributes.

    Raises:
        PlanError: if a condition attribute belongs to neither operand.
    """
    condition_attributes = conditions.attributes
    j_left = condition_attributes & left_profile.attributes
    j_right = condition_attributes & right_profile.attributes
    stray = condition_attributes - (left_profile.attributes | right_profile.attributes)
    if stray:
        raise PlanError(
            f"join conditions reference attributes of neither operand: {sorted(stray)}"
        )

    executions = []

    # [S_l, NULL]: S_r ships R_r to S_l.
    executions.append(
        JoinExecution(
            ExecutionMode.of(REGULAR_LEFT),
            master=left_server,
            slave=None,
            flows=(
                Flow(right_server, left_server, right_profile, "R_r -> master"),
            ),
        )
    )

    # [S_r, NULL]: S_l ships R_l to S_r.
    executions.append(
        JoinExecution(
            ExecutionMode.of(REGULAR_RIGHT),
            master=right_server,
            slave=None,
            flows=(
                Flow(left_server, right_server, left_profile, "R_l -> master"),
            ),
        )
    )

    # [S_l, S_r]: semi-join mastered by the left server.
    if j_left:
        probe = semi_join_probe_profile(left_profile, j_left)
        shipped_back = semi_join_result_profile(
            left_profile, right_profile, j_left, conditions
        )
        executions.append(
            JoinExecution(
                ExecutionMode.of(SEMI_LEFT_MASTER),
                master=left_server,
                slave=right_server,
                flows=(
                    Flow(left_server, right_server, probe, "pi_Jl(R_l) -> slave"),
                    Flow(right_server, left_server, shipped_back, "R_Jlr -> master"),
                ),
            )
        )

    # [S_r, S_l]: semi-join mastered by the right server.
    if j_right:
        probe = semi_join_probe_profile(right_profile, j_right)
        shipped_back = semi_join_result_profile(
            right_profile, left_profile, j_right, conditions
        )
        executions.append(
            JoinExecution(
                ExecutionMode.of(SEMI_RIGHT_MASTER),
                master=right_server,
                slave=left_server,
                flows=(
                    Flow(right_server, left_server, probe, "pi_Jr(R_r) -> slave"),
                    Flow(left_server, right_server, shipped_back, "R_lJr -> master"),
                ),
            )
        )

    return executions
