"""Centralized plan evaluation — the correctness oracle.

Evaluates a query tree plan against a set of base tables *in one place*,
ignoring servers, authorizations and communication entirely.  The
distributed executor must produce exactly this result (a property the
test suite checks under random workloads); the oracle is also what a
trusted warehouse would compute, making it the natural baseline for the
communication-cost benchmarks.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.tree import (
    PROJECT,
    JoinNode,
    LeafNode,
    PlanNode,
    QueryTreePlan,
    UnaryNode,
)
from repro.engine.data import Table
from repro.exceptions import ExecutionError


def evaluate_plan(plan: QueryTreePlan, tables: Mapping[str, Table]) -> Table:
    """Evaluate ``plan`` centrally over ``tables``.

    Args:
        plan: the query tree plan.
        tables: base tables keyed by relation name; every leaf relation
            must be present.

    Raises:
        ExecutionError: on a missing base table or an operator failure.
    """
    return _evaluate(plan.root, tables)


def _evaluate(node: PlanNode, tables: Mapping[str, Table]) -> Table:
    if isinstance(node, LeafNode):
        name = node.relation.name
        if name not in tables:
            raise ExecutionError(f"no instance provided for base relation {name!r}")
        table = tables[name]
        missing = set(node.relation.attributes) - set(table.attributes)
        if missing:
            raise ExecutionError(
                f"instance of {name!r} lacks columns {sorted(missing)}"
            )
        return table
    if isinstance(node, UnaryNode):
        child = _evaluate(node.left, tables)
        if node.operator == PROJECT:
            return child.project(sorted(node.projection_attributes))
        return child.select(node.predicate)
    if isinstance(node, JoinNode):
        left = _evaluate(node.left, tables)
        right = _evaluate(node.right, tables)
        return left.equi_join(right, node.path)
    raise ExecutionError(f"unknown node kind: {type(node).__name__}")
