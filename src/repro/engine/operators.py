"""Batch-first operators and centralized plan evaluation.

Since the batch-first refactor, local evaluation streams **blocks**
through a minimal operator interface instead of materializing a new
table per algebra step:

* a :class:`Block` is a horizontal slice of a columnar relation —
  per-attribute arrays of interned ids sharing the table pool;
* a :class:`BatchOperator` exposes ``open()`` / ``next_batch()`` /
  ``close()``; ``next_batch`` returns ``None`` at exhaustion;
* :class:`TableScan`, :class:`ProjectOperator`,
  :class:`FilterOperator` and :class:`HashJoinOperator` cover the plan
  algebra; :func:`materialize` drains any operator into a
  :class:`~repro.engine.data.Table` (deduplicating across blocks, so
  set semantics hold globally no matter how the stream was sliced).

The operators work on id columns only — values are never decoded on the
hot path — and every validation error matches the corresponding
table-level operator byte for byte, so the streamed pipeline is
observationally identical to the one-table-per-step seed evaluator (the
Hypothesis differential suite asserts this row for row).  One documented
exception: when a projection over a *join stream* collapses value-equal
rows whose cells differ only in type (``1`` vs ``True``), the surviving
representative is the first in stream order rather than the first in
canonical order — the resulting relations are still equal under value
semantics, which is all set semantics promises.

:func:`evaluate_plan` remains the correctness oracle: it evaluates a
query tree plan against a set of base tables *in one place*, ignoring
servers, authorizations and communication entirely.  The distributed
executor must produce exactly this result (a property the test suite
checks under random workloads); the oracle is also what a trusted
warehouse would compute, making it the natural baseline for the
communication-cost benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.algebra.joins import JoinPath
from repro.algebra.predicates import Predicate
from repro.algebra.tree import (
    PROJECT,
    JoinNode,
    LeafNode,
    PlanNode,
    QueryTreePlan,
    UnaryNode,
)
from repro.engine.data import InternPool, Table, _none_class
from repro.exceptions import ExecutionError

#: Rows per block when scanning a stored table.  Large enough that the
#: per-block bookkeeping amortizes away, small enough that pipelines
#: keep a bounded working set per step.
DEFAULT_BATCH_SIZE = 1024


class Block:
    """One batch of rows: per-attribute id arrays over a shared pool.

    Blocks are produced and consumed by :class:`BatchOperator`
    implementations; they are plain containers with no set semantics of
    their own — deduplication happens when a stream is materialized
    into a :class:`~repro.engine.data.Table`.
    """

    __slots__ = ("attributes", "columns", "pool")

    def __init__(
        self,
        attributes: Tuple[str, ...],
        columns: List[List[int]],
        pool: InternPool,
    ) -> None:
        self.attributes = attributes
        self.columns = columns
        self.pool = pool

    @property
    def row_count(self) -> int:
        """Number of rows in the block."""
        return len(self.columns[0]) if self.columns else 0

    def to_table(self) -> Table:
        """The block's rows as a (deduplicated) table."""
        return Table._from_columns(
            self.attributes, [list(c) for c in self.columns], self.pool
        )

    def __repr__(self) -> str:
        return f"Block({list(self.attributes)}, {self.row_count} rows)"


class BatchOperator:
    """Base class of the streaming operator interface.

    Lifecycle: ``open()`` once, ``next_batch()`` until it returns
    ``None``, ``close()`` once (also safe after an error).  ``attributes``
    is the output schema and is known before ``open`` — plan validation
    happens at construction time so a mis-wired pipeline fails fast with
    the same errors the table-level operators raise.
    """

    __slots__ = ("attributes",)

    def __init__(self, attributes: Tuple[str, ...]) -> None:
        self.attributes = attributes

    def open(self) -> None:
        """Acquire inputs (build hash tables, open children)."""

    def next_batch(self) -> Optional[Block]:
        """The next non-empty block, or ``None`` when exhausted."""
        raise NotImplementedError

    def close(self) -> None:
        """Release inputs; idempotent."""


class TableScan(BatchOperator):
    """Stream a stored table in blocks of ``batch_size`` rows."""

    __slots__ = ("_table", "_batch_size", "_offset")

    def __init__(self, table: Table, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        super().__init__(table.attributes)
        if batch_size < 1:
            raise ExecutionError(f"batch size must be positive, got {batch_size}")
        self._table = table
        self._batch_size = batch_size
        self._offset = 0

    def open(self) -> None:
        if self._table._pool.has_aliases:
            # With cross-type aliases (1 vs True) in the pool, stream in
            # canonical order so downstream keep-first deduplication
            # picks the same representatives the table-level operators
            # do.  Without aliases order cannot affect any result.
            self._table._ensure_canonical()
        self._offset = 0

    def next_batch(self) -> Optional[Block]:
        table = self._table
        offset = self._offset
        if offset >= len(table):
            return None
        end = offset + self._batch_size
        self._offset = end
        columns = [column[offset:end] for column in table._columns]
        return Block(self.attributes, columns, table._pool)


class ProjectOperator(BatchOperator):
    """:math:`\\pi_X` over a stream.

    Column selection and the projection contract (duplicates rejected,
    output follows the child's attribute order) are enforced up front;
    per block only the kept columns are forwarded.  Cross-block
    duplicate collapse is deferred to :func:`materialize`.
    """

    __slots__ = ("_child", "_indices")

    def __init__(self, child: BatchOperator, attributes) -> None:
        requested = list(attributes)
        requested_set = set(requested)
        if len(requested_set) != len(requested):
            seen: set = set()
            duplicates = sorted({a for a in requested if a in seen or seen.add(a)})
            raise ExecutionError(f"cannot project on duplicated columns: {duplicates}")
        missing = requested_set - set(child.attributes)
        if missing:
            raise ExecutionError(
                f"cannot project on missing columns: {sorted(missing)}"
            )
        kept = [a for a in child.attributes if a in requested_set]
        super().__init__(tuple(kept))
        self._child = child
        index = {name: i for i, name in enumerate(child.attributes)}
        self._indices = [index[a] for a in kept]

    def open(self) -> None:
        self._child.open()

    def next_batch(self) -> Optional[Block]:
        block = self._child.next_batch()
        if block is None:
            return None
        columns = [block.columns[i] for i in self._indices]
        return Block(self.attributes, columns, block.pool)

    def close(self) -> None:
        self._child.close()


class FilterOperator(BatchOperator):
    """:math:`\\sigma_C` over a stream — mask-and-compress per block."""

    __slots__ = ("_child", "_predicate")

    def __init__(self, child: BatchOperator, predicate: Predicate) -> None:
        super().__init__(child.attributes)
        self._child = child
        self._predicate = predicate

    def open(self) -> None:
        self._child.open()

    def next_batch(self) -> Optional[Block]:
        predicate = self._predicate
        while True:
            block = self._child.next_batch()
            if block is None:
                return None
            if predicate.is_true():
                return block
            # Borrow the table-level mask kernel (vectorized single-atom
            # fast path, row-dict fallback with the seed's exact error
            # semantics).  The wrapper adopts the block's columns without
            # copying or re-deduplicating.
            view = Table._from_columns(
                block.attributes, block.columns, block.pool,
                deduped=True, canonical=True,
            )
            mask = view._predicate_mask(predicate)
            if all(mask):
                return block
            columns = [
                [v for v, keep in zip(column, mask) if keep]
                for column in block.columns
            ]
            if columns and columns[0]:
                return Block(block.attributes, columns, block.pool)
            # Entire block filtered out — pull the next one.

    def close(self) -> None:
        self._child.close()


class HashJoinOperator(BatchOperator):
    """Streaming hash equi-join: buffer the build side, stream the probe.

    The right child is the build side — it is drained at ``open()``
    into class-id hash buckets (rows whose key contains ``None`` never
    enter, matching the table-level null-key semantics).  Probe blocks
    then stream through, each emitting one joined block.  Output columns
    are the probe (left) child's followed by the build (right) child's —
    the same orientation as ``left.equi_join(right, path)``.
    """

    __slots__ = ("_left", "_right", "_pairs", "_buckets", "_none_class")

    def __init__(
        self, left: BatchOperator, right: BatchOperator, conditions: JoinPath
    ) -> None:
        left_index = {name: i for i, name in enumerate(left.attributes)}
        right_index = {name: i for i, name in enumerate(right.attributes)}
        pairs: List[Tuple[int, int]] = []
        for condition in conditions:
            if condition.first in left_index and condition.second in right_index:
                pairs.append((left_index[condition.first], right_index[condition.second]))
            elif condition.second in left_index and condition.first in right_index:
                pairs.append((left_index[condition.second], right_index[condition.first]))
            else:
                raise ExecutionError(
                    f"join condition {condition} does not bridge the tables"
                )
        overlap = set(left.attributes) & set(right.attributes)
        if overlap:
            raise ExecutionError(
                f"equi-join operands share columns {sorted(overlap)}; use "
                "natural_join for recombination joins"
            )
        super().__init__(left.attributes + right.attributes)
        self._left = left
        self._right = right
        self._pairs = pairs
        self._buckets: Optional[Dict[Tuple[int, ...], List[Tuple[int, ...]]]] = None
        self._none_class = 0

    def open(self) -> None:
        self._left.open()
        self._right.open()
        pool = None
        buckets: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        key_indices = [j for _, j in self._pairs]
        while True:
            block = self._right.next_batch()
            if block is None:
                break
            pool = block.pool
            none_class = _none_class(pool)
            self._none_class = none_class
            view = Table._from_columns(
                block.attributes, block.columns, pool, deduped=True, canonical=True
            )
            keys = zip(*[view._class_view(block.columns[j]) for j in key_indices])
            for row, key in zip(zip(*block.columns), keys):
                if none_class in key:
                    continue
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [row]
                else:
                    bucket.append(row)
        self._buckets = buckets

    def next_batch(self) -> Optional[Block]:
        buckets = self._buckets
        if buckets is None:
            raise ExecutionError("HashJoinOperator.next_batch before open()")
        key_indices = [i for i, _ in self._pairs]
        width = len(self.attributes)
        while True:
            block = self._left.next_batch()
            if block is None:
                return None
            if not buckets:
                continue
            pool = block.pool
            none_class = _none_class(pool)
            view = Table._from_columns(
                block.attributes, block.columns, pool, deduped=True, canonical=True
            )
            keys = zip(*[view._class_view(block.columns[i]) for i in key_indices])
            joined: List[Tuple[int, ...]] = []
            for row, key in zip(zip(*block.columns), keys):
                if none_class in key:
                    continue
                for match in buckets.get(key, ()):
                    joined.append(row + match)
            if joined:
                columns = [list(col) for col in zip(*joined)]
                return Block(self.attributes, columns, pool)
            # No matches in this probe block — keep pulling.

    def close(self) -> None:
        self._left.close()
        self._right.close()
        self._buckets = None


def materialize(operator: BatchOperator, observer=None) -> Table:
    """Drain a batch operator into a table.

    Blocks are concatenated column-wise, then deduplicated once (on
    interned class ids) when the table is formed — set semantics hold
    regardless of block boundaries.  Row order stays lazy: nothing here
    sorts.

    Args:
        operator: the pipeline root.
        observer: optional callable ``(blocks, rows)`` invoked once with
            the stream's batch accounting (the executor feeds its
            ``repro_exec_batch_*`` metrics from this).
    """
    attrs = operator.attributes
    columns: List[List[int]] = [[] for _ in attrs]
    pool = None
    blocks = 0
    rows = 0
    operator.open()
    try:
        while True:
            block = operator.next_batch()
            if block is None:
                break
            blocks += 1
            rows += block.row_count
            pool = block.pool
            for accumulated, produced in zip(columns, block.columns):
                accumulated.extend(produced)
    finally:
        operator.close()
    if observer is not None:
        observer(blocks, rows)
    if pool is None:
        return Table.empty(attrs)
    return Table._from_columns(attrs, columns, pool)


def compile_plan(
    node: PlanNode,
    tables: Mapping[str, Table],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> BatchOperator:
    """Compile a plan subtree into a batch-operator pipeline.

    Base-table presence and leaf schema coverage are validated during
    compilation (before any block flows), with the same errors the
    one-shot evaluator raised.
    """
    if isinstance(node, LeafNode):
        name = node.relation.name
        if name not in tables:
            raise ExecutionError(f"no instance provided for base relation {name!r}")
        table = tables[name]
        missing = set(node.relation.attributes) - set(table.attributes)
        if missing:
            raise ExecutionError(
                f"instance of {name!r} lacks columns {sorted(missing)}"
            )
        return TableScan(table, batch_size)
    if isinstance(node, UnaryNode):
        child = compile_plan(node.left, tables, batch_size)
        if node.operator == PROJECT:
            return ProjectOperator(child, sorted(node.projection_attributes))
        return FilterOperator(child, node.predicate)
    if isinstance(node, JoinNode):
        left = compile_plan(node.left, tables, batch_size)
        right = compile_plan(node.right, tables, batch_size)
        return HashJoinOperator(left, right, node.path)
    raise ExecutionError(f"unknown node kind: {type(node).__name__}")


def evaluate_plan(
    plan: QueryTreePlan,
    tables: Mapping[str, Table],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Table:
    """Evaluate ``plan`` centrally over ``tables``.

    Args:
        plan: the query tree plan.
        tables: base tables keyed by relation name; every leaf relation
            must be present.
        batch_size: rows per scanned block.

    Raises:
        ExecutionError: on a missing base table or an operator failure.
    """
    return materialize(compile_plan(plan.root, tables, batch_size))
