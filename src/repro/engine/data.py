"""Immutable in-memory tables with set semantics.

The relational model of the paper (and of its reference [2]) is
set-based: a relation is a *set* of tuples.  :class:`Table` therefore
deduplicates rows, and every operator returns a new table.  Attribute
names are globally distinct (Section 2), which makes natural joins on
shared column names unambiguous — the semi-join recombination step
relies on this.

Row values must be hashable scalars (``str``, ``int``, ``float``,
``bool`` or ``None``); this keeps rows hashable for set semantics and
byte accounting honest.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.joins import JoinPath
from repro.algebra.predicates import Predicate
from repro.exceptions import ExecutionError

#: Allowed scalar types for cell values.
_SCALARS = (str, int, float, bool)

Row = Tuple[object, ...]


def _check_value(value: object) -> object:
    if value is None or isinstance(value, _SCALARS):
        return value
    raise ExecutionError(
        f"cell values must be scalars (str/int/float/bool/None), got "
        f"{type(value).__name__}"
    )


class Table:
    """An immutable relation instance.

    Args:
        attributes: ordered column names.
        rows: iterable of value tuples aligned with ``attributes`` (or
            use :meth:`from_rows` for dict-shaped input).  Duplicates are
            removed; row order is canonicalized, so two tables with the
            same content compare equal.
    """

    __slots__ = ("_attributes", "_index", "_rows")

    def __init__(self, attributes: Sequence[str], rows: Iterable[Row] = ()) -> None:
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise ExecutionError(f"duplicate column names: {attrs}")
        if not attrs:
            raise ExecutionError("a table needs at least one column")
        self._attributes = attrs
        self._index = {name: i for i, name in enumerate(attrs)}
        unique = set()
        for row in rows:
            row = tuple(_check_value(v) for v in row)
            if len(row) != len(attrs):
                raise ExecutionError(
                    f"row arity {len(row)} does not match schema arity {len(attrs)}"
                )
            unique.add(row)
        self._rows: Tuple[Row, ...] = tuple(
            sorted(unique, key=lambda r: tuple((v is None, str(type(v)), str(v)) for v in r))
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls, attributes: Sequence[str], rows: Iterable[Mapping[str, object]]
    ) -> "Table":
        """Build from dict-shaped rows (missing keys become ``None``)."""
        attrs = tuple(attributes)
        return cls(attrs, (tuple(row.get(a) for a in attrs) for row in rows))

    @classmethod
    def empty(cls, attributes: Sequence[str]) -> "Table":
        """An empty table with the given columns."""
        return cls(attributes, ())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Ordered column names."""
        return self._attributes

    @property
    def rows(self) -> Tuple[Row, ...]:
        """Canonically ordered, deduplicated rows."""
        return self._rows

    def row_dicts(self) -> List[Dict[str, object]]:
        """Rows as dictionaries (for predicates and display)."""
        return [dict(zip(self._attributes, row)) for row in self._rows]

    def column(self, attribute: str) -> List[object]:
        """All values of one column, in row order."""
        index = self._column_index(attribute)
        return [row[index] for row in self._rows]

    def distinct_count(self, attribute: str) -> int:
        """Number of distinct values in a column."""
        index = self._column_index(attribute)
        return len({row[index] for row in self._rows})

    def byte_size(self) -> int:
        """Rough payload size: total characters of the string rendering
        of every cell (deterministic and good enough for relative
        communication-cost comparisons)."""
        return sum(len(str(v)) for row in self._rows for v in row)

    def _column_index(self, attribute: str) -> int:
        try:
            return self._index[attribute]
        except KeyError:
            raise ExecutionError(
                f"table has no column {attribute!r}; columns: {self._attributes}"
            ) from None

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            frozenset(self._attributes) == frozenset(other._attributes)
            and self._row_set() == other._row_set()
        )

    def _row_set(self) -> FrozenSet[FrozenSet[Tuple[str, object]]]:
        return frozenset(
            frozenset(zip(self._attributes, row)) for row in self._rows
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._attributes), self._row_set()))

    def __repr__(self) -> str:
        return f"Table({list(self._attributes)}, {len(self._rows)} rows)"

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def project(self, attributes: Iterable[str]) -> "Table":
        """:math:`\\pi_X` with set semantics (duplicates collapse)."""
        attrs = [a for a in self._attributes if a in set(attributes)]
        missing = set(attributes) - set(self._attributes)
        if missing:
            raise ExecutionError(f"cannot project on missing columns: {sorted(missing)}")
        indices = [self._index[a] for a in attrs]
        return Table(attrs, (tuple(row[i] for i in indices) for row in self._rows))

    def select(self, predicate: Predicate) -> "Table":
        """:math:`\\sigma_C` — keep rows satisfying the predicate."""
        kept = [
            row
            for row, as_dict in zip(self._rows, self.row_dicts())
            if predicate.evaluate(as_dict)
        ]
        return Table(self._attributes, kept)

    def equi_join(self, other: "Table", conditions: JoinPath) -> "Table":
        """Hash equi-join on a join path's conditions.

        Every condition must have one attribute in each table.  The
        result's columns are this table's followed by the other's.
        """
        pairs: List[Tuple[int, int]] = []
        for condition in conditions:
            if condition.first in self._index and condition.second in other._index:
                pairs.append((self._index[condition.first], other._index[condition.second]))
            elif condition.second in self._index and condition.first in other._index:
                pairs.append((self._index[condition.second], other._index[condition.first]))
            else:
                raise ExecutionError(
                    f"join condition {condition} does not bridge the tables"
                )
        overlap = set(self._attributes) & set(other._attributes)
        if overlap:
            raise ExecutionError(
                f"equi-join operands share columns {sorted(overlap)}; use "
                "natural_join for recombination joins"
            )
        buckets: Dict[Tuple[object, ...], List[Row]] = {}
        for row in other._rows:
            key = tuple(row[j] for _, j in pairs)
            if any(v is None for v in key):
                continue
            buckets.setdefault(key, []).append(row)
        joined = []
        for row in self._rows:
            key = tuple(row[i] for i, _ in pairs)
            if any(v is None for v in key):
                continue
            for match in buckets.get(key, ()):
                joined.append(row + match)
        return Table(self._attributes + other._attributes, joined)

    def natural_join(self, other: "Table") -> "Table":
        """Join on all shared column names (used by the semi-join's final
        recombination step, Figure 5 step 5).

        Raises:
            ExecutionError: if the tables share no columns (that would be
                a cartesian product, which the model never produces).
        """
        shared = [a for a in self._attributes if a in other._index]
        if not shared:
            raise ExecutionError("natural join requires at least one shared column")
        other_extra = [a for a in other._attributes if a not in self._index]
        self_idx = [self._index[a] for a in shared]
        other_idx = [other._index[a] for a in shared]
        extra_idx = [other._index[a] for a in other_extra]
        buckets: Dict[Tuple[object, ...], List[Row]] = {}
        for row in other._rows:
            key = tuple(row[j] for j in other_idx)
            if any(v is None for v in key):
                continue
            buckets.setdefault(key, []).append(tuple(row[j] for j in extra_idx))
        joined = []
        for row in self._rows:
            key = tuple(row[i] for i in self_idx)
            if any(v is None for v in key):
                continue
            for extra in buckets.get(key, ()):
                joined.append(row + extra)
        return Table(self._attributes + tuple(other_extra), joined)

    def semi_join_filter(self, probe: "Table") -> "Table":
        """Rows of this table matching the probe on its shared columns —
        classic semi-join reduction (kept for cost experiments)."""
        shared = [a for a in self._attributes if a in probe._index]
        if not shared:
            raise ExecutionError("semi-join filter requires shared columns")
        probe_keys = {
            tuple(row[probe._index[a]] for a in shared) for row in probe._rows
        }
        self_idx = [self._index[a] for a in shared]
        kept = [
            row
            for row in self._rows
            if tuple(row[i] for i in self_idx) in probe_keys
        ]
        return Table(self._attributes, kept)

    def union(self, other: "Table") -> "Table":
        """Set union of two same-schema tables."""
        if frozenset(self._attributes) != frozenset(other._attributes):
            raise ExecutionError("union requires identical column sets")
        indices = [other._index[a] for a in self._attributes]
        aligned = tuple(tuple(row[i] for i in indices) for row in other._rows)
        return Table(self._attributes, self._rows + aligned)
