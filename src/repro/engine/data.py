"""Columnar, immutable in-memory tables with set semantics.

The relational model of the paper (and of its reference [2]) is
set-based: a relation is a *set* of tuples.  :class:`Table` therefore
deduplicates rows, and every operator returns a new table.  Attribute
names are globally distinct (Section 2), which makes natural joins on
shared column names unambiguous — the semi-join recombination step
relies on this.

Row values must be hashable scalars (``str``, ``int``, ``float``,
``bool`` or ``None``); this keeps rows hashable for set semantics and
byte accounting honest.

Storage model
-------------

Since the batch-first refactor the engine is **columnar**: a
:class:`ColumnarTable` holds one value array per attribute, where each
cell is a small integer id interned in a process-wide
:class:`InternPool`.  :class:`Table` is the thin public view over it —
the constructor, equality, iteration, and every operator keep exactly
the row-at-a-time semantics of the seed implementation (the frozen
oracle in ``tests/_row_oracle.py`` documents them, and the Hypothesis
differential suite asserts row-for-row identity), but the operators run
on column arrays and selection masks:

* ``select``/``semi_join_filter`` compute a boolean mask and compress
  the columns — no re-validation, no re-deduplication, no re-sort;
* ``project``/``union`` deduplicate on interned id keys;
* ``equi_join``/``natural_join`` build hash buckets on interned key
  columns and emit id rows directly (their outputs are duplicate-free
  by construction, so no dedup pass runs at all);
* the canonical row order the seed eagerly sorted into is materialized
  **lazily** — intermediate pipeline results that are only joined,
  filtered, counted or shipped never pay for a sort; the order is
  computed (from per-value cached sort keys) the first time ``rows``,
  ``column`` or iteration observes it, and is byte-identical to the
  seed's.

Interning notes
---------------

The pool assigns one id per *typed* value, and one **class id** per
``==``-equivalence class (``1 == 1.0 == True`` share a class, mirroring
Python set semantics the seed relied on).  Dedup, joins and distinct
counts run on class ids — value-equal cells match across tables even
when their types differ — while each table keeps the exact
representative values it was built with, so rendering, canonical
ordering and byte accounting are unchanged.  Two float zeros of
opposite sign intern to one representative (they are ``==``-equal and
the seed already collapsed them within any single table).

Byte accounting
---------------

:func:`cell_width` is the **one canonical accounting** of a cell's
payload contribution: the length of the cell's JSON token with strings
unquoted — ``None`` costs ``len("null") == 4``, booleans cost
``len("true")``/``len("false")``, and numbers and strings cost the
length of their Python rendering (identical to their JSON token).
``Table.byte_size`` and the static estimator
(:meth:`repro.engine.coster.TableStats.of_table`) both use it, so the
coster's exact-statistics estimate of a shipment equals the executor's
measured bytes (a property the test suite asserts).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.joins import JoinPath
from repro.algebra.predicates import Predicate
from repro.exceptions import ExecutionError

#: Allowed scalar types for cell values.
_SCALARS = (str, int, float, bool)

Row = Tuple[object, ...]


def cell_width(value: object) -> int:
    """Canonical payload width of one cell (characters of its JSON
    token, strings unquoted): ``None`` -> ``len("null")``, everything
    else -> ``len(str(value))`` (which equals the JSON rendering for
    every allowed scalar, including booleans)."""
    if value is None:
        return 4  # len("null") — and, deliberately, len("None") too.
    return len(str(value))


class InternPool:
    """Process-wide value interner shared by every table.

    Maps each distinct typed scalar to a stable integer id and caches,
    per id: the value itself, its canonical sort key, its payload width
    (:func:`cell_width`), and its ``==``-equivalence **class id** (the
    id of the first interned value equal to it — ``1``, ``1.0`` and
    ``True`` share one class).  Ids are append-only; the pool grows with
    the number of distinct values a process touches, which is
    workload-bounded in this simulator.
    """

    __slots__ = ("_typed_ids", "_class_ids", "_values", "_classes", "_sort_keys", "_widths", "has_aliases")

    def __init__(self) -> None:
        self._typed_ids: Dict[type, Dict[object, int]] = {}
        self._class_ids: Dict[object, int] = {}
        self._values: List[object] = []
        self._classes: List[int] = []
        self._sort_keys: List[Tuple[bool, str, str]] = []
        self._widths: List[int] = []
        #: Whether any two interned values of different ids compare
        #: equal (e.g. ``1`` and ``True``).  While false, ids *are*
        #: class ids and the per-cell class lookup is skipped.
        self.has_aliases = False

    def intern(self, value: object) -> int:
        """Intern one cell value, validating it is an allowed scalar.

        Raises:
            ExecutionError: on non-scalar values.
        """
        by_value = self._typed_ids.get(value.__class__)
        if by_value is not None:
            interned = by_value.get(value)
            if interned is not None:
                return interned
        if value is not None and not isinstance(value, _SCALARS):
            raise ExecutionError(
                f"cell values must be scalars (str/int/float/bool/None), got "
                f"{type(value).__name__}"
            )
        if by_value is None:
            by_value = self._typed_ids[value.__class__] = {}
        interned = len(self._values)
        by_value[value] = interned
        self._values.append(value)
        class_id = self._class_ids.get(value)
        if class_id is None:
            class_id = interned
            self._class_ids[value] = interned
        else:
            self.has_aliases = True
        self._classes.append(class_id)
        self._sort_keys.append((value is None, str(type(value)), str(value)))
        self._widths.append(cell_width(value))
        return interned

    def value(self, interned: int) -> object:
        """The exact value behind an id."""
        return self._values[interned]

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"InternPool({len(self._values)} values)"


#: The shared pool every table interns into.  One pool means interned
#: ids are comparable across tables, which is what lets joins and
#: semi-join filters match keys with integer equality.
_POOL = InternPool()


def shared_pool() -> InternPool:
    """The process-wide :class:`InternPool` tables intern into."""
    return _POOL


class ColumnarTable:
    """An immutable relation instance stored as per-attribute id arrays.

    Args:
        attributes: ordered column names.
        rows: iterable of value tuples aligned with ``attributes`` (or
            use :meth:`from_rows` for dict-shaped input).  Duplicates are
            removed; row order is canonicalized, so two tables with the
            same content compare equal.

    The public API is row-shaped (``rows``, iteration, ``row_dicts``)
    and byte-identical to the seed engine; the storage and the
    operators are columnar.  :class:`Table` is the public name.
    """

    __slots__ = (
        "_attributes",
        "_index",
        "_pool",
        "_columns",
        "_length",
        "_canonical",
        "_rows_cache",
        "_hash_cache",
    )

    def __init__(self, attributes: Sequence[str], rows: Iterable[Row] = ()) -> None:
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise ExecutionError(f"duplicate column names: {attrs}")
        if not attrs:
            raise ExecutionError("a table needs at least one column")
        self._attributes = attrs
        self._index = {name: i for i, name in enumerate(attrs)}
        pool = _POOL
        self._pool = pool
        arity = len(attrs)
        intern = pool.intern
        id_rows: List[Tuple[int, ...]] = []
        for row in rows:
            id_row = tuple(intern(v) for v in row)
            if len(id_row) != arity:
                raise ExecutionError(
                    f"row arity {len(id_row)} does not match schema arity {arity}"
                )
            id_rows.append(id_row)
        self._install_id_rows(_dedup_id_rows(id_rows, pool), canonical=False)

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------

    def _install_id_rows(self, id_rows: List[Tuple[int, ...]], canonical: bool) -> None:
        """Adopt deduplicated id rows as this table's columns."""
        if id_rows:
            self._columns = [list(col) for col in zip(*id_rows)]
        else:
            self._columns = [[] for _ in self._attributes]
        self._length = len(id_rows)
        self._canonical = canonical or not id_rows
        self._rows_cache: Optional[Tuple[Row, ...]] = None
        self._hash_cache: Optional[int] = None

    @classmethod
    def _from_id_rows(
        cls,
        attributes: Sequence[str],
        id_rows: List[Tuple[int, ...]],
        pool: InternPool,
        deduped: bool = False,
        canonical: bool = False,
    ) -> "Table":
        """Operator fast path: adopt already-interned rows unvalidated."""
        self = object.__new__(Table)
        attrs = tuple(attributes)
        self._attributes = attrs
        self._index = {name: i for i, name in enumerate(attrs)}
        self._pool = pool
        if not deduped:
            id_rows = _dedup_id_rows(id_rows, pool)
        self._install_id_rows(id_rows, canonical=canonical)
        return self

    @classmethod
    def _from_columns(
        cls,
        attributes: Sequence[str],
        columns: List[List[int]],
        pool: InternPool,
        deduped: bool = False,
        canonical: bool = False,
    ) -> "Table":
        """Operator fast path: adopt id columns (all equal length)."""
        self = object.__new__(Table)
        attrs = tuple(attributes)
        self._attributes = attrs
        self._index = {name: i for i, name in enumerate(attrs)}
        self._pool = pool
        if not deduped:
            id_rows = _dedup_id_rows(list(zip(*columns)) if columns and columns[0] else [], pool)
            self._install_id_rows(id_rows, canonical=canonical)
            return self
        self._columns = columns
        self._length = len(columns[0]) if columns else 0
        self._canonical = canonical or not self._length
        self._rows_cache = None
        self._hash_cache = None
        return self

    def _class_view(self, column: List[int]) -> List[int]:
        """The column's ids mapped to ``==``-equivalence class ids (a
        no-op while the pool has no cross-type aliases)."""
        pool = self._pool
        if not pool.has_aliases:
            return column
        classes = pool._classes
        return [classes[i] for i in column]

    def _id_rows(self) -> List[Tuple[int, ...]]:
        """Rows as interned id tuples, in current storage order."""
        if not self._length:
            return []
        return list(zip(*self._columns))

    def _ensure_canonical(self) -> None:
        """Materialize the seed's canonical row order (lazy sort).

        The sort key per cell is the seed's
        ``(value is None, str(type(value)), str(value))`` tuple, cached
        per interned value, so canonicalization costs index lookups
        instead of string renderings.
        """
        if self._canonical:
            return
        sort_keys = self._pool._sort_keys
        id_rows = self._id_rows()
        id_rows.sort(key=lambda row: tuple(sort_keys[i] for i in row))
        self._install_id_rows(id_rows, canonical=True)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls, attributes: Sequence[str], rows: Iterable[Mapping[str, object]]
    ) -> "Table":
        """Build from dict-shaped rows (missing keys become ``None``)."""
        attrs = tuple(attributes)
        return cls(attrs, (tuple(row.get(a) for a in attrs) for row in rows))

    @classmethod
    def empty(cls, attributes: Sequence[str]) -> "Table":
        """An empty table with the given columns."""
        return cls(attributes, ())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Ordered column names."""
        return self._attributes

    @property
    def pool(self) -> InternPool:
        """The intern pool this table's columns are encoded against."""
        return self._pool

    @property
    def rows(self) -> Tuple[Row, ...]:
        """Canonically ordered, deduplicated rows."""
        if self._rows_cache is None:
            self._ensure_canonical()
            values = self._pool._values
            self._rows_cache = tuple(
                tuple(values[i] for i in id_row) for id_row in self._id_rows()
            )
        return self._rows_cache

    def row_dicts(self) -> List[Dict[str, object]]:
        """Rows as dictionaries (for predicates and display)."""
        return [dict(zip(self._attributes, row)) for row in self.rows]

    def column(self, attribute: str) -> List[object]:
        """All values of one column, in row order."""
        index = self._column_index(attribute)
        self._ensure_canonical()
        values = self._pool._values
        return [values[i] for i in self._columns[index]]

    def column_ids(self, attribute: str) -> List[int]:
        """One column as interned ids, in current storage order.

        Storage order is only guaranteed canonical after something
        observed the row order; batch operators that don't care about
        order read this directly."""
        return self._columns[self._column_index(attribute)]

    def distinct_count(self, attribute: str) -> int:
        """Number of distinct values in a column."""
        index = self._column_index(attribute)
        return len(set(self._class_view(self._columns[index])))

    def byte_size(self) -> int:
        """Canonical payload size: the summed :func:`cell_width` of every
        cell — deterministic, identical to the width the static coster
        accounts, and good enough for relative communication-cost
        comparisons."""
        widths = self._pool._widths
        return sum(sum(widths[i] for i in column) for column in self._columns)

    def _column_index(self, attribute: str) -> int:
        try:
            return self._index[attribute]
        except KeyError:
            raise ExecutionError(
                f"table has no column {attribute!r}; columns: {self._attributes}"
            ) from None

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarTable):
            return NotImplemented
        if frozenset(self._attributes) != frozenset(other._attributes):
            return False
        if self._length != other._length:
            return False
        if self._pool is other._pool:
            # Interned fast path: align the other table's columns to this
            # one's attribute order and compare class-id row sets.
            mine = [self._class_view(c) for c in self._columns]
            theirs = [
                other._class_view(other._columns[other._index[a]])
                for a in self._attributes
            ]
            return frozenset(zip(*mine)) == frozenset(zip(*theirs))
        return self._row_set() == other._row_set()

    def _row_set(self) -> FrozenSet[FrozenSet[Tuple[str, object]]]:
        return frozenset(
            frozenset(zip(self._attributes, row)) for row in self.rows
        )

    def __hash__(self) -> int:
        if self._hash_cache is None:
            self._hash_cache = hash((frozenset(self._attributes), self._row_set()))
        return self._hash_cache

    def __repr__(self) -> str:
        return f"Table({list(self._attributes)}, {self._length} rows)"

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def project(self, attributes: Iterable[str]) -> "Table":
        """:math:`\\pi_X` with set semantics (duplicates collapse).

        Contract: the result's columns follow **this table's** attribute
        order, not the requested order, and requesting the same column
        twice is an error — the output of a set-semantics projection has
        no meaningful duplicate columns, so a duplicated request is
        always a caller bug.

        Raises:
            ExecutionError: on missing or duplicated requested columns.
        """
        requested = list(attributes)
        requested_set = set(requested)
        if len(requested_set) != len(requested):
            seen: set = set()
            duplicates = sorted({a for a in requested if a in seen or seen.add(a)})
            raise ExecutionError(
                f"cannot project on duplicated columns: {duplicates}"
            )
        missing = requested_set - set(self._attributes)
        if missing:
            raise ExecutionError(f"cannot project on missing columns: {sorted(missing)}")
        attrs = [a for a in self._attributes if a in requested_set]
        if len(attrs) == len(self._attributes):
            # Full-width projection: rows are already deduplicated.
            kept_all = [self._columns[self._index[a]] for a in attrs]
            return Table._from_columns(
                attrs, [list(c) for c in kept_all], self._pool,
                deduped=True, canonical=self._canonical,
            )
        if self._pool.has_aliases:
            # Dropping columns can collide value-equal rows whose cells
            # differ only in type (1 vs True).  The seed deduplicated in
            # canonical parent order (its rows were pre-sorted), so the
            # surviving representative is the canonically-first one —
            # reproduce that by sorting first.  Without aliases the
            # colliding rows are bit-identical and order cannot matter.
            self._ensure_canonical()
        kept = [self._columns[self._index[a]] for a in attrs]
        keys = zip(*[self._class_view(c) for c in kept]) if kept else iter(())
        seen_keys: set = set()
        mask: List[int] = []
        for position, key in enumerate(keys):
            if key not in seen_keys:
                seen_keys.add(key)
                mask.append(position)
        columns = [[c[p] for p in mask] for c in kept]
        return Table._from_columns(attrs, columns, self._pool, deduped=True)

    def select(self, predicate: Predicate) -> "Table":
        """:math:`\\sigma_C` — keep rows satisfying the predicate."""
        if not self._length or predicate.is_true():
            return self
        mask = self._predicate_mask(predicate)
        if all(mask):
            return self
        columns = [
            [v for v, keep in zip(column, mask) if keep] for column in self._columns
        ]
        # A filtered subset of deduplicated rows stays deduplicated, and
        # an order-preserving subset of a sorted sequence stays sorted.
        return Table._from_columns(
            self._attributes, columns, self._pool,
            deduped=True, canonical=self._canonical,
        )

    def _predicate_mask(self, predicate: Predicate) -> List[bool]:
        """Boolean selection mask, one entry per stored row.

        Single-atom predicates over present attributes evaluate
        column-at-a-time; anything else falls back to per-row dict
        evaluation, preserving the seed's short-circuit and error
        semantics exactly.
        """
        comparisons = predicate.comparisons
        if len(comparisons) == 1:
            comp = comparisons[0]
            index = self._index.get(comp.attribute)
            if index is not None and not comp.operand_is_attribute:
                return _compare_column(
                    self._columns[index], self._pool, comp
                )
        values = self._pool._values
        attrs = self._attributes
        evaluate = predicate.evaluate
        mask = []
        for id_row in zip(*self._columns):
            row = {a: values[i] for a, i in zip(attrs, id_row)}
            mask.append(evaluate(row))
        return mask

    def equi_join(self, other: "ColumnarTable", conditions: JoinPath) -> "Table":
        """Hash equi-join on a join path's conditions.

        Every condition must have one attribute in each table.  The
        result's columns are this table's followed by the other's.
        """
        pairs: List[Tuple[int, int]] = []
        for condition in conditions:
            if condition.first in self._index and condition.second in other._index:
                pairs.append((self._index[condition.first], other._index[condition.second]))
            elif condition.second in self._index and condition.first in other._index:
                pairs.append((self._index[condition.second], other._index[condition.first]))
            else:
                raise ExecutionError(
                    f"join condition {condition} does not bridge the tables"
                )
        overlap = set(self._attributes) & set(other._attributes)
        if overlap:
            raise ExecutionError(
                f"equi-join operands share columns {sorted(overlap)}; use "
                "natural_join for recombination joins"
            )
        none_class = _none_class(self._pool)
        buckets: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        other_keys = zip(*[other._class_view(other._columns[j]) for _, j in pairs])
        for row, key in zip(other._id_rows(), other_keys):
            if none_class in key:
                continue
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [row]
            else:
                bucket.append(row)
        joined: List[Tuple[int, ...]] = []
        self_keys = zip(*[self._class_view(self._columns[i]) for i, _ in pairs])
        for row, key in zip(self._id_rows(), self_keys):
            if none_class in key:
                continue
            for match in buckets.get(key, ()):
                joined.append(row + match)
        # Join outputs are duplicate-free by construction: both operands
        # are deduplicated sets and every (left, right) pairing is
        # emitted once, so two output rows value-equal everywhere would
        # have to come from one pairing.
        return Table._from_id_rows(
            self._attributes + other._attributes, joined, self._pool, deduped=True
        )

    def natural_join(self, other: "ColumnarTable") -> "Table":
        """Join on all shared column names (used by the semi-join's final
        recombination step, Figure 5 step 5).

        Raises:
            ExecutionError: if the tables share no columns (that would be
                a cartesian product, which the model never produces).
        """
        shared = [a for a in self._attributes if a in other._index]
        if not shared:
            raise ExecutionError("natural join requires at least one shared column")
        other_extra = [a for a in other._attributes if a not in self._index]
        none_class = _none_class(self._pool)
        extra_idx = [other._index[a] for a in other_extra]
        buckets: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        other_keys = zip(
            *[other._class_view(other._columns[other._index[a]]) for a in shared]
        )
        other_extras = (
            list(zip(*[other._columns[j] for j in extra_idx]))
            if extra_idx and other._length
            else [()] * other._length
        )
        for extra, key in zip(other_extras, other_keys):
            if none_class in key:
                continue
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [extra]
            else:
                bucket.append(extra)
        joined: List[Tuple[int, ...]] = []
        self_keys = zip(*[self._class_view(self._columns[self._index[a]]) for a in shared])
        for row, key in zip(self._id_rows(), self_keys):
            if none_class in key:
                continue
            for extra in buckets.get(key, ()):
                joined.append(row + extra)
        # Duplicate-free by the same argument as ``equi_join``: the
        # matched slave rows agree with the master row on every shared
        # column, so they must differ in the extras.
        return Table._from_id_rows(
            self._attributes + tuple(other_extra), joined, self._pool, deduped=True
        )

    def semi_join_filter(self, probe: "ColumnarTable") -> "Table":
        """Rows of this table matching the probe on its shared columns —
        classic semi-join reduction (kept for cost experiments).

        Rows whose shared-column key contains ``None`` never match, on
        either side — the same null-key semantics as ``equi_join`` and
        ``natural_join``.
        """
        shared = [a for a in self._attributes if a in probe._index]
        if not shared:
            raise ExecutionError("semi-join filter requires shared columns")
        none_class = _none_class(self._pool)
        probe_keys = {
            key
            for key in zip(
                *[probe._class_view(probe._columns[probe._index[a]]) for a in shared]
            )
            if none_class not in key
        }
        self_keys = zip(*[self._class_view(self._columns[self._index[a]]) for a in shared])
        mask = [key in probe_keys for key in self_keys]
        columns = [
            [v for v, keep in zip(column, mask) if keep] for column in self._columns
        ]
        return Table._from_columns(
            self._attributes, columns, self._pool,
            deduped=True, canonical=self._canonical,
        )

    def union(self, other: "ColumnarTable") -> "Table":
        """Set union of two same-schema tables."""
        if frozenset(self._attributes) != frozenset(other._attributes):
            raise ExecutionError("union requires identical column sets")
        aligned = [other._columns[other._index[a]] for a in self._attributes]
        columns = [list(mine) + list(theirs) for mine, theirs in zip(self._columns, aligned)]
        return Table._from_columns(self._attributes, columns, self._pool)


def _dedup_id_rows(id_rows: List[Tuple[int, ...]], pool: InternPool) -> List[Tuple[int, ...]]:
    """Deduplicate id rows by value-equivalence, keeping each class's
    first occurrence (the representative Python ``set`` semantics keep)."""
    if not id_rows:
        return id_rows
    seen: set = set()
    add = seen.add
    kept: List[Tuple[int, ...]] = []
    if not pool.has_aliases:
        for row in id_rows:
            if row not in seen:
                add(row)
                kept.append(row)
        return kept
    classes = pool._classes
    for row in id_rows:
        key = tuple(classes[i] for i in row)
        if key not in seen:
            add(key)
            kept.append(row)
    return kept


def _none_class(pool: InternPool) -> int:
    """The class id of ``None`` (interning it on first use)."""
    return pool._classes[pool.intern(None)]


def _compare_column(column: List[int], pool: InternPool, comp) -> List[bool]:
    """Vectorized single-comparison mask with the seed's semantics:
    ``None`` on either side is false, incomparable types raise."""
    from repro.algebra.predicates import PredicateError  # local: avoid cycle risk
    from repro.algebra.predicates import _OPERATORS

    operand = comp.operand
    values = pool._values
    op = _OPERATORS[comp.op]
    if operand is None:
        return [False] * len(column)
    mask: List[bool] = []
    answers: Dict[int, bool] = {}
    for interned in column:
        answer = answers.get(interned)
        if answer is None:
            value = values[interned]
            if value is None:
                answer = False
            else:
                try:
                    answer = bool(op(value, operand))
                except TypeError as exc:
                    raise PredicateError(
                        f"cannot compare {value!r} {comp.op} {operand!r}"
                    ) from exc
            answers[interned] = answer
        mask.append(answer)
    return mask


class Table(ColumnarTable):
    """The public relation type: a thin view over :class:`ColumnarTable`.

    Everything — constructor, equality, hashing, iteration, operators —
    is inherited; the subclass exists so the columnar machinery has its
    own name while every existing caller keeps constructing and
    receiving ``Table``.
    """

    __slots__ = ()
