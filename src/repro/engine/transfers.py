"""Transfer records and logs.

Every cross-server communication performed by the distributed executor
is recorded as a :class:`Transfer`: who sent what to whom, the profile
of the released relation (the information-theoretic content, per
Definition 3.2), the tuple/byte volume (the cost), and — when the
transfer was permitted — the authorization that covered it (the
accountability trail).

A :class:`TransferLog` aggregates transfers for cost reporting: total
volume, per-link volume, and per-node breakdowns feed the semi-join
versus regular-join benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.authorization import Authorization
from repro.core.profile import RelationProfile


class Transfer:
    """One recorded cross-server data shipment.

    Attributes:
        sender: releasing server.
        receiver: receiving server.
        profile: profile of the shipped relation.
        row_count: number of tuples shipped.
        byte_size: payload size (see ``Table.byte_size``).
        description: human-readable step label (mirrors the Figure 5 row).
        node_id: plan node whose execution caused the shipment.
        authorized_by: the covering authorization, or ``None`` when the
            transfer was performed unaudited.
        attempts: shipment attempts made (1 for fault-free runs).
        outcomes: per-attempt statuses (``("ok",)`` for fault-free runs).
        retry_delay: total backoff time waited before delivery.

    Shipped payloads are columnar (``rows × profile attributes`` cells of
    interned scalars); :meth:`cell_count` exposes that cell volume for
    batch-throughput accounting, while ``byte_size`` stays the canonical
    :func:`~repro.engine.data.cell_width` payload measure.
    """

    __slots__ = (
        "sender",
        "receiver",
        "profile",
        "row_count",
        "byte_size",
        "description",
        "node_id",
        "authorized_by",
        "attempts",
        "outcomes",
        "retry_delay",
    )

    def __init__(
        self,
        sender: str,
        receiver: str,
        profile: RelationProfile,
        row_count: int,
        byte_size: int,
        description: str,
        node_id: int,
        authorized_by: Optional[Authorization] = None,
        attempts: int = 1,
        outcomes: Tuple[str, ...] = ("ok",),
        retry_delay: float = 0.0,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.profile = profile
        self.row_count = row_count
        self.byte_size = byte_size
        self.description = description
        self.node_id = node_id
        self.authorized_by = authorized_by
        self.attempts = attempts
        self.outcomes = outcomes
        self.retry_delay = retry_delay

    def cell_count(self) -> int:
        """Cells shipped: ``row_count × |profile attributes|`` — the
        volume unit of the columnar wire format."""
        return self.row_count * len(self.profile.attributes)

    def __repr__(self) -> str:
        return (
            f"Transfer({self.sender} -> {self.receiver}, {self.row_count} rows, "
            f"{self.byte_size} bytes, {self.description})"
        )


class TransferLog:
    """Append-only log of the transfers of one execution."""

    def __init__(self) -> None:
        self._transfers: List[Transfer] = []

    def record(self, transfer: Transfer) -> None:
        """Append one transfer."""
        self._transfers.append(transfer)

    @property
    def transfers(self) -> Tuple[Transfer, ...]:
        """All transfers, in execution order."""
        return tuple(self._transfers)

    def total_rows(self) -> int:
        """Total tuples shipped across all links."""
        return sum(t.row_count for t in self._transfers)

    def total_bytes(self) -> int:
        """Total payload bytes shipped across all links."""
        return sum(t.byte_size for t in self._transfers)

    def total_cells(self) -> int:
        """Total cells shipped (columnar volume: Σ rows × width)."""
        return sum(t.cell_count() for t in self._transfers)

    def by_link(self) -> Dict[Tuple[str, str], int]:
        """Bytes shipped per (sender, receiver) link, sorted keys."""
        links: Dict[Tuple[str, str], int] = {}
        for transfer in self._transfers:
            key = (transfer.sender, transfer.receiver)
            links[key] = links.get(key, 0) + transfer.byte_size
        return dict(sorted(links.items()))

    def by_node(self) -> Dict[int, int]:
        """Bytes shipped per plan node."""
        nodes: Dict[int, int] = {}
        for transfer in self._transfers:
            nodes[transfer.node_id] = nodes.get(transfer.node_id, 0) + transfer.byte_size
        return dict(sorted(nodes.items()))

    def total_retries(self) -> int:
        """Failed attempts absorbed by retries across all transfers."""
        return sum(t.attempts - 1 for t in self._transfers)

    def total_retry_delay(self) -> float:
        """Total backoff time waited across all transfers."""
        return sum(t.retry_delay for t in self._transfers)

    def __len__(self) -> int:
        return len(self._transfers)

    def __iter__(self) -> Iterator[Transfer]:
        return iter(self._transfers)

    def describe(self) -> str:
        """One line per transfer plus a totals line."""
        lines = [
            f"{t.sender} -> {t.receiver}: {t.row_count} rows / {t.byte_size} B "
            f"({t.description})"
            + (f" [{t.attempts} attempts]" if t.attempts > 1 else "")
            for t in self._transfers
        ]
        lines.append(
            f"total: {self.total_rows()} rows / {self.total_bytes()} B over "
            f"{len(self._transfers)} transfers"
        )
        return "\n".join(lines)
