"""Checkpoint/resume: an execution journal of audited subtrees.

PR 1's failover already *reuses* completed subtrees within one
``execute`` call; this module makes that reuse survive the call.  A
:class:`CheckpointJournal` records, for an executing plan, every
completed non-leaf subtree result together with the server holding it
and the Figure 4 profile describing its information content — but only
when the holding server is authorized (Definition 3.3) to view that
profile under the executing policy.  A run killed by an exhausted
deadline budget or a tripped breaker hands the journal back on the
error; a later ``execute(..., resume_from=journal)`` pins the
checkpointed subtrees and re-executes only what is missing.

Resume is re-audited, never trusted: :meth:`CheckpointJournal.verify`
checks that the journal belongs to the same plan shape *and* that every
entry's holder may still view its profile under the *current* policy —
a rule revoked between checkpoint and restart makes resume refuse with
:class:`~repro.exceptions.CheckpointError` rather than replay a view the
policy no longer grants.  The resumed assignment then passes the same
independent verifier and runtime audit as any other (every shipment of a
checkpointed result is checked against the receiver like any transfer).

Journals serialize to plain dictionaries (see
:func:`repro.io.serialize.checkpoint_to_dict`), so the CLI can park one
in a JSON file between invocations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.algebra.tree import QueryTreePlan
from repro.core.profile import RelationProfile
from repro.engine.data import Table
from repro.exceptions import CheckpointError


def plan_signature(plan: QueryTreePlan) -> str:
    """A deterministic fingerprint of a plan's shape.

    Node ids and labels in traversal order — enough to refuse resuming a
    journal against a structurally different plan (node ids would alias
    silently otherwise).
    """
    return "|".join(f"n{node.node_id}:{node.label()}" for node in plan)


class CheckpointEntry:
    """One audited subtree result parked at a server."""

    __slots__ = ("node_id", "server", "profile", "table")

    def __init__(
        self, node_id: int, server: str, profile: RelationProfile, table: Table
    ) -> None:
        self.node_id = node_id
        self.server = server
        self.profile = profile
        self.table = table

    def __repr__(self) -> str:
        return (
            f"CheckpointEntry(n{self.node_id} @ {self.server}, "
            f"{len(self.table)} rows)"
        )


class CheckpointJournal:
    """Completed, authorization-audited subtrees of one plan.

    Args:
        signature: the owning plan's :func:`plan_signature`.
        entries: optional initial entries (used by deserialization).
    """

    __slots__ = ("_signature", "_entries", "_trace")

    def __init__(
        self, signature: str, entries: Iterable[CheckpointEntry] = ()
    ) -> None:
        self._signature = signature
        self._entries: Dict[int, CheckpointEntry] = {}
        self._trace = None
        for entry in entries:
            self._entries[entry.node_id] = entry

    def bind_trace(self, trace) -> None:
        """Attach a :class:`~repro.obs.trace.TraceContext`; records and
        verifications then emit ``checkpoint_*`` events and counters."""
        self._trace = trace

    @classmethod
    def for_plan(cls, plan: QueryTreePlan) -> "CheckpointJournal":
        """A fresh journal bound to ``plan``."""
        return cls(plan_signature(plan))

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @property
    def signature(self) -> str:
        """The owning plan's fingerprint."""
        return self._signature

    def record(
        self, node_id: int, server: str, profile: RelationProfile, table: Table
    ) -> None:
        """Journal one completed subtree (later results overwrite)."""
        self._entries[node_id] = CheckpointEntry(node_id, server, profile, table)
        if self._trace is not None:
            self._trace.count("repro_checkpoints_recorded_total", server=server)
            self._trace.event(
                "checkpoint_record", "checkpoint", node=f"n{node_id}",
                server=server, rows=len(table),
            )

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CheckpointEntry]:
        for node_id in sorted(self._entries):
            yield self._entries[node_id]

    def entries(self) -> List[CheckpointEntry]:
        """All entries, by node id."""
        return list(self)

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------

    def verify(self, policy, plan: QueryTreePlan) -> None:
        """Re-audit the journal against the current plan and policy.

        Raises:
            CheckpointError: on a plan-shape mismatch, or when any
                entry's holding server is no longer authorized for the
                view it holds (a rule was revoked since the checkpoint) —
                resume must refuse, not replay.
        """
        from repro.core.access import can_view  # deferred: avoids cycle

        if self._trace is not None:
            self._trace.event(
                "checkpoint_verify", "checkpoint", entries=len(self._entries)
            )
        current = plan_signature(plan)
        if current != self._signature:
            raise CheckpointError(
                "checkpoint journal belongs to a different plan shape; "
                "refusing to resume (checkpointed "
                f"{self._signature!r}, current {current!r})"
            )
        for entry in self:
            if not can_view(policy, entry.profile, entry.server):
                if self._trace is not None:
                    self._trace.count("repro_checkpoint_verify_failures_total")
                raise CheckpointError(
                    f"authorization for checkpointed subtree n{entry.node_id} "
                    f"at {entry.server} is no longer granted by the current "
                    "policy; refusing to resume from this checkpoint"
                )
        if self._trace is not None:
            self._trace.count("repro_checkpoints_verified_total", len(self._entries))

    def pinned(self, excluded: Iterable[str] = ()) -> Dict[int, str]:
        """``node_id -> server`` pins for the planner, skipping entries
        whose holder is excluded (crashed or quarantined)."""
        barred = frozenset(excluded)
        return {
            entry.node_id: entry.server
            for entry in self
            if entry.server not in barred
        }

    def reuse_tables(self) -> Dict[int, Table]:
        """``node_id -> result`` for the executor's reuse map."""
        return {entry.node_id: entry.table for entry in self}

    def describe(self) -> str:
        """One line per entry."""
        if not self._entries:
            return "(empty journal)"
        return "\n".join(
            f"n{entry.node_id} @ {entry.server}: {len(entry.table)} rows, "
            f"{entry.profile}"
            for entry in self
        )

    def __repr__(self) -> str:
        return f"CheckpointJournal({len(self._entries)} entries)"
