"""Runtime authorization enforcement.

The planner proves an assignment safe *symbolically*; the audit layer
enforces the same property *operationally*: every transfer the executor
is about to perform is checked against the policy at the moment it
happens, and permitted transfers are stamped with the covering
authorization.  This defense-in-depth catches any divergence between
the symbolic flows and what the engine actually ships (and makes
``enforce=False`` runs useful for measuring how often an unsafe strategy
*would* have violated the policy).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.access import can_view, explain_denial, first_covering_authorization
from repro.core.authorization import Authorization, Policy
from repro.core.profile import RelationProfile
from repro.engine.transfers import Transfer
from repro.exceptions import AuditViolationError


class AuditLog:
    """Decision log of an audited execution.

    Args:
        policy: the policy to enforce (a closed :class:`Policy` or any
            object with ``permits``; see :func:`repro.core.access.can_view`).
        enforce: when true (default), an unauthorized transfer raises
            :class:`~repro.exceptions.AuditViolationError`; when false it
            is recorded as a violation and execution continues.
        trace: optional :class:`~repro.obs.trace.TraceContext`.  Covering
            rules are looked up through its cache — so the audit and the
            explain path compute each covering authorization exactly once
            and agree by construction — and denials are counted into
            ``repro_audit_denials_total``.
    """

    def __init__(self, policy, enforce: bool = True, trace=None) -> None:
        self._policy = policy
        self._enforce = enforce
        self._trace = trace
        self._checked: List[Transfer] = []
        self._violations: List[Transfer] = []

    @property
    def policy(self):
        """The enforced policy."""
        return self._policy

    def authorize(
        self, sender: str, receiver: str, profile: RelationProfile
    ) -> Tuple[bool, Optional[Authorization]]:
        """Decide one release with a single policy probe.

        Returns ``(allowed, covering_rule)``; the rule is ``None`` for
        local hand-offs, denials, and non-:class:`Policy` policies
        (which carry no rule objects).  Never raises — rejection is the
        caller's move (see :meth:`deny` / :meth:`check`).
        """
        if sender == receiver:
            return True, None
        if isinstance(self._policy, Policy) and not hasattr(self._policy, "permits"):
            # One exact-path index probe answers both questions at once:
            # a covering rule exists iff the transfer is authorized, so
            # a separate can_view pass would be redundant for plain
            # closed policies.
            rule = first_covering_authorization(
                self._policy, profile, receiver, trace=self._trace
            )
            return rule is not None, rule
        return can_view(self._policy, profile, receiver), None

    def deny(self, sender: str, receiver: str, profile: RelationProfile) -> None:
        """Reject one unauthorized release.

        Raises:
            AuditViolationError: when enforcement is on; otherwise the
                denial is only counted (the caller records the transfer
                as a violation).
        """
        if self._trace is not None:
            self._trace.count("repro_audit_denials_total", receiver=receiver)
            self._trace.event(
                "audit_denial", "audit", sender=sender, receiver=receiver
            )
        if self._enforce:
            raise AuditViolationError(
                f"unauthorized transfer {sender} -> {receiver} of {profile}\n"
                + explain_denial(self._policy, profile, receiver),
                sender=sender,
                receiver=receiver,
            )

    def check(
        self, sender: str, receiver: str, profile: RelationProfile
    ) -> Optional[Authorization]:
        """Authorize (or reject) one release before it happens.

        Returns the covering authorization (``None`` for local hand-offs
        or non-:class:`Policy` policies, which carry no rule objects).

        Raises:
            AuditViolationError: when enforcement is on and no rule
                covers the release.
        """
        allowed, rule = self.authorize(sender, receiver, profile)
        if not allowed:
            self.deny(sender, receiver, profile)
        return rule

    def rule_id(self, rule: Optional[Authorization]) -> Optional[int]:
        """Stable id of a covering rule under the enforced policy, for
        stamping transfer spans (``None`` when unavailable)."""
        if rule is None:
            return None
        getter = getattr(self._policy, "rule_id", None)
        return getter(rule) if getter is not None else None

    def record(self, transfer: Transfer, violation: bool = False) -> None:
        """Log a performed transfer (flagging policy violations)."""
        self._checked.append(transfer)
        if violation:
            self._violations.append(transfer)

    @property
    def checked(self) -> Tuple[Transfer, ...]:
        """Every audited transfer, in order."""
        return tuple(self._checked)

    @property
    def violations(self) -> Tuple[Transfer, ...]:
        """Transfers that violated the policy (non-enforcing runs only)."""
        return tuple(self._violations)

    def all_authorized(self) -> bool:
        """Whether no violation was recorded."""
        return not self._violations

    def summary(self) -> str:
        """Counts of audited transfers and violations."""
        return (
            f"{len(self._checked)} transfers audited, "
            f"{len(self._violations)} violations"
        )
