"""Retry policies and shipment attempt accounting.

Every Figure 5 shipment of a fault-aware execution goes through a
:class:`RetryPolicy`: a bounded number of attempts with exponential
backoff, deterministic jitter (a stable hash of the link and attempt
index — no wall clock, no global RNG), and a per-transfer timeout
derived from the link's *expected* transfer cost, so a degraded link
that stretches a shipment far past its expectation counts as a failure
even though the bytes would eventually arrive.

The module is deliberately free of fault-model imports: the executor
pairs a policy with any injector exposing ``attempt``/``wait``/
``expected_cost`` (see :mod:`repro.distributed.faults`), keeping the
engine layer import-acyclic with the distributed layer.
"""

from __future__ import annotations

import zlib
from typing import Optional, Tuple

from repro.exceptions import ExecutionError, ResilienceConfigError

#: Status recorded when an attempt exceeded its derived timeout.
STATUS_TIMEOUT = "timeout"

#: Status recorded when a shipment was refused by an open circuit
#: breaker before any attempt was made (see
#: :mod:`repro.distributed.health`) — the fail-fast path.
STATUS_BREAKER_OPEN = "breaker-open"


class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Args:
        max_attempts: total tries per shipment (first attempt included).
        base_delay: backoff before the second attempt.
        backoff_factor: multiplier per further attempt.
        max_delay: cap on a single backoff wait.
        jitter: fraction of the delay added as deterministic jitter in
            ``[0, jitter)``; 0 disables jitter.
        timeout_factor: an attempt may take at most
            ``timeout_factor * expected_cost`` before counting as timed
            out (degraded links trip this).
        min_timeout: floor for the derived timeout, so near-zero-cost
            transfers are not spuriously timed out.
    """

    __slots__ = (
        "max_attempts",
        "base_delay",
        "backoff_factor",
        "max_delay",
        "jitter",
        "timeout_factor",
        "min_timeout",
    )

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 1.0,
        backoff_factor: float = 2.0,
        max_delay: float = 60.0,
        jitter: float = 0.1,
        timeout_factor: float = 4.0,
        min_timeout: float = 1.0,
    ) -> None:
        # ResilienceConfigError subclasses both ExecutionError and
        # ValueError: library callers keep catching the former, while a
        # misconfigured policy reads as the plain bad argument it is.
        if max_attempts < 1:
            raise ResilienceConfigError(
                f"max_attempts must be at least 1 (got {max_attempts!r})"
            )
        if base_delay < 0 or max_delay < 0:
            raise ResilienceConfigError(
                "retry delays cannot be negative "
                f"(base_delay={base_delay!r}, max_delay={max_delay!r})"
            )
        if backoff_factor < 1.0:
            raise ResilienceConfigError(
                f"backoff_factor must be >= 1 (got {backoff_factor!r})"
            )
        if jitter < 0:
            raise ResilienceConfigError(
                f"jitter cannot be negative (got {jitter!r})"
            )
        if timeout_factor <= 0 or min_timeout < 0:
            raise ResilienceConfigError(
                "timeout_factor must be positive and min_timeout non-negative "
                f"(got timeout_factor={timeout_factor!r}, "
                f"min_timeout={min_timeout!r})"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.backoff_factor = backoff_factor
        self.max_delay = max_delay
        self.jitter = jitter
        self.timeout_factor = timeout_factor
        self.min_timeout = min_timeout

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff after failed attempt number ``attempt`` (1-based).

        The jitter term is a stable function of ``(key, attempt)`` —
        identical runs wait identical times, distinct links desynchronize.
        """
        if attempt < 1:
            raise ExecutionError("attempt numbers are 1-based")
        raw = min(
            self.base_delay * self.backoff_factor ** (attempt - 1), self.max_delay
        )
        if self.jitter == 0.0:
            return raw
        fraction = (zlib.crc32(f"{key}#{attempt}".encode("utf-8")) % 10_000) / 10_000.0
        return raw * (1.0 + self.jitter * fraction)

    def timeout_for(self, expected_cost: float) -> float:
        """The allowed duration of one attempt over a link whose
        undegraded cost is ``expected_cost``."""
        return max(self.min_timeout, self.timeout_factor * float(expected_cost))

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(attempts={self.max_attempts}, base={self.base_delay}, "
            f"x{self.backoff_factor}, timeout={self.timeout_factor}*cost)"
        )


class AttemptRecord:
    """One shipment attempt: index, outcome, duration on the wire."""

    __slots__ = ("index", "status", "duration")

    def __init__(self, index: int, status: str, duration: float) -> None:
        self.index = index
        self.status = status
        self.duration = duration

    def __repr__(self) -> str:
        return f"AttemptRecord(#{self.index} {self.status}, {self.duration:.2f})"


class ShipmentReport:
    """The full attempt history of one shipment.

    Attributes:
        attempts: per-attempt records, in order.
        delivered: whether the last attempt succeeded.
        retry_delay: total backoff time waited between attempts.
    """

    __slots__ = ("attempts", "delivered", "retry_delay")

    def __init__(
        self,
        attempts: Tuple[AttemptRecord, ...],
        delivered: bool,
        retry_delay: float,
    ) -> None:
        self.attempts = attempts
        self.delivered = delivered
        self.retry_delay = retry_delay

    @property
    def attempt_count(self) -> int:
        """How many attempts were made."""
        return len(self.attempts)

    @property
    def outcomes(self) -> Tuple[str, ...]:
        """Per-attempt statuses, in order."""
        return tuple(record.status for record in self.attempts)

    @property
    def last_status(self) -> Optional[str]:
        """Status of the final attempt (None if no attempt was made)."""
        return self.attempts[-1].status if self.attempts else None

    def __repr__(self) -> str:
        verdict = "delivered" if self.delivered else "failed"
        return (
            f"ShipmentReport({verdict} after {self.attempt_count} attempts, "
            f"waited {self.retry_delay:.2f})"
        )


def attempt_shipment(
    faults,
    retry: RetryPolicy,
    sender: str,
    receiver: str,
    byte_size: float,
    health=None,
    deadline=None,
    trace=None,
) -> ShipmentReport:
    """Drive one shipment through the fault layer under a retry policy.

    Args:
        faults: an injector exposing ``expected_cost``, ``attempt`` and
            ``wait`` (duck-typed; see
            :class:`repro.distributed.faults.FaultInjector`).
        retry: the policy bounding attempts, delays and timeouts.
        health: optional tracker exposing ``allow`` and
            ``observe_attempt`` (duck-typed; see
            :class:`repro.distributed.health.HealthTracker`).  Every
            attempt outcome is fed to it, and a shipment whose breaker
            is open fails fast with a single ``breaker-open`` record —
            no attempts burned, no time spent.
        deadline: optional budget exposing ``charge`` and ``require``
            (duck-typed; see
            :class:`repro.engine.deadline.DeadlineBudget`).  Attempt
            durations and backoff waits are charged against it; a
            backoff that no longer fits raises *before* waiting.
        trace: optional :class:`~repro.obs.trace.TraceContext`; each
            attempt past the first emits a ``retry`` event and bumps
            ``repro_retries_total``, breaker fail-fasts bump
            ``repro_breaker_fail_fast_total``.

    Returns:
        The report — ``delivered`` is False when every attempt failed;
        the caller decides whether that raises or triggers failover.

    Raises:
        DeadlineExceededError: when the budget is overdrawn by an
            attempt's duration or cannot cover the next backoff wait.
    """
    expected = faults.expected_cost(sender, receiver, byte_size)
    allowed = retry.timeout_for(expected)
    link_key = f"{sender}->{receiver}"
    records = []
    waited = 0.0
    for attempt in range(1, retry.max_attempts + 1):
        if health is not None and not health.allow(sender, receiver, faults.clock):
            # Fail fast: the breaker quarantined this route (possibly
            # mid-loop, after feeding the attempts below).  Burning the
            # remaining attempts would only delay failover.
            records.append(AttemptRecord(attempt, STATUS_BREAKER_OPEN, 0.0))
            if trace is not None:
                trace.count("repro_breaker_fail_fast_total", link=link_key)
                trace.event(
                    "breaker_fail_fast", "resilience", link=link_key,
                    attempt=attempt,
                )
            break
        outcome = faults.attempt(sender, receiver, byte_size)
        status = outcome.status
        if status == "ok" and outcome.duration > allowed:
            status = STATUS_TIMEOUT
        if health is not None:
            # Feed the tracker before the deadline can raise: the
            # breaker must learn from an attempt even when that attempt
            # killed the budget.
            health.observe_attempt(
                sender, receiver, status, outcome.duration, faults.clock
            )
        records.append(AttemptRecord(attempt, status, outcome.duration))
        if trace is not None and attempt > 1:
            trace.count("repro_retries_total", link=link_key)
        if trace is not None and status != "ok":
            trace.event(
                "attempt_failed", "resilience", link=link_key,
                attempt=attempt, status=status,
            )
        if deadline is not None:
            deadline.charge(outcome.duration, f"shipment {link_key}")
        if status == "ok":
            return ShipmentReport(tuple(records), True, waited)
        if attempt < retry.max_attempts:
            delay = retry.delay(attempt, key=link_key)
            if deadline is not None:
                # Look before waiting: never sleep into a dead budget.
                deadline.require(delay, f"backoff on {link_key}")
            waited += delay
            faults.wait(delay)
            if deadline is not None:
                deadline.charge(delay, f"backoff on {link_key}")
    return ShipmentReport(tuple(records), False, waited)
