"""Communication cost accounting and static estimation.

Two complementary tools:

* **Measured cost** — :meth:`CostModel.log_cost` prices a
  :class:`~repro.engine.transfers.TransferLog` after an actual run,
  optionally through a network model with per-link latency/bandwidth
  (see :class:`repro.distributed.network.NetworkModel`).

* **Estimated cost** — :func:`estimate_assignment_cost` predicts the
  bytes an assignment will ship *before* running it, from per-relation
  :class:`TableStats`, using textbook System-R style estimates
  (join output cardinality ``|L|·|R| / max(V(L,a), V(R,b))``).  The
  join-order optimizer and the exhaustive baseline rank safe
  assignments with this estimate.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.algebra.tree import (
    PROJECT,
    JoinNode,
    LeafNode,
    PlanNode,
    UnaryNode,
)
from repro.core.assignment import Assignment
from repro.engine.data import Table, cell_width
from repro.engine.transfers import TransferLog
from repro.exceptions import ExecutionError

#: Default selectivity of one selection predicate atom.
DEFAULT_SELECTIVITY = 0.1

#: Default per-attribute width (characters) when stats carry no widths.
DEFAULT_WIDTH = 8.0


def join_path_key(path) -> str:
    """Stable string key of a join path, for observed-selectivity lookup.

    Built from :meth:`~repro.algebra.joins.JoinPath.canonical_key`, so
    equivalent paths (same conditions, any order or attribute flip) map
    to the same key — the `StatsStore` files observed selectivities
    under it.
    """
    return "&".join(f"{a}={b}" for a, b in path.canonical_key())


class TableStats:
    """Cardinality statistics of one (base or derived) relation.

    Attributes:
        rows: tuple count.
        distinct: per-attribute distinct-value counts.
        widths: per-attribute average value widths (characters).
    """

    __slots__ = ("rows", "distinct", "widths")

    def __init__(
        self,
        rows: float,
        distinct: Mapping[str, float],
        widths: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.rows = max(0.0, float(rows))
        self.distinct = dict(distinct)
        self.widths = dict(widths) if widths is not None else {}

    @classmethod
    def of_table(cls, table: Table) -> "TableStats":
        """Exact statistics of a concrete table.

        Widths use the **same canonical accounting** as
        ``Table.byte_size`` (:func:`repro.engine.data.cell_width`), so
        ``bytes_for(table.attributes)`` of an exact-stats table equals
        the payload the executor measures for shipping it — the test
        suite asserts this agreement.  On columnar tables the widths
        come straight from the intern pool's cached per-value widths,
        with no cell decoding or row-order materialization.
        """
        rows = len(table)
        distinct = {a: float(table.distinct_count(a)) for a in table.attributes}
        widths: Dict[str, float] = {}
        if rows:
            column_ids = getattr(table, "column_ids", None)
            if column_ids is not None:
                pooled = table.pool._widths
                for attribute in table.attributes:
                    widths[attribute] = (
                        sum(pooled[i] for i in column_ids(attribute)) / rows
                    )
            else:  # duck-typed row-shaped table (e.g. the frozen oracle)
                for attribute in table.attributes:
                    values = table.column(attribute)
                    widths[attribute] = sum(cell_width(v) for v in values) / rows
        return cls(float(rows), distinct, widths)

    def width_of(self, attribute: str) -> float:
        """Average width of one attribute."""
        return self.widths.get(attribute, DEFAULT_WIDTH)

    def distinct_of(self, attribute: str) -> float:
        """Distinct count of one attribute (bounded by the row count)."""
        return min(self.distinct.get(attribute, self.rows), self.rows) or 1.0

    def row_width(self, attributes) -> float:
        """Average width of a row restricted to ``attributes``."""
        return sum(self.width_of(a) for a in attributes)

    def bytes_for(self, attributes) -> float:
        """Estimated payload of shipping the relation's ``attributes``."""
        return self.rows * self.row_width(attributes)

    def __repr__(self) -> str:
        return f"TableStats(rows={self.rows:.0f}, attrs={sorted(self.distinct)})"


class CostModel:
    """Prices transfers, optionally through a network model.

    Args:
        network: object exposing ``transfer_cost(sender, receiver,
            byte_size)``; ``None`` means cost = bytes (uniform network).
    """

    def __init__(self, network=None) -> None:
        self._network = network

    def transfer_cost(self, sender: str, receiver: str, byte_size: float) -> float:
        """Cost of one shipment."""
        if self._network is None:
            return float(byte_size)
        return float(self._network.transfer_cost(sender, receiver, byte_size))

    def log_cost(self, log: TransferLog) -> float:
        """Total cost of an execution's transfer log."""
        return sum(
            self.transfer_cost(t.sender, t.receiver, t.byte_size) for t in log
        )


class HealthAwareCostModel(CostModel):
    """A cost model that surcharges unhealthy routes.

    Wraps a base :class:`CostModel` and multiplies each link's cost by
    the health tracker's penalty factor — 1.0 for healthy routes, the
    quarantine penalty when either endpoint's or the link's breaker is
    open (see
    :meth:`repro.distributed.health.HealthTracker.penalty_factor`).
    Cost-based planners then steer around flapping servers without any
    hard feasibility change: the policy decides what is *safe*, health
    only reorders what is *cheap*.

    Args:
        health: object exposing ``penalty_factor(sender, receiver)``
            (duck-typed, so the engine layer stays import-acyclic with
            the distributed layer).
        base: the underlying cost model (default: uniform bytes).
    """

    def __init__(self, health, base: Optional[CostModel] = None) -> None:
        super().__init__(None)
        self._health = health
        self._base = base or CostModel()

    def transfer_cost(self, sender: str, receiver: str, byte_size: float) -> float:
        """Base cost scaled by the route's health penalty."""
        cost = self._base.transfer_cost(sender, receiver, byte_size)
        return cost * float(self._health.penalty_factor(sender, receiver))


def _node_stats(
    node: PlanNode,
    base_stats: Mapping[str, TableStats],
    selectivities=None,
) -> TableStats:
    """Estimated statistics of one plan node's output.

    ``selectivities`` is an optional object exposing
    ``selectivity(path_key) -> Optional[float]`` (duck-typed; in
    practice a :class:`repro.profiling.StatsStore`).  When it yields an
    observed selectivity for a join's :func:`join_path_key`, that
    replaces the System-R ``1 / max(V(L,a), V(R,b))`` estimate.
    """
    if isinstance(node, LeafNode):
        name = node.relation.name
        if name not in base_stats:
            raise ExecutionError(f"no statistics provided for relation {name!r}")
        return base_stats[name]
    if isinstance(node, UnaryNode):
        child = _node_stats(node.left, base_stats, selectivities)
        if node.operator == PROJECT:
            kept = node.projection_attributes
            return TableStats(
                child.rows,
                {a: child.distinct_of(a) for a in kept},
                {a: child.width_of(a) for a in kept},
            )
        atoms = max(1, len(node.predicate.comparisons))
        factor = DEFAULT_SELECTIVITY ** atoms
        rows = max(1.0, child.rows * factor)
        return TableStats(
            rows,
            {a: min(d, rows) for a, d in child.distinct.items()},
            child.widths,
        )
    if isinstance(node, JoinNode):
        left = _node_stats(node.left, base_stats, selectivities)
        right = _node_stats(node.right, base_stats, selectivities)
        observed = (
            selectivities.selectivity(join_path_key(node.path))
            if selectivities is not None
            else None
        )
        if observed is not None:
            rows = left.rows * right.rows * observed
        else:
            rows = left.rows * right.rows
            for condition in node.path:
                if condition.first in left.distinct or condition.second in left.distinct:
                    left_attr = condition.first if condition.first in left.distinct else condition.second
                    right_attr = condition.other(left_attr)
                else:
                    left_attr, right_attr = condition.first, condition.second
                rows /= max(left.distinct_of(left_attr), right.distinct_of(right_attr))
        rows = max(1.0, rows)
        distinct = {a: min(d, rows) for a, d in {**left.distinct, **right.distinct}.items()}
        widths = {**left.widths, **right.widths}
        return TableStats(rows, distinct, widths)
    raise ExecutionError(f"unknown node kind: {type(node).__name__}")


class AssignmentEstimate:
    """Per-node, per-flow breakdown of an assignment's cost estimate.

    Attributes:
        total_cost: priced cost of every flow (through the cost model).
        total_bytes: raw predicted bytes on the wire (model-independent).
        node_rows: node id -> estimated output cardinality.
        node_bytes: join node id -> raw predicted bytes its flows ship.
        flows: ``(node_id, sender, receiver)`` -> list of
            ``(bytes, kind)`` predicted flows on that link, in pricing
            order; ``kind`` is one of ``"regular"``, ``"probe"``,
            ``"back"``, ``"coordinator"``.  The profiler matches actual
            transfers against this map to pair estimate with outcome.
    """

    __slots__ = ("total_cost", "total_bytes", "node_rows", "node_bytes", "flows")

    def __init__(self) -> None:
        self.total_cost = 0.0
        self.total_bytes = 0.0
        self.node_rows: Dict[int, float] = {}
        self.node_bytes: Dict[int, float] = {}
        self.flows: Dict[Tuple[int, str, str], list] = {}

    def _add_flow(
        self,
        model: CostModel,
        node_id: int,
        sender: str,
        receiver: str,
        byte_size: float,
        kind: str,
    ) -> None:
        self.total_cost += model.transfer_cost(sender, receiver, byte_size)
        self.total_bytes += byte_size
        self.node_bytes[node_id] = self.node_bytes.get(node_id, 0.0) + byte_size
        self.flows.setdefault((node_id, sender, receiver), []).append(
            (byte_size, kind)
        )


def estimate_assignment_detail(
    assignment: Assignment,
    base_stats: Mapping[str, TableStats],
    cost_model: Optional[CostModel] = None,
    selectivities=None,
) -> AssignmentEstimate:
    """Predicted communication of executing ``assignment``, per flow.

    Walks the plan estimating each node's output statistics, then prices
    every flow the assignment entails: full-operand shipments for regular
    joins, probe + reduced-result shipments for semi-joins, and two
    operand shipments for coordinator joins.  Local flows cost nothing.
    ``selectivities`` optionally refines join cardinalities with
    observed per-path selectivities (see :func:`_node_stats`).
    """
    model = cost_model or CostModel()
    plan = assignment.plan
    estimate = AssignmentEstimate()
    stats: Dict[int, TableStats] = {}
    for node in plan:
        node_stats = _node_stats(node, base_stats, selectivities)
        stats[node.node_id] = node_stats
        estimate.node_rows[node.node_id] = node_stats.rows
    for node in plan:
        if not isinstance(node, JoinNode):
            continue
        node_id = node.node_id
        left_id = node.left.node_id
        right_id = node.right.node_id
        left_server = assignment.master(left_id)
        right_server = assignment.master(right_id)
        executor = assignment.executor(node_id)
        left_stats, right_stats = stats[left_id], stats[right_id]
        left_attrs = assignment.profile(left_id).attributes
        right_attrs = assignment.profile(right_id).attributes

        coordinator = assignment.coordinator(node_id)
        if coordinator is not None:
            estimate._add_flow(
                model,
                node_id,
                left_server,
                coordinator,
                left_stats.bytes_for(left_attrs),
                "coordinator",
            )
            estimate._add_flow(
                model,
                node_id,
                right_server,
                coordinator,
                right_stats.bytes_for(right_attrs),
                "coordinator",
            )
            continue
        if executor.slave is None:
            if executor.master == left_server:
                estimate._add_flow(
                    model,
                    node_id,
                    right_server,
                    left_server,
                    right_stats.bytes_for(right_attrs),
                    "regular",
                )
            else:
                estimate._add_flow(
                    model,
                    node_id,
                    left_server,
                    right_server,
                    left_stats.bytes_for(left_attrs),
                    "regular",
                )
            continue
        # Semi-join: probe with the master operand's join attributes,
        # return the slave-side join restricted to probe ∪ slave columns.
        if executor.master == left_server:
            master_stats, slave_stats = left_stats, right_stats
            master_attrs, slave_attrs = left_attrs, right_attrs
        else:
            master_stats, slave_stats = right_stats, left_stats
            master_attrs, slave_attrs = right_attrs, left_attrs
        join_attrs = sorted(node.path.attributes & master_attrs)
        probe_rows = min(
            master_stats.rows,
            max(master_stats.distinct_of(a) for a in join_attrs) if join_attrs else master_stats.rows,
        )
        probe_bytes = probe_rows * master_stats.row_width(join_attrs)
        estimate._add_flow(
            model, node_id, executor.master, executor.slave, probe_bytes, "probe"
        )
        back_stats = stats[node_id]
        back_bytes = back_stats.rows * (
            master_stats.row_width(join_attrs) + slave_stats.row_width(slave_attrs)
        )
        estimate._add_flow(
            model, node_id, executor.slave, executor.master, back_bytes, "back"
        )
    return estimate


def estimate_assignment_cost(
    assignment: Assignment,
    base_stats: Mapping[str, TableStats],
    cost_model: Optional[CostModel] = None,
    selectivities=None,
) -> float:
    """Predicted communication cost of executing ``assignment`` — the
    ``total_cost`` of :func:`estimate_assignment_detail`."""
    return estimate_assignment_detail(
        assignment, base_stats, cost_model, selectivities
    ).total_cost
