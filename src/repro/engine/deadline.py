"""Per-query deadline budgets over simulated time.

PR 1 bounded *attempts* (a retry policy caps tries per shipment) but
nothing bounded *time*: a query could burn arbitrarily long in backoff
loops and failover rounds.  A :class:`DeadlineBudget` is a single
simulated-time allowance for one query execution; everything that
advances the fault injector's logical clock on the query's behalf —
attempt durations, backoff waits — is charged against it, and the first
charge that overdraws raises a structured
:class:`~repro.exceptions.DeadlineExceededError`.

Fail-fast is the point: before a backoff wait, the retry loop asks
:meth:`DeadlineBudget.require` whether the wait still fits — if not, the
budget dies *now* instead of sleeping into certain death.  The failover
layer attaches the execution's checkpoint journal to the error, so the
caller can resume from the last audited subtree with a fresh budget (see
:mod:`repro.engine.checkpoint`).

Budgets are plain accumulators over the injector's deterministic clock:
no wall time, no threads, fully replayable.
"""

from __future__ import annotations

import math

from repro.exceptions import DeadlineExceededError, ResilienceConfigError


class DeadlineBudget:
    """A simulated-time allowance for one query execution.

    Args:
        budget: total logical-time units the execution may spend.
    """

    __slots__ = ("budget", "_spent", "_charges", "_trace")

    def __init__(self, budget: float) -> None:
        budget = float(budget)
        if not math.isfinite(budget) or budget <= 0:
            raise ResilienceConfigError(
                f"deadline budget must be positive and finite (got {budget!r})"
            )
        self.budget = budget
        self._spent = 0.0
        self._charges = 0
        self._trace = None

    def bind_trace(self, trace) -> None:
        """Attach a :class:`~repro.obs.trace.TraceContext`; every charge
        is then counted into ``repro_deadline_spend_total`` and the
        remaining budget mirrored onto a gauge."""
        self._trace = trace

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def spent(self) -> float:
        """Logical time charged so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget left (never negative)."""
        return max(0.0, self.budget - self._spent)

    @property
    def exceeded(self) -> bool:
        """Whether spending has passed the budget."""
        return self._spent > self.budget

    @property
    def charges(self) -> int:
        """Number of charges recorded."""
        return self._charges

    def would_exceed(self, amount: float) -> bool:
        """Whether charging ``amount`` more would overdraw the budget."""
        return self._spent + amount > self.budget

    def charge(self, amount: float, reason: str = "") -> None:
        """Charge ``amount`` of spent logical time.

        Raises:
            DeadlineExceededError: the moment spending passes the
                budget.  The charge is recorded first — the time *was*
                spent — so ``spent`` reflects reality in the error.
        """
        if amount < 0:
            raise ResilienceConfigError("cannot charge negative time")
        self._spent += amount
        self._charges += 1
        if self._trace is not None:
            self._trace.count("repro_deadline_spend_total", amount)
            self._trace.metrics.set_gauge(
                "repro_deadline_remaining", self.remaining
            )
            self._trace.event(
                "deadline_charge", "deadline", amount=amount, reason=reason,
                spent=self._spent,
            )
        if self._spent > self.budget:
            raise DeadlineExceededError(
                f"deadline budget exhausted after {self._spent:.2f} of "
                f"{self.budget:.2f} logical-time units"
                + (f" (while {reason})" if reason else ""),
                spent=self._spent,
                budget=self.budget,
                reason=reason,
            )

    def require(self, amount: float, reason: str = "") -> None:
        """Fail fast if ``amount`` more time no longer fits.

        Unlike :meth:`charge` this spends nothing — it is the
        look-before-you-wait check the retry loop runs before a backoff
        delay, so execution never sleeps into an already-dead budget.

        Raises:
            DeadlineExceededError: when ``amount`` would overdraw.
        """
        if self.would_exceed(amount):
            raise DeadlineExceededError(
                f"deadline budget cannot cover {amount:.2f} more "
                f"logical-time units ({self._spent:.2f} spent of "
                f"{self.budget:.2f})" + (f" (while {reason})" if reason else ""),
                spent=self._spent,
                budget=self.budget,
                reason=reason,
            )

    def describe(self) -> str:
        """``spent/budget`` one-liner for summaries."""
        return f"{self._spent:.1f}/{self.budget:.1f}"

    def __repr__(self) -> str:
        return (
            f"DeadlineBudget(spent={self._spent:.2f}, budget={self.budget:.2f}, "
            f"charges={self._charges})"
        )
