"""Tuple-level distributed execution engine.

The paper's model is symbolic, but its claims are operational: a safe
assignment's execution must expose each server only to authorized views,
and semi-joins must move fewer bytes than regular joins.  This package
makes both claims executable:

* :mod:`repro.engine.data` — immutable set-semantics tables, stored
  columnar over a shared intern pool;
* :mod:`repro.engine.operators` — the batch-first operator interface
  (blocks, open/next-batch/close) and centralized plan evaluation (the
  correctness oracle);
* :mod:`repro.engine.transfers` — transfer records and logs;
* :mod:`repro.engine.audit` — runtime authorization enforcement on every
  transfer;
* :mod:`repro.engine.executor` — distributed execution of an assigned
  plan following the Figure 5 flows;
* :mod:`repro.engine.coster` — communication cost accounting and static
  cost estimation.
"""

from repro.engine.data import ColumnarTable, InternPool, Table, cell_width, shared_pool
from repro.engine.operators import (
    DEFAULT_BATCH_SIZE,
    BatchOperator,
    Block,
    FilterOperator,
    HashJoinOperator,
    ProjectOperator,
    TableScan,
    compile_plan,
    evaluate_plan,
    materialize,
)
from repro.engine.transfers import Transfer, TransferLog
from repro.engine.audit import AuditLog
from repro.engine.executor import DistributedExecutor, ExecutionResult
from repro.engine.resilience import (
    STATUS_BREAKER_OPEN,
    STATUS_TIMEOUT,
    AttemptRecord,
    RetryPolicy,
    ShipmentReport,
    attempt_shipment,
)
from repro.engine.deadline import DeadlineBudget
from repro.engine.checkpoint import (
    CheckpointEntry,
    CheckpointJournal,
    plan_signature,
)
from repro.engine.coster import (
    CostModel,
    HealthAwareCostModel,
    TableStats,
    estimate_assignment_cost,
)
from repro.engine.timeline import Timeline, TimelineEvent, simulate_timeline

__all__ = [
    "Timeline",
    "TimelineEvent",
    "simulate_timeline",
    "Table",
    "ColumnarTable",
    "InternPool",
    "cell_width",
    "shared_pool",
    "evaluate_plan",
    "compile_plan",
    "materialize",
    "Block",
    "BatchOperator",
    "TableScan",
    "ProjectOperator",
    "FilterOperator",
    "HashJoinOperator",
    "DEFAULT_BATCH_SIZE",
    "Transfer",
    "TransferLog",
    "AuditLog",
    "DistributedExecutor",
    "ExecutionResult",
    "STATUS_BREAKER_OPEN",
    "STATUS_TIMEOUT",
    "AttemptRecord",
    "RetryPolicy",
    "ShipmentReport",
    "attempt_shipment",
    "DeadlineBudget",
    "CheckpointEntry",
    "CheckpointJournal",
    "plan_signature",
    "CostModel",
    "HealthAwareCostModel",
    "TableStats",
    "estimate_assignment_cost",
]
