"""Latency timeline simulation.

Byte counts rank strategies by bandwidth; *latency* ranks them by
round trips — and the two disagree exactly where the classic semi-join
literature says they do: a semi-join serializes two transfers (probe
out, reduced result back) where a regular join needs one, so on
high-latency links with small relations the regular join responds
faster even though it ships more bytes.

This module schedules an executed plan's transfers over a
:class:`~repro.distributed.network.NetworkModel` and computes each
node's *ready time* and the query **makespan**:

* a leaf is ready at time 0 (local scan; computation is free in this
  model — the paper's cost discussion is communication-only);
* a unary node is ready when its operand is;
* a regular join is ready when the master's operand is ready and the
  shipped operand has arrived;
* a semi-join serializes probe and return: the probe leaves when the
  master operand is ready, the slave joins when probe and its operand
  are both there, the return leg completes the node;
* a coordinator join is ready when the later of the two inbound
  shipments arrives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra.tree import JoinNode, LeafNode, PlanNode, UnaryNode
from repro.core.assignment import Assignment
from repro.distributed.network import NetworkModel
from repro.engine.transfers import Transfer, TransferLog
from repro.exceptions import ExecutionError


class TimelineEvent:
    """One scheduled communication.

    Attributes:
        transfer: the underlying transfer record.
        start: departure time.
        finish: arrival time (start + network cost of the payload).
    """

    __slots__ = ("transfer", "start", "finish")

    def __init__(self, transfer: Transfer, start: float, finish: float) -> None:
        self.transfer = transfer
        self.start = start
        self.finish = finish

    def __repr__(self) -> str:
        return (
            f"TimelineEvent({self.transfer.sender} -> {self.transfer.receiver} "
            f"[{self.start:.2f}, {self.finish:.2f}])"
        )


class Timeline:
    """The schedule of one execution.

    Attributes:
        events: all communications in start-time order.
        ready: per-node completion times.
        makespan: completion time of the whole query (including the
            recipient delivery when one was simulated).
    """

    __slots__ = ("events", "ready", "makespan")

    def __init__(
        self, events: List[TimelineEvent], ready: Dict[int, float], makespan: float
    ) -> None:
        self.events = sorted(events, key=lambda e: (e.start, e.finish))
        self.ready = ready
        self.makespan = makespan

    def describe(self) -> str:
        """One line per event plus the makespan."""
        lines = [
            f"t={event.start:8.2f} .. {event.finish:8.2f}  "
            f"{event.transfer.sender} -> {event.transfer.receiver}  "
            f"({event.transfer.description})"
            for event in self.events
        ]
        lines.append(f"makespan: {self.makespan:.2f}")
        return "\n".join(lines)


def simulate_timeline(
    assignment: Assignment,
    transfers: TransferLog,
    network: Optional[NetworkModel] = None,
) -> Timeline:
    """Schedule an executed plan's transfers and compute the makespan.

    Args:
        assignment: the executed assignment (for structure and modes).
        transfers: the transfer log of the actual run (for volumes).
        network: link model; defaults to a uniform unit-bandwidth,
            zero-latency network (makespan == bytes on the critical path).

    Raises:
        ExecutionError: if the log does not contain the transfers the
            assignment's structure implies (e.g. a log from a different
            run).
    """
    network = network or NetworkModel()
    by_node: Dict[int, List[Transfer]] = {}
    delivery: Optional[Transfer] = None
    for transfer in transfers:
        if transfer.description.startswith("result"):
            delivery = transfer
            continue
        by_node.setdefault(transfer.node_id, []).append(transfer)

    events: List[TimelineEvent] = []
    ready: Dict[int, float] = {}

    def cost(transfer: Transfer) -> float:
        return network.transfer_cost(
            transfer.sender, transfer.receiver, transfer.byte_size
        )

    def pick(node_id: int, fragment: str) -> Optional[Transfer]:
        for transfer in by_node.get(node_id, ()):
            if fragment in transfer.description:
                return transfer
        return None

    plan = assignment.plan
    for node in plan:
        if isinstance(node, LeafNode):
            ready[node.node_id] = 0.0
        elif isinstance(node, UnaryNode):
            ready[node.node_id] = ready[node.left.node_id]
        elif isinstance(node, JoinNode):
            ready[node.node_id] = _schedule_join(
                assignment, node, ready, by_node, pick, cost, events
            )
        else:  # pragma: no cover - closed node kinds
            raise ExecutionError(f"unknown node kind: {type(node).__name__}")

    makespan = ready[plan.root.node_id]
    if delivery is not None:
        event = TimelineEvent(delivery, makespan, makespan + cost(delivery))
        events.append(event)
        makespan = event.finish
    return Timeline(events, ready, makespan)


def _schedule_join(assignment, node, ready, by_node, pick, cost, events) -> float:
    left_ready = ready[node.left.node_id]
    right_ready = ready[node.right.node_id]
    left_master = assignment.master(node.left.node_id)
    right_master = assignment.master(node.right.node_id)
    executor = assignment.executor(node.node_id)
    node_id = node.node_id

    coordinator = assignment.coordinator(node_id)
    if coordinator is not None:
        finishes = []
        for fragment, child_ready in (
            ("R_l -> coordinator", left_ready),
            ("R_r -> coordinator", right_ready),
        ):
            transfer = pick(node_id, fragment)
            if transfer is None:
                raise ExecutionError(
                    f"log lacks the {fragment!r} transfer of join n{node_id}"
                )
            event = TimelineEvent(transfer, child_ready, child_ready + cost(transfer))
            events.append(event)
            finishes.append(event.finish)
        return max(finishes)

    if executor.slave is None:
        # Regular (possibly local) join at the master.
        if executor.master == left_master:
            shipped_ready, master_ready = right_ready, left_ready
        else:
            shipped_ready, master_ready = left_ready, right_ready
        transfer = pick(node_id, "-> master")
        if transfer is None:
            # Fully local join: no communication, ready when both are.
            return max(left_ready, right_ready)
        event = TimelineEvent(transfer, shipped_ready, shipped_ready + cost(transfer))
        events.append(event)
        return max(event.finish, master_ready)

    # Semi-join: probe leg then return leg, serialized.
    if executor.master == left_master:
        master_ready, slave_ready = left_ready, right_ready
    else:
        master_ready, slave_ready = right_ready, left_ready
    probe = pick(node_id, "probe -> slave")
    back = pick(node_id, "join -> master")
    if probe is None or back is None:
        raise ExecutionError(
            f"log lacks the semi-join transfers of join n{node_id}"
        )
    probe_event = TimelineEvent(probe, master_ready, master_ready + cost(probe))
    events.append(probe_event)
    slave_start = max(probe_event.finish, slave_ready)
    back_event = TimelineEvent(back, slave_start, slave_start + cost(back))
    events.append(back_event)
    return back_event.finish
