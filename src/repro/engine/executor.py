"""Distributed execution of an assigned query plan.

Executes a query tree plan *as the assignment dictates*: every operation
runs at its executor's master, joins follow the Figure 5 flows exactly
(regular shipments, semi-join probe/return round-trips, or third-party
coordinator shipments), and every cross-server transfer is measured and
— when a policy is supplied — audited before it happens.

The executor is a faithful simulator rather than a network service: the
"servers" are table namespaces, and shipping a table means recording a
:class:`~repro.engine.transfers.Transfer` with the table's real row and
byte volume.  This is exactly the level of abstraction at which the
paper's cost and safety claims live.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.algebra.tree import (
    PROJECT,
    JoinNode,
    LeafNode,
    PlanNode,
    UnaryNode,
)
from repro.core.assignment import Assignment
from repro.core.flows import semi_join_probe_profile, semi_join_result_profile
from repro.core.profile import RelationProfile
from repro.engine.audit import AuditLog
from repro.engine.data import Table
from repro.engine.operators import (
    DEFAULT_BATCH_SIZE,
    BatchOperator,
    FilterOperator,
    HashJoinOperator,
    ProjectOperator,
    TableScan,
    materialize,
)
from repro.engine.resilience import RetryPolicy, attempt_shipment
from repro.engine.transfers import Transfer, TransferLog
from repro.exceptions import ExecutionError, TransferFailedError


class ExecutionResult:
    """Outcome of one distributed execution.

    Attributes:
        table: the query result.
        result_server: server holding the result (root master, or the
            recipient when one was given).
        transfers: every cross-server shipment performed.
        audit: the audit log (``None`` for unaudited runs).
        failovers: how many times the execution was re-planned onto
            surviving servers before completing (0 for fault-free runs).
        breaker_trips: circuit-breaker trips observed by the run's
            health tracker (0 when none was attached).
        checkpointed: subtree results journaled by the run.
        resumed: checkpointed subtree results reused instead of
            re-executed.
        deadline: the run's :class:`~repro.engine.deadline.DeadlineBudget`
            (``None`` when no budget was set).
        checkpoint: the run's
            :class:`~repro.engine.checkpoint.CheckpointJournal` (``None``
            when journaling was off).
        plan_cache: snapshot of the system's plan-cache counters at the
            end of the run (:meth:`repro.core.plancache.PlanCache.snapshot`;
            ``None`` when the cache is disabled).
        profile: the run's :class:`~repro.profiling.QueryProfile`
            (``None`` unless a profiler was attached; stamped by the
            pipeline after the run finishes).
    """

    __slots__ = (
        "table",
        "result_server",
        "transfers",
        "audit",
        "failovers",
        "breaker_trips",
        "checkpointed",
        "resumed",
        "deadline",
        "checkpoint",
        "plan_cache",
        "profile",
    )

    def __init__(
        self,
        table: Table,
        result_server: str,
        transfers: TransferLog,
        audit: Optional[AuditLog],
        failovers: int = 0,
        breaker_trips: int = 0,
        checkpointed: int = 0,
        resumed: int = 0,
        deadline=None,
        checkpoint=None,
        plan_cache: Optional[dict] = None,
        profile=None,
    ) -> None:
        self.table = table
        self.result_server = result_server
        self.transfers = transfers
        self.audit = audit
        self.failovers = failovers
        self.breaker_trips = breaker_trips
        self.checkpointed = checkpointed
        self.resumed = resumed
        self.deadline = deadline
        self.checkpoint = checkpoint
        self.plan_cache = plan_cache
        self.profile = profile

    def summary_dict(self) -> dict:
        """Stable, flat JSON-safe summary of the run.

        Every key is always present — breaker/deadline/checkpoint and
        plan-cache fields are emitted with zero/``None``/``False``
        values when the corresponding feature was off — so downstream
        JSON consumers get one schema regardless of which features a
        run enabled.
        """
        return {
            "rows": len(self.table),
            "result_server": self.result_server,
            "transfers": len(self.transfers),
            "bytes": self.transfers.total_bytes(),
            "retries": self.transfers.total_retries(),
            "failovers": self.failovers,
            "audited": self.audit is not None,
            "violations": (
                len(self.audit.violations) if self.audit is not None else 0
            ),
            "breaker_trips": self.breaker_trips,
            "deadline_budget": (
                self.deadline.budget if self.deadline is not None else None
            ),
            "deadline_spent": (
                self.deadline.spent if self.deadline is not None else 0.0
            ),
            "deadline_remaining": (
                self.deadline.remaining if self.deadline is not None else None
            ),
            "checkpointed": self.checkpointed,
            "resumed": self.resumed,
            "plan_cache_enabled": self.plan_cache is not None,
            "plan_cache_hits": (
                self.plan_cache["hits"] if self.plan_cache is not None else 0
            ),
            "plan_cache_misses": (
                self.plan_cache["misses"] if self.plan_cache is not None else 0
            ),
            "plan_cache_revalidations": (
                self.plan_cache["revalidations"] if self.plan_cache is not None else 0
            ),
            "plan_cache_revalidation_failures": (
                self.plan_cache["revalidation_failures"]
                if self.plan_cache is not None
                else 0
            ),
            "plan_cache_coalesced": (
                self.plan_cache.get("coalesced", 0)
                if self.plan_cache is not None
                else 0
            ),
        }

    def summary(self) -> str:
        """One line: rows, transfers, retries, failovers, audit outcome,
        plus breaker/deadline/checkpoint accounting when present.

        Used by the CLI's ``execute`` command and the fault benchmarks.
        """
        retries = self.transfers.total_retries()
        if self.audit is None:
            audit = "unaudited"
        elif self.audit.all_authorized():
            audit = "clean"
        else:
            audit = f"{len(self.audit.violations)} violations"
        line = (
            f"{len(self.table)} rows at {self.result_server} | "
            f"{len(self.transfers)} transfers / {self.transfers.total_bytes()} B | "
            f"{retries} retries | {self.failovers} failovers | audit {audit}"
        )
        if self.breaker_trips:
            line += f" | {self.breaker_trips} breaker trips"
        if self.deadline is not None:
            line += (
                f" | deadline {self.deadline.describe()} "
                f"({self.deadline.remaining:.1f} left)"
            )
        if self.checkpointed or self.resumed:
            line += f" | {self.checkpointed} checkpointed / {self.resumed} resumed"
        return line

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({len(self.table)} rows at {self.result_server}, "
            f"{len(self.transfers)} transfers)"
        )


class DistributedExecutor:
    """Executes one assignment over concrete base tables.

    Args:
        assignment: a complete executor assignment (with profiles), e.g.
            from :class:`~repro.core.planner.SafePlanner`.
        tables: base tables keyed by relation name.
        policy: when given, every transfer is audited against it.
        enforce: forwarded to :class:`~repro.engine.audit.AuditLog`;
            with ``enforce=False`` violations are recorded, not raised
            (useful to measure what an unsafe strategy would leak).
        faults: optional fault injector (see
            :class:`~repro.distributed.faults.FaultInjector`); when
            given, every shipment is attempted through it under
            ``retry``, attempt counts are recorded on each transfer and
            exhausted retries raise
            :class:`~repro.exceptions.TransferFailedError`.  When
            ``None`` (the default) the execution path is exactly the
            fault-unaware one.
        retry: retry policy for fault-aware shipping (default: a fresh
            :class:`~repro.engine.resilience.RetryPolicy`).
        reuse: ``node_id -> Table`` results materialized by an earlier
            execution attempt; required for every node the assignment
            marks materialized.
        health: optional :class:`~repro.distributed.health.HealthTracker`
            (duck-typed); every shipment attempt feeds it and is refused
            fast when its breaker is open.
        deadline: optional :class:`~repro.engine.deadline.DeadlineBudget`;
            shipment durations and backoff waits are charged against it.
        checkpoint: optional
            :class:`~repro.engine.checkpoint.CheckpointJournal`; every
            completed non-leaf subtree whose holder is authorized for
            its profile is journaled (audited runs only), so a killed
            run can resume.
        trace: optional :class:`~repro.obs.trace.TraceContext`; every
            cross-server shipment then opens one ``transfer`` span
            stamped with the covering-authorization id, joins open
            ``join`` spans, and bytes/retries feed the metrics registry.
        batch_size: rows per block in the local batch pipelines (joins,
            projections, selections all stream blocks of this size).
            Purely a throughput knob — results, transfers, audit entries
            and spans are identical at any batch size.
        profiler: optional :class:`~repro.profiling.QueryProfiler` with
            an **active profile** (``start()`` called); every operator,
            transfer, drained block and CanView probe is then recorded
            into it.  The hooks are bound onto the instance only when a
            profiler is attached — the same structural trick as the
            tracer — so the unprofiled path stays byte-for-byte the
            uninstrumented one.
    """

    def __init__(
        self,
        assignment: Assignment,
        tables: Mapping[str, Table],
        policy=None,
        enforce: bool = True,
        faults=None,
        retry: Optional[RetryPolicy] = None,
        reuse: Optional[Mapping[int, Table]] = None,
        health=None,
        deadline=None,
        checkpoint=None,
        trace=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        profiler=None,
    ) -> None:
        assignment.validate_structure()
        self._assignment = assignment
        self._tables = dict(tables)
        self._log = TransferLog()
        self._trace = trace
        self._audit = (
            AuditLog(policy, enforce=enforce, trace=trace)
            if policy is not None
            else None
        )
        self._faults = faults
        self._retry = retry if retry is not None else (RetryPolicy() if faults is not None else None)
        self._reuse = dict(reuse or {})
        self._health = health
        self._deadline = deadline
        self._checkpoint = checkpoint
        self._batch_size = batch_size
        self._completed: Dict[int, Tuple[str, Table]] = {}
        self._profiler = profiler
        if profiler is not None:
            # Structural binding: shadow the hot methods on *this
            # instance* only, so unprofiled executors never pay even an
            # `if self._profiler` per node/shipment/block.
            self._execute_node = self._profiled_execute_node
            self._ship_once = self._profiled_ship_once
            self._drain = self._profiled_drain

    def completed_subtrees(self) -> Dict[int, Tuple[str, Table]]:
        """Node results that materialized before a failure, keyed by node
        id, each with the server holding it.  Populated only for
        fault-aware runs; the failover layer feeds surviving entries back
        as ``reuse`` after re-planning."""
        return dict(self._completed)

    def run(self, recipient: Optional[str] = None) -> ExecutionResult:
        """Execute the plan; optionally deliver the result to ``recipient``.

        Raises:
            AuditViolationError: on an unauthorized transfer (audited,
                enforcing runs).
            ExecutionError: on missing instances or operator failures.
        """
        root = self._assignment.plan.root
        table = self._execute(root)
        result_server = self._assignment.master(root.node_id)
        if recipient is not None:
            table = self._ship(
                table,
                self._assignment.profile(root.node_id),
                sender=result_server,
                receiver=recipient,
                description="result -> recipient",
                node_id=root.node_id,
            )
            result_server = recipient
        return ExecutionResult(
            table,
            result_server,
            self._log,
            self._audit,
            breaker_trips=(
                self._health.breaker_trips() if self._health is not None else 0
            ),
            checkpointed=len(self._checkpoint) if self._checkpoint is not None else 0,
            resumed=len(self._reuse),
            deadline=self._deadline,
            checkpoint=self._checkpoint,
        )

    # ------------------------------------------------------------------
    # Node execution
    # ------------------------------------------------------------------

    def _execute(self, node: PlanNode) -> Table:
        if self._assignment.is_materialized(node.node_id):
            if node.node_id not in self._reuse:
                raise ExecutionError(
                    f"node n{node.node_id} is marked materialized but no "
                    "reused result was provided"
                )
            return self._reuse[node.node_id]
        table = self._execute_node(node)
        if not isinstance(node, LeafNode):
            server = self._assignment.master(node.node_id)
            if self._faults is not None:
                self._completed[node.node_id] = (server, table)
            if self._checkpoint is not None and self._audit is not None:
                from repro.core.access import can_view  # local: avoids cycle

                profile = self._assignment.profile(node.node_id)
                # Journal only what is audited-safe to park: the holder
                # must be authorized for the view it would resume with.
                if can_view(self._audit.policy, profile, server):
                    self._checkpoint.record(node.node_id, server, profile, table)
        return table

    def _execute_node(self, node: PlanNode) -> Table:
        if isinstance(node, LeafNode):
            name = node.relation.name
            if name not in self._tables:
                raise ExecutionError(f"no instance provided for base relation {name!r}")
            return self._tables[name]
        if isinstance(node, UnaryNode):
            child = self._execute(node.left)
            scan = TableScan(child, self._batch_size)
            if node.operator == PROJECT:
                return self._drain(
                    ProjectOperator(scan, sorted(node.projection_attributes)),
                    "project",
                )
            return self._drain(FilterOperator(scan, node.predicate), "filter")
        if isinstance(node, JoinNode):
            return self._execute_join(node)
        raise ExecutionError(f"unknown node kind: {type(node).__name__}")

    def _drain(self, operator: BatchOperator, kind: str) -> Table:
        """Materialize a batch pipeline, feeding block/row counts into the
        ``repro_exec_batch_*`` metric families (metrics only — no spans,
        so trace goldens are untouched)."""
        trace = self._trace
        if trace is None:
            return materialize(operator)

        def observer(blocks: int, rows: int) -> None:
            trace.count("repro_exec_batch_blocks_total", blocks, op=kind)
            trace.count("repro_exec_batch_rows_total", rows, op=kind)

        return materialize(operator, observer)

    # ------------------------------------------------------------------
    # Profiled variants, bound per-instance when a profiler is attached
    # ------------------------------------------------------------------

    def _profiled_execute_node(self, node: PlanNode) -> Table:
        from repro.engine.coster import TableStats, join_path_key

        profiler = self._profiler
        started = profiler.now()
        table = DistributedExecutor._execute_node(self, node)
        finished = profiler.now()
        node_id = node.node_id
        server = self._assignment.master(node_id)
        if isinstance(node, LeafNode):
            stats = TableStats.of_table(table)
            profiler.record_relation(
                node.relation.name, stats.rows, stats.distinct, stats.widths
            )
            profiler.record_operator(
                node_id, "scan", server, len(table), started, finished,
                relation=node.relation.name,
            )
        elif isinstance(node, UnaryNode):
            profiler.record_operator(
                node_id, str(node.operator), server, len(table), started,
                finished, left_id=node.left.node_id,
            )
        else:
            executor = self._assignment.executor(node_id)
            if self._assignment.coordinator(node_id) is not None:
                kind = "coordinator_join"
            elif executor.slave is None:
                kind = "regular_join"
            else:
                kind = "semi_join"
            profiler.record_operator(
                node_id, kind, server, len(table), started, finished,
                path_key=join_path_key(node.path),
                left_id=node.left.node_id, right_id=node.right.node_id,
            )
        return table

    def _profiled_drain(self, operator: BatchOperator, kind: str) -> Table:
        profiler = self._profiler
        trace = self._trace
        if trace is None:

            def observer(blocks: int, rows: int) -> None:
                profiler.record_blocks(kind, blocks, rows)

        else:

            def observer(blocks: int, rows: int) -> None:
                profiler.record_blocks(kind, blocks, rows)
                trace.count("repro_exec_batch_blocks_total", blocks, op=kind)
                trace.count("repro_exec_batch_rows_total", rows, op=kind)

        return materialize(operator, observer)

    def _profiled_ship_once(
        self,
        table: Table,
        profile: RelationProfile,
        sender: str,
        receiver: str,
        description: str,
        node_id: int,
        span,
    ) -> Table:
        result = DistributedExecutor._ship_once(
            self, table, profile, sender, receiver, description, node_id, span
        )
        # Only delivered shipments are recorded (a fault raises above);
        # the audit probe count mirrors the audit log one-to-one.
        profiler = self._profiler
        if self._audit is not None:
            profiler.record_probe()
        profiler.record_transfer(
            node_id, sender, receiver, len(table), table.byte_size(), description
        )
        return result

    def _join_tables(self, left: Table, right: Table, path) -> Table:
        """Stream an equi-join of two local tables (left = probe side)."""
        operator = HashJoinOperator(
            TableScan(left, self._batch_size),
            TableScan(right, self._batch_size),
            path,
        )
        return self._drain(operator, "hash_join")

    def _execute_join(self, node: JoinNode) -> Table:
        if self._trace is None:
            return self._execute_join_inner(node)
        executor = self._assignment.executor(node.node_id)
        with self._trace.span(
            "join",
            "engine",
            track=executor.master,
            node=f"n{node.node_id}",
            master=executor.master,
            slave=executor.slave,
        ):
            return self._execute_join_inner(node)

    def _execute_join_inner(self, node: JoinNode) -> Table:
        assignment = self._assignment
        left_table = self._execute(node.left)
        right_table = self._execute(node.right)
        left_server = assignment.master(node.left.node_id)
        right_server = assignment.master(node.right.node_id)
        left_profile = assignment.profile(node.left.node_id)
        right_profile = assignment.profile(node.right.node_id)
        executor = assignment.executor(node.node_id)
        where = f"join n{node.node_id}"

        coordinator = assignment.coordinator(node.node_id)
        if coordinator is not None:
            shipped_left = self._ship(
                left_table, left_profile, left_server, coordinator,
                f"{where}: R_l -> coordinator", node.node_id,
            )
            shipped_right = self._ship(
                right_table, right_profile, right_server, coordinator,
                f"{where}: R_r -> coordinator", node.node_id,
            )
            return self._join_tables(shipped_left, shipped_right, node.path)

        if executor.slave is None:
            # Regular join at the master (local when both operands are
            # already there — then the shipment below is a no-op).
            if executor.master == left_server:
                shipped = self._ship(
                    right_table, right_profile, right_server, executor.master,
                    f"{where}: R_r -> master", node.node_id,
                )
                return self._join_tables(left_table, shipped, node.path)
            if executor.master == right_server:
                shipped = self._ship(
                    left_table, left_profile, left_server, executor.master,
                    f"{where}: R_l -> master", node.node_id,
                )
                return self._join_tables(shipped, right_table, node.path)
            raise ExecutionError(
                f"{where}: master {executor.master} holds neither operand"
            )

        # Semi-join (Figure 5 five-step sequence).
        if executor.master == left_server and executor.slave == right_server:
            master_table, master_profile = left_table, left_profile
            slave_table = right_table
            master_is_left = True
        elif executor.master == right_server and executor.slave == left_server:
            master_table, master_profile = right_table, right_profile
            slave_table = left_table
            master_is_left = False
        else:
            raise ExecutionError(
                f"{where}: executor {executor} does not match operand servers "
                f"({left_server}, {right_server})"
            )
        join_attributes = sorted(node.path.attributes & frozenset(master_table.attributes))
        if not join_attributes:
            raise ExecutionError(f"{where}: master operand carries no join attributes")

        # Step 1-2: project the master operand on its join attributes and
        # ship the probe to the slave.
        probe = self._drain(
            ProjectOperator(
                TableScan(master_table, self._batch_size), join_attributes
            ),
            "project",
        )
        probe_profile = semi_join_probe_profile(master_profile, frozenset(join_attributes))
        probe = self._ship(
            probe, probe_profile, executor.master, executor.slave,
            f"{where}: probe -> slave", node.node_id,
        )
        # Step 3-4: the slave joins the probe with its operand and ships
        # the (reduced) result back.
        slave_join = self._join_tables(probe, slave_table, node.path)
        slave_operand_profile = right_profile if master_is_left else left_profile
        back_profile = semi_join_result_profile(
            master_profile, slave_operand_profile, frozenset(join_attributes), node.path
        )
        slave_join = self._ship(
            slave_join, back_profile, executor.slave, executor.master,
            f"{where}: join -> master", node.node_id,
        )
        # Step 5: recombine with the full master operand (natural join on
        # the probe columns).
        return master_table.natural_join(slave_join)

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    def _ship(
        self,
        table: Table,
        profile: RelationProfile,
        sender: str,
        receiver: str,
        description: str,
        node_id: int,
    ) -> Table:
        """Move a table across servers: audit, attempt, record.

        The authorization check always precedes any shipment attempt —
        unauthorized bytes never reach the fault layer, so faults can
        only delay or deny data the policy already permits.

        With a trace installed, each (non-local) shipment is exactly one
        ``transfer`` span carrying the covering-authorization id — the
        span count matches the audit log entry count one-to-one on runs
        where every shipment delivers.
        """
        if sender == receiver:
            return table
        trace = self._trace
        if trace is None:
            return self._ship_once(
                table, profile, sender, receiver, description, node_id, None
            )
        link = f"{sender}->{receiver}"
        span = trace.begin(
            "transfer",
            "engine",
            track=sender,
            link=link,
            receiver=receiver,
            node=f"n{node_id}",
            rows=len(table),
            bytes=table.byte_size(),
            description=description,
        )
        delivered = False
        try:
            result = self._ship_once(
                table, profile, sender, receiver, description, node_id, span
            )
            delivered = True
            return result
        finally:
            span.attrs["delivered"] = delivered
            trace.count("repro_transfers_total", link=link)
            if delivered:
                size = table.byte_size()
                trace.count("repro_bytes_shipped_total", size, link=link)
                trace.metrics.observe("repro_transfer_bytes", size, link=link)
            trace.end(span)

    def _ship_once(
        self,
        table: Table,
        profile: RelationProfile,
        sender: str,
        receiver: str,
        description: str,
        node_id: int,
        span,
    ) -> Table:
        authorized_by = None
        violation = False
        if self._audit is not None:
            # A single exact-path probe decides the release and yields
            # the covering rule in one pass (see AuditLog.authorize).
            allowed, authorized_by = self._audit.authorize(
                sender, receiver, profile
            )
            if span is not None:
                span.attrs["auth_id"] = self._audit.rule_id(authorized_by)
            if not allowed:
                # Either raises (enforcing) or falls through as a recorded
                # violation (measure-only runs).
                self._audit.deny(sender, receiver, profile)
                violation = True
        attempts, outcomes, retry_delay = 1, ("ok",), 0.0
        if self._faults is not None:
            report = attempt_shipment(
                self._faults,
                self._retry,
                sender,
                receiver,
                table.byte_size(),
                health=self._health,
                deadline=self._deadline,
                trace=self._trace,
            )
            if span is not None:
                span.attrs["attempts"] = report.attempt_count
            if not report.delivered:
                raise TransferFailedError(
                    f"{description}: shipment {sender} -> {receiver} failed "
                    f"after {report.attempt_count} attempts "
                    f"(last: {report.last_status})",
                    sender=sender,
                    receiver=receiver,
                    report=report,
                )
            attempts = report.attempt_count
            outcomes = report.outcomes
            retry_delay = report.retry_delay
        transfer = Transfer(
            sender=sender,
            receiver=receiver,
            profile=profile,
            row_count=len(table),
            byte_size=table.byte_size(),
            description=description,
            node_id=node_id,
            authorized_by=authorized_by,
            attempts=attempts,
            outcomes=outcomes,
            retry_delay=retry_delay,
        )
        if span is not None and violation:
            span.attrs["violation"] = True
        self._log.record(transfer)
        if self._audit is not None:
            self._audit.record(transfer, violation=violation)
        return table
