"""Query profiling: per-operator runtime profiles and the statistics
store that feeds observed cardinalities back into the cost model.

`QueryProfiler` collects one `QueryProfile` per pipeline run — rows per
operator, bytes per transfer against the coster's estimate, CanView
probe counts, and logical/wall time.  `StatsStore` harvests those
profiles into decayed per-relation and per-join-path statistics that
`StatsAwareCostModel` (core/costplanner) consumes, closing the
plan-quality feedback loop of ROADMAP item #1.
"""

from repro.profiling.profile import (
    OperatorProfile,
    QueryProfile,
    QueryProfiler,
    RelationObservation,
    TransferProfile,
)
from repro.profiling.stats import StatsStore

__all__ = [
    "OperatorProfile",
    "QueryProfile",
    "QueryProfiler",
    "RelationObservation",
    "StatsStore",
    "TransferProfile",
]
