"""Per-query runtime profiles — the EXPLAIN ANALYZE data model.

A `QueryProfiler` is attached to a `QueryPipeline` (or directly to a
`DistributedExecutor`) and collects one `QueryProfile` per run: the
operator tree with observed output cardinalities, every transfer with
its actual byte size next to the coster's estimate, CanView probe
counts, block/row throughput per operator kind, and start/finish
timestamps on whatever clock the run uses (wall time by default, the
fault injector's logical clock under a pinned run — which is what makes
profile artifacts byte-stable).

The profiler is pull-free: the executor pushes records as it goes, and
`finish()` derives observed join selectivities and misestimation flags.
When no profiler is attached the executor binds none of these hooks, so
the profiled path costs nothing when off.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ReproError

#: Flow kind assigned to the final result delivery — it has no coster
#: estimate (the coster prices plan-internal flows only), so it is
#: excluded from misestimate detection.
RESULT_FLOW = "result"

#: Flow kind for a transfer the estimate did not predict at all
#: (e.g. a retried shipment after a failover replan).
UNPLANNED_FLOW = "unplanned"

#: Default overshoot factor: a transfer whose actual bytes exceed
#: ``factor * max(estimate, 1)`` is flagged as a misestimate.
DEFAULT_MISESTIMATE_FACTOR = 2.0


class OperatorProfile:
    """Observed execution of one plan node."""

    __slots__ = (
        "node_id",
        "kind",
        "server",
        "rows",
        "est_rows",
        "left_rows",
        "right_rows",
        "selectivity",
        "path_key",
        "relation",
        "started",
        "finished",
    )

    def __init__(
        self,
        node_id: int,
        kind: str,
        server: str,
        rows: int,
        est_rows: Optional[float] = None,
        left_rows: Optional[int] = None,
        right_rows: Optional[int] = None,
        selectivity: Optional[float] = None,
        path_key: Optional[str] = None,
        relation: Optional[str] = None,
        started: float = 0.0,
        finished: float = 0.0,
    ) -> None:
        self.node_id = int(node_id)
        self.kind = str(kind)
        self.server = str(server)
        self.rows = int(rows)
        self.est_rows = None if est_rows is None else float(est_rows)
        self.left_rows = None if left_rows is None else int(left_rows)
        self.right_rows = None if right_rows is None else int(right_rows)
        self.selectivity = None if selectivity is None else float(selectivity)
        self.path_key = path_key
        self.relation = relation
        self.started = float(started)
        self.finished = float(finished)

    @property
    def elapsed(self) -> float:
        return self.finished - self.started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OperatorProfile(node={self.node_id}, kind={self.kind!r}, "
            f"rows={self.rows}, est={self.est_rows})"
        )


class TransferProfile:
    """One network shipment: actual bytes next to the coster's estimate."""

    __slots__ = (
        "node_id",
        "sender",
        "receiver",
        "rows",
        "bytes",
        "est_bytes",
        "kind",
        "description",
    )

    def __init__(
        self,
        node_id: int,
        sender: str,
        receiver: str,
        rows: int,
        nbytes: float,
        est_bytes: Optional[float] = None,
        kind: str = UNPLANNED_FLOW,
        description: str = "",
    ) -> None:
        self.node_id = int(node_id)
        self.sender = str(sender)
        self.receiver = str(receiver)
        self.rows = int(rows)
        self.bytes = float(nbytes)
        self.est_bytes = None if est_bytes is None else float(est_bytes)
        self.kind = str(kind)
        self.description = str(description)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransferProfile(node={self.node_id}, "
            f"{self.sender}->{self.receiver}, bytes={self.bytes}, "
            f"est={self.est_bytes}, kind={self.kind!r})"
        )


class RelationObservation:
    """Exact statistics of one base relation, measured at scan time."""

    __slots__ = ("name", "rows", "distinct", "widths")

    def __init__(
        self,
        name: str,
        rows: float,
        distinct: Mapping[str, float],
        widths: Mapping[str, float],
    ) -> None:
        self.name = str(name)
        self.rows = float(rows)
        self.distinct = dict(distinct)
        self.widths = dict(widths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelationObservation({self.name!r}, rows={self.rows})"


class QueryProfile:
    """The complete observed execution of one query run."""

    __slots__ = (
        "query",
        "operators",
        "transfers",
        "relations",
        "block_counts",
        "canview_probes",
        "estimated_bytes",
        "estimated_cost",
        "node_est_rows",
        "misestimate_factor",
        "misestimates",
        "started",
        "finished",
    )

    def __init__(
        self,
        query: str = "",
        misestimate_factor: float = DEFAULT_MISESTIMATE_FACTOR,
    ) -> None:
        self.query = str(query)
        self.operators: Dict[int, OperatorProfile] = {}
        self.transfers: List[TransferProfile] = []
        self.relations: Dict[str, RelationObservation] = {}
        #: operator kind -> [blocks, rows] drained through the batch core.
        self.block_counts: Dict[str, List[int]] = {}
        self.canview_probes = 0
        self.estimated_bytes = 0.0
        self.estimated_cost = 0.0
        self.node_est_rows: Dict[int, float] = {}
        self.misestimate_factor = float(misestimate_factor)
        self.misestimates: List[Dict[str, Any]] = []
        self.started = 0.0
        self.finished = 0.0

    @property
    def elapsed(self) -> float:
        return self.finished - self.started

    @property
    def actual_bytes(self) -> float:
        """Bytes shipped by plan-internal flows (result delivery excluded),
        comparable to ``estimated_bytes``."""
        return sum(t.bytes for t in self.transfers if t.kind != RESULT_FLOW)

    @property
    def total_bytes(self) -> float:
        """Every byte on the wire, result delivery included."""
        return sum(t.bytes for t in self.transfers)

    def sorted_operators(self) -> List[OperatorProfile]:
        return [self.operators[k] for k in sorted(self.operators)]

    def summary_dict(self) -> Dict[str, Any]:
        """Stable flat summary — feeds ``write_bench_json(profile=...)``."""
        return {
            "operators": len(self.operators),
            "transfers": len(self.transfers),
            "estimated_bytes": float(self.estimated_bytes),
            "actual_bytes": float(self.actual_bytes),
            "canview_probes": int(self.canview_probes),
            "misestimates": len(self.misestimates),
            "elapsed": float(self.elapsed),
        }

    def _detect_misestimates(self) -> None:
        factor = self.misestimate_factor
        flagged: List[Dict[str, Any]] = []
        for transfer in self.transfers:
            if transfer.kind in (RESULT_FLOW, UNPLANNED_FLOW):
                continue
            estimate = transfer.est_bytes
            if estimate is None:
                continue
            floor = max(estimate, 1.0)
            if transfer.bytes > factor * floor:
                flagged.append(
                    {
                        "node_id": transfer.node_id,
                        "sender": transfer.sender,
                        "receiver": transfer.receiver,
                        "kind": transfer.kind,
                        "estimated_bytes": float(estimate),
                        "actual_bytes": float(transfer.bytes),
                        "ratio": round(transfer.bytes / floor, 4),
                    }
                )
        self.misestimates = flagged


class QueryProfiler:
    """Collects `QueryProfile` objects across pipeline runs.

    ``base_stats`` optionally overrides the exact per-table statistics
    the pipeline would otherwise compute for the estimate; pass the
    *static* stats a cost-aware planner used to see the planner's own
    misestimates surfaced.  ``selectivities`` (anything with a
    ``selectivity(path_key)`` method, e.g. a `StatsStore`) refines join
    cardinality estimates, so a warmed store visibly tightens the
    estimated column across repeated runs.
    """

    def __init__(
        self,
        base_stats: Optional[Mapping[str, Any]] = None,
        selectivities: Optional[Any] = None,
        misestimate_factor: float = DEFAULT_MISESTIMATE_FACTOR,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if misestimate_factor < 1.0:
            raise ReproError(
                f"misestimate factor must be >= 1, got {misestimate_factor}"
            )
        self.base_stats = dict(base_stats) if base_stats is not None else None
        self.selectivities = selectivities
        self.misestimate_factor = float(misestimate_factor)
        self._clock: Callable[[], float] = clock or time.perf_counter
        self._clock_pinned = clock is not None
        self.profiles: List[QueryProfile] = []
        self._active: Optional[QueryProfile] = None
        self._flows: Dict[Tuple[int, str, str], List[Tuple[float, str]]] = {}

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        return float(self._clock())

    def use_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._clock_pinned = True

    def maybe_use_clock(self, clock: Callable[[], float]) -> None:
        """Adopt ``clock`` unless one was pinned explicitly — mirrors
        `TraceContext.maybe_use_clock` so pipelines bind the fault
        injector's logical clock for deterministic profiles."""
        if not self._clock_pinned:
            self._clock = clock

    # -- lifecycle -----------------------------------------------------

    @property
    def active(self) -> Optional[QueryProfile]:
        return self._active

    @property
    def last(self) -> Optional[QueryProfile]:
        return self.profiles[-1] if self.profiles else None

    def start(self, query: str = "", estimate: Optional[Any] = None) -> QueryProfile:
        """Open a profile for one run; ``estimate`` is the coster's
        `AssignmentEstimate` (or None when no plan estimate exists)."""
        profile = QueryProfile(query, self.misestimate_factor)
        profile.started = self.now()
        if estimate is not None:
            profile.estimated_bytes = float(estimate.total_bytes)
            profile.estimated_cost = float(estimate.total_cost)
            profile.node_est_rows = dict(estimate.node_rows)
            self._flows = {key: list(flows) for key, flows in estimate.flows.items()}
        else:
            self._flows = {}
        self._active = profile
        return profile

    def finish(self) -> QueryProfile:
        profile = self._require_active()
        profile.finished = self.now()
        profile._detect_misestimates()
        self.profiles.append(profile)
        self._active = None
        self._flows = {}
        return profile

    def _require_active(self) -> QueryProfile:
        if self._active is None:
            raise ReproError("no active profile — call start() first")
        return self._active

    # -- recording hooks (called by the executor) ----------------------

    def record_operator(
        self,
        node_id: int,
        kind: str,
        server: str,
        rows: int,
        started: float,
        finished: float,
        relation: Optional[str] = None,
        path_key: Optional[str] = None,
        left_id: Optional[int] = None,
        right_id: Optional[int] = None,
    ) -> OperatorProfile:
        profile = self._require_active()
        left_rows = right_rows = selectivity = None
        if left_id is not None and left_id in profile.operators:
            left_rows = profile.operators[left_id].rows
        if right_id is not None and right_id in profile.operators:
            right_rows = profile.operators[right_id].rows
        if left_rows is not None and right_rows is not None:
            cross = left_rows * right_rows
            if cross > 0:
                selectivity = rows / cross
        record = OperatorProfile(
            node_id,
            kind,
            server,
            rows,
            est_rows=profile.node_est_rows.get(node_id),
            left_rows=left_rows,
            right_rows=right_rows,
            selectivity=selectivity,
            path_key=path_key,
            relation=relation,
            started=started,
            finished=finished,
        )
        profile.operators[node_id] = record
        return record

    def record_relation(
        self,
        name: str,
        rows: float,
        distinct: Mapping[str, float],
        widths: Mapping[str, float],
    ) -> None:
        profile = self._require_active()
        profile.relations[name] = RelationObservation(name, rows, distinct, widths)

    def record_transfer(
        self,
        node_id: int,
        sender: str,
        receiver: str,
        rows: int,
        nbytes: float,
        description: str = "",
    ) -> TransferProfile:
        profile = self._require_active()
        flows = self._flows.get((node_id, sender, receiver))
        if flows:
            est_bytes, kind = flows.pop(0)
        elif description == "result -> recipient":
            est_bytes, kind = None, RESULT_FLOW
        else:
            est_bytes, kind = None, UNPLANNED_FLOW
        record = TransferProfile(
            node_id, sender, receiver, rows, nbytes, est_bytes, kind, description
        )
        profile.transfers.append(record)
        return record

    def record_blocks(self, kind: str, blocks: int, rows: int) -> None:
        profile = self._require_active()
        counts = profile.block_counts.setdefault(kind, [0, 0])
        counts[0] += blocks
        counts[1] += rows

    def record_probe(self, count: int = 1) -> None:
        self._require_active().canview_probes += int(count)
