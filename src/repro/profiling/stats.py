"""The runtime statistics store — harvested profiles, decayed, fed
back into planning.

`StatsStore` keeps three families of observations:

* per-relation row counts,
* per-attribute distinct-value counts (NDV) and average widths,
* per-join-path observed selectivities (keyed by
  :func:`repro.engine.coster.join_path_key`).

Each family blends new observations with an exponential moving
average: with decay ``d``, an observation enters at weight ``d`` and an
observation ``k`` harvests old retains weight ``d·(1-d)^k`` — the store
tracks drifting data without a stale observation pinning plans forever.
``decay=1.0`` means "trust the latest run completely".

`table_stats` merges the store over a static base-stats mapping,
producing the effective `TableStats` a `StatsAwareCostModel` plans
with; relations the store has never seen keep their static entries.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.engine.coster import TableStats
from repro.exceptions import ReproError


class StatsStore:
    """Decayed runtime statistics harvested from query profiles."""

    __slots__ = ("decay", "_rows", "_distinct", "_widths", "_selectivities", "harvests")

    def __init__(self, decay: float = 0.5) -> None:
        if not 0.0 < decay <= 1.0:
            raise ReproError(f"decay must be in (0, 1], got {decay}")
        self.decay = float(decay)
        self._rows: Dict[str, float] = {}
        self._distinct: Dict[str, Dict[str, float]] = {}
        self._widths: Dict[str, Dict[str, float]] = {}
        self._selectivities: Dict[str, float] = {}
        self.harvests = 0

    def __len__(self) -> int:
        return len(self._rows) + len(self._selectivities)

    def _blend(self, old: Optional[float], new: float) -> float:
        if old is None:
            return float(new)
        return (1.0 - self.decay) * old + self.decay * float(new)

    # -- observations --------------------------------------------------

    def observe_relation(
        self,
        name: str,
        rows: float,
        distinct: Mapping[str, float] = (),
        widths: Mapping[str, float] = (),
    ) -> None:
        """Fold one observed scan of a base relation into the store."""
        self._rows[name] = self._blend(self._rows.get(name), rows)
        seen_distinct = self._distinct.setdefault(name, {})
        for attribute, value in dict(distinct).items():
            seen_distinct[attribute] = self._blend(
                seen_distinct.get(attribute), value
            )
        seen_widths = self._widths.setdefault(name, {})
        for attribute, value in dict(widths).items():
            seen_widths[attribute] = self._blend(seen_widths.get(attribute), value)

    def observe_selectivity(self, path_key: str, value: float) -> None:
        """Fold one observed join selectivity into the store."""
        value = min(1.0, max(0.0, float(value)))
        self._selectivities[path_key] = self._blend(
            self._selectivities.get(path_key), value
        )

    def harvest(self, profile) -> int:
        """Fold one `QueryProfile` into the store.

        Returns the number of observations applied (relation scans plus
        join selectivities), so callers can meter harvest activity.
        """
        applied = 0
        for name in sorted(profile.relations):
            observation = profile.relations[name]
            self.observe_relation(
                name, observation.rows, observation.distinct, observation.widths
            )
            applied += 1
        for operator in profile.sorted_operators():
            if operator.path_key and operator.selectivity is not None:
                self.observe_selectivity(operator.path_key, operator.selectivity)
                applied += 1
        if applied:
            self.harvests += 1
        return applied

    # -- queries -------------------------------------------------------

    def relation_rows(self, name: str) -> Optional[float]:
        return self._rows.get(name)

    def selectivity(self, path_key: str) -> Optional[float]:
        return self._selectivities.get(path_key)

    def table_stats(
        self, static: Mapping[str, TableStats]
    ) -> Dict[str, TableStats]:
        """Effective statistics: observed values over the static base.

        For observed relations, observed rows/NDV/widths win and any
        attribute the store has not seen falls back to the static entry
        (NDV clamped to the observed row count).  Unobserved relations
        pass through untouched.
        """
        effective: Dict[str, TableStats] = dict(static)
        for name, rows in self._rows.items():
            base = static.get(name)
            distinct = dict(base.distinct) if base is not None else {}
            widths = dict(base.widths) if base is not None else {}
            distinct = {a: min(d, rows) for a, d in distinct.items()}
            distinct.update(
                {a: min(d, rows) for a, d in self._distinct.get(name, {}).items()}
            )
            widths.update(self._widths.get(name, {}))
            effective[name] = TableStats(rows, distinct, widths)
        return effective

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic plain-data view (also the serialized form)."""
        return {
            "decay": self.decay,
            "harvests": self.harvests,
            "relations": {
                name: {
                    "rows": self._rows[name],
                    "distinct": dict(sorted(self._distinct.get(name, {}).items())),
                    "widths": dict(sorted(self._widths.get(name, {}).items())),
                }
                for name in sorted(self._rows)
            },
            "selectivities": dict(sorted(self._selectivities.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StatsStore(decay={self.decay}, relations={len(self._rows)}, "
            f"paths={len(self._selectivities)}, harvests={self.harvests})"
        )
