"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The hierarchy mirrors the package
layout: schema/catalog errors, SQL front-end errors, planning errors and
runtime (execution/audit) errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A relation schema or catalog is malformed or inconsistent.

    Raised, for instance, when two relations share a name, when an
    attribute name collides across relations without qualification, or
    when a primary key references an unknown attribute.
    """


class UnknownRelationError(SchemaError):
    """A referenced relation does not exist in the catalog."""

    def __init__(self, relation: str) -> None:
        super().__init__(f"unknown relation: {relation!r}")
        self.relation = relation


class UnknownAttributeError(SchemaError):
    """A referenced attribute does not exist in the catalog / relation."""

    def __init__(self, attribute: str, context: str = "") -> None:
        suffix = f" in {context}" if context else ""
        super().__init__(f"unknown attribute: {attribute!r}{suffix}")
        self.attribute = attribute
        self.context = context


class JoinPathError(ReproError):
    """A join path or join condition is malformed.

    Examples: pairing attribute lists of different lengths in a
    ``<J_l, J_r>`` conjunction, or a join condition equating an attribute
    with itself.
    """


class PredicateError(ReproError):
    """A selection predicate is malformed or cannot be evaluated."""


class ExpressionError(ReproError):
    """A relational-algebra expression is structurally invalid."""


class PlanError(ReproError):
    """A query tree plan is structurally invalid (e.g. wrong arity)."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class BindingError(SqlError):
    """A parsed query references names that do not resolve in the catalog."""


class AuthorizationError(ReproError):
    """An authorization rule is malformed.

    Definition 3.1 requires the join path to include (at least) every
    relation contributing attributes to the rule; violations raise this
    error at construction time.
    """


class PolicyError(ReproError):
    """A policy operation failed (unknown server, duplicate rule, ...)."""


class InfeasiblePlanError(PlanError):
    """No safe executor assignment exists for the query plan.

    Carries the node at which candidate search failed, mirroring the
    ``exit(n)`` of the paper's Figure 6 pseudocode.
    """

    def __init__(self, message: str, node_id: int = -1) -> None:
        super().__init__(message)
        self.node_id = node_id


class UnsafeAssignmentError(PlanError):
    """An executor assignment was found to violate the policy.

    Raised by the independent safety verifier (Definition 4.2) and by the
    runtime audit when a transfer without a covering authorization is
    attempted.
    """


class ExecutionError(ReproError):
    """Tuple-level execution failed (missing data, bad operator input)."""


class AuditViolationError(ExecutionError):
    """A runtime data transfer was not covered by any authorization."""

    def __init__(self, message: str, sender: str = "", receiver: str = "") -> None:
        super().__init__(message)
        self.sender = sender
        self.receiver = receiver


class ResilienceConfigError(ExecutionError, ValueError):
    """A resilience policy (retry, breaker, deadline) is misconfigured.

    Subclasses :class:`ValueError` as well: a bad ``max_attempts`` or a
    negative delay is an ordinary bad argument, and callers outside the
    library catch it as such.
    """


class FaultConfigError(ExecutionError, ValueError):
    """A fault-injection schedule is misconfigured.

    Negative durations, degradation factors below 1, flap periods that
    never flap, or crash windows that overlap for the same server are
    ordinary bad arguments: like :class:`ResilienceConfigError` this
    subclasses :class:`ValueError` so callers outside the library catch
    it as such, while existing ``ExecutionError`` handlers keep working.
    """


class FaultError(ExecutionError):
    """Base class for injected-fault runtime failures."""


class TransferFailedError(FaultError):
    """A shipment failed on every allowed attempt.

    Carries the failing link and the per-attempt outcome report so the
    failover layer can decide which servers to route around.
    """

    def __init__(
        self,
        message: str,
        sender: str = "",
        receiver: str = "",
        report=None,
    ) -> None:
        super().__init__(message)
        self.sender = sender
        self.receiver = receiver
        self.report = report


class DeadlineExceededError(FaultError):
    """The query's simulated-time budget ran out.

    Raised by :class:`~repro.engine.deadline.DeadlineBudget` the moment
    a charge (shipment duration, backoff wait) pushes spending past the
    budget, or *before* a backoff wait that could not fit — execution
    fails fast instead of burning a dead budget in retry loops.  The
    failover layer attaches the execution's checkpoint journal so the
    caller can resume from the last audited subtree.
    """

    def __init__(
        self,
        message: str,
        spent: float = 0.0,
        budget: float = 0.0,
        reason: str = "",
    ) -> None:
        super().__init__(message)
        self.spent = spent
        self.budget = budget
        self.reason = reason
        #: Filled by the failover layer: the journal of completed,
        #: audited subtrees at the moment the budget died.
        self.checkpoint = None


class CheckpointError(ExecutionError):
    """A checkpoint journal cannot be resumed.

    Either the journal belongs to a different plan shape, or — the
    security-critical case — an authorization covering a checkpointed
    subtree was revoked between checkpoint and restart.  Resume
    re-audits every entry against the *current* policy and refuses
    rather than replay a view the policy no longer grants.
    """


class PartitionSchemeError(ReproError, ValueError):
    """A horizontal partition scheme is misconfigured.

    Empty server groups, overlapping range boundaries, unknown
    attributes or a degenerate shard count are ordinary bad arguments:
    like :class:`FaultConfigError` this subclasses :class:`ValueError`
    so callers outside the library catch it as such.
    """


class ShardingError(ExecutionError):
    """A sharded execution failed in a way single-copy execution cannot.

    Raised by the partition-parallel executor when a certified scheme
    turns out not to be executable (e.g. a shard plan that cannot ship
    an intermediate to its group without exceeding the policy).  The
    coordinator treats it as a signal to fall back to single-copy
    execution, never to run a partitioned plan whose safety it cannot
    prove.
    """


class ChaosError(ReproError):
    """A chaos schedule is misconfigured (bad probability, bad seed...)."""


class ChaosInterrupt(ReproError):
    """A seeded chaos event killed one request's execution mid-flight.

    Raised by :class:`~repro.chaos.schedule.ChaosSchedule` at the
    pipeline execution hook to model a worker dying mid-query.  The
    service layer treats it as a crash of *that request only*: the
    request either resumes from its journaled checkpoint subtrees
    (recovery on) or fails with a structured outcome — the worker pool
    itself survives.

    Attributes:
        point: the chaos hook that fired (``POINT_*`` constant).
        stage: ``pre`` (before any subtree executed) or ``post`` (the
            execution completed but its completion was never recorded —
            the classic crash-consistency window).
        checkpoint: filled by the pipeline when journaling was active —
            the completed, audited subtrees at the moment of death.
    """

    def __init__(self, message: str, point: str = "", stage: str = "") -> None:
        super().__init__(message)
        self.point = point
        self.stage = stage
        self.checkpoint = None


class DegradedExecutionError(FaultError):
    """No *safe* alternative assignment survives the current faults.

    Raised by the failover layer when retries are exhausted and
    re-planning restricted to the surviving servers finds no assignment
    that satisfies the policy (Definition 4.3).  The authorization model
    is never weakened to keep a query alive: an unanswerable query
    degrades, it does not leak.
    """

    def __init__(self, message: str, excluded_servers=(), failovers: int = 0) -> None:
        super().__init__(message)
        self.excluded_servers = tuple(sorted(excluded_servers))
        self.failovers = failovers
        #: Filled by the failover layer when journaling was active: the
        #: completed, audited subtrees at the moment the query degraded.
        self.checkpoint = None
