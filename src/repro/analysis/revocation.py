"""Revocation impact: which queries break if a rule is withdrawn.

Policies are revoked as well as granted, and the operational question
before withdrawing a rule is *what stops working*.  Given a policy and
a workload of query plans, :func:`revocation_impact` replans every
query without each rule and reports, per rule:

* the queries that become infeasible (hard breakage);
* the queries whose strategy changes (soft impact — still runs, but
  with different placement/cost);
* the queries untouched.

Combined with :mod:`repro.analysis.compliance` (which rules carried
data) this closes the policy lifecycle: unused rules are candidates for
revocation, and this module verifies the revocation is actually safe
for the workload before it happens.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.algebra.tree import QueryTreePlan
from repro.core.authorization import Authorization, Policy
from repro.core.planner import SafePlanner
from repro.exceptions import InfeasiblePlanError


class RuleImpact:
    """Consequences of revoking one rule over a workload.

    Attributes:
        rule: the revoked authorization.
        broken: indexes of queries that become infeasible.
        changed: indexes whose safe strategy changes (different
            executors somewhere).
        unaffected: indexes planning identically without the rule.
    """

    __slots__ = ("rule", "broken", "changed", "unaffected")

    def __init__(self, rule: Authorization) -> None:
        self.rule = rule
        self.broken: List[int] = []
        self.changed: List[int] = []
        self.unaffected: List[int] = []

    @property
    def is_free(self) -> bool:
        """Whether revoking the rule affects nothing at all."""
        return not self.broken and not self.changed

    def __repr__(self) -> str:
        return (
            f"RuleImpact({self.rule}: {len(self.broken)} broken, "
            f"{len(self.changed)} changed, {len(self.unaffected)} unaffected)"
        )


def _strategy_key(policy: Policy, plan: QueryTreePlan) -> Tuple[str, ...]:
    """A comparable fingerprint of the planner's strategy (or raises)."""
    assignment, _ = SafePlanner(policy).plan(plan)
    return tuple(str(assignment.executor(node.node_id)) for node in plan)


def revocation_impact(
    policy: Policy,
    plans: Sequence[QueryTreePlan],
    rules: Sequence[Authorization] = (),
) -> List[RuleImpact]:
    """Impact of revoking each rule, one at a time.

    Args:
        policy: the current policy.
        plans: the workload (plans must be feasible under ``policy``;
            infeasible ones are skipped with their index never listed).
        rules: the candidate revocations; defaults to every rule of the
            policy.

    Returns:
        One :class:`RuleImpact` per candidate rule, in candidate order.
    """
    candidates = list(rules) if rules else list(policy)
    baselines: Dict[int, Tuple[str, ...]] = {}
    for index, plan in enumerate(plans):
        try:
            baselines[index] = _strategy_key(policy, plan)
        except InfeasiblePlanError:
            continue
    impacts = []
    for rule in candidates:
        impact = RuleImpact(rule)
        reduced = Policy(r for r in policy if r != rule)
        for index, baseline in baselines.items():
            try:
                key = _strategy_key(reduced, plans[index])
            except InfeasiblePlanError:
                impact.broken.append(index)
                continue
            if key == baseline:
                impact.unaffected.append(index)
            else:
                impact.changed.append(index)
        impacts.append(impact)
    return impacts


def safe_revocations(
    policy: Policy,
    plans: Sequence[QueryTreePlan],
    rules: Sequence[Authorization] = (),
) -> List[Authorization]:
    """The candidate rules whose revocation affects no query at all —
    the least-privilege cleanup set for this workload."""
    return [impact.rule for impact in revocation_impact(policy, plans, rules) if impact.is_free]


def render_impacts(impacts: Sequence[RuleImpact]) -> str:
    """One line per rule: broken / changed / unaffected counts."""
    from repro.analysis.reporting import ascii_table

    rows = [
        [
            str(impact.rule),
            len(impact.broken),
            len(impact.changed),
            len(impact.unaffected),
            "yes" if impact.is_free else "",
        ]
        for impact in impacts
    ]
    return ascii_table(["rule", "broken", "changed", "unaffected", "free"], rows)
