"""Exposure analysis: what does each server *learn* from an execution?

Safety (Definition 4.2) is a yes/no question; policy authors also want
the quantitative view: for a given strategy, the union of everything
each party is shown.  This module folds an assignment's flows (or an
actual execution's transfers) into a per-server :class:`ExposureReport`
— which attributes each server receives, under which join paths, from
whom — and compares strategies by exposure, not just by cost.

The unit of accounting is the *received view*: one (profile, sender)
pair per flow.  Attributes a server already stores are reported
separately from attributes it learns from others.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.algebra.attributes import AttributeSet, format_attribute_set
from repro.algebra.schema import Catalog
from repro.core.assignment import Assignment
from repro.core.flows import Flow
from repro.core.profile import RelationProfile
from repro.core.safety import enumerate_assignment_flows


class ServerExposure:
    """Everything one server is shown by a strategy.

    Attributes:
        server: the party.
        received: the (sender, profile) pairs of inbound releases, in
            flow order.
    """

    __slots__ = ("server", "received")

    def __init__(self, server: str) -> None:
        self.server = server
        self.received: List[Tuple[str, RelationProfile]] = []

    def attributes_seen(self) -> AttributeSet:
        """Union of attributes across every received view (including
        selection attributes, which Definition 3.3 counts as exposed)."""
        seen: Set[str] = set()
        for _, profile in self.received:
            seen |= profile.exposed_attributes
        return frozenset(seen)

    def associations_seen(self) -> Set:
        """Every join condition embodied by some received view —
        the associations (not just values) the server learns."""
        conditions: Set = set()
        for _, profile in self.received:
            conditions |= set(profile.join_path.conditions)
        return conditions

    def senders(self) -> List[str]:
        """Distinct counterparties that released data to this server."""
        return sorted({sender for sender, _ in self.received})

    def __repr__(self) -> str:
        return (
            f"ServerExposure({self.server}: {len(self.received)} views, "
            f"{len(self.attributes_seen())} attributes)"
        )


class ExposureReport:
    """Per-server exposure of one strategy."""

    def __init__(self, catalog: Optional[Catalog] = None) -> None:
        self._catalog = catalog
        self._by_server: Dict[str, ServerExposure] = {}

    def record(self, flow: Flow) -> None:
        """Account one release flow (local hand-offs are ignored)."""
        if not flow.is_release:
            return
        exposure = self._by_server.setdefault(
            flow.receiver, ServerExposure(flow.receiver)
        )
        exposure.received.append((flow.sender, flow.profile))

    def exposure_of(self, server: str) -> ServerExposure:
        """The exposure of one server (empty if it received nothing)."""
        return self._by_server.get(server, ServerExposure(server))

    def servers(self) -> List[str]:
        """Servers that received at least one view, sorted."""
        return sorted(self._by_server)

    def foreign_attributes_of(self, server: str) -> AttributeSet:
        """Attributes ``server`` learned that it does not itself store
        (requires a catalog at construction)."""
        seen = self.exposure_of(server).attributes_seen()
        if self._catalog is None:
            return seen
        own: Set[str] = set()
        if server in {r.server for r in self._catalog.relations()}:
            for relation in self._catalog.relations_at(server):
                own |= relation.attribute_set
        return frozenset(seen - own)

    def total_exposure_score(self) -> int:
        """A simple comparable scalar: the sum over servers of foreign
        attributes learned.  Lower is better; zero means the strategy
        shows nobody anything they do not already store."""
        return sum(
            len(self.foreign_attributes_of(server)) for server in self.servers()
        )

    def describe(self) -> str:
        """One block per exposed server."""
        lines = []
        for server in self.servers():
            exposure = self.exposure_of(server)
            lines.append(
                f"{server} learns {format_attribute_set(self.foreign_attributes_of(server))} "
                f"from {', '.join(exposure.senders())}"
            )
            for sender, profile in exposure.received:
                lines.append(f"  {sender}: {profile}")
        return "\n".join(lines) if lines else "(no server receives anything)"


def exposure_of_assignment(
    assignment: Assignment,
    catalog: Optional[Catalog] = None,
    recipient: Optional[str] = None,
) -> ExposureReport:
    """Exposure report for a planned strategy (symbolic flows)."""
    report = ExposureReport(catalog)
    for flow in enumerate_assignment_flows(assignment, recipient=recipient):
        report.record(flow)
    return report


def compare_exposure(
    first: ExposureReport, second: ExposureReport
) -> Dict[str, Tuple[AttributeSet, AttributeSet]]:
    """Per-server exposure difference between two strategies.

    Returns, for each server exposed by either strategy, the pair
    ``(only in first, only in second)`` of foreign attributes.  Servers
    with identical exposure are omitted.
    """
    deltas: Dict[str, Tuple[AttributeSet, AttributeSet]] = {}
    for server in sorted(set(first.servers()) | set(second.servers())):
        in_first = first.foreign_attributes_of(server)
        in_second = second.foreign_attributes_of(server)
        if in_first != in_second:
            deltas[server] = (in_first - in_second, in_second - in_first)
    return deltas
