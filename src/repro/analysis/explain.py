"""Planning explanations: *why* the planner decided what it decided.

The Figure 7 trace shows what the algorithm chose; operators reviewing
a strategy want to know why — which of the Figure 5 views were checked
at each join, which rule covered each admitted one, and which check
killed each rejected candidate.  :func:`explain_planning` recomputes
every check the planner performs (same order, same views) and records
the verdicts with their evidence, producing a per-join
:class:`JoinExplanation` and a rendered report.

Because the checks are recomputed from the same primitives the planner
uses (:mod:`repro.core.flows` + ``CanView``), the explanation cannot
drift from the implementation; a test asserts the explained admissions
equal the planner's actual candidate lists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra.tree import JoinNode, LeafNode, QueryTreePlan, UnaryNode
from repro.core.access import can_view, first_covering_authorization
from repro.core.authorization import Authorization, Policy
from repro.core.planner import SafePlanner
from repro.core.profile import RelationProfile
from repro.exceptions import PlanError


class ViewCheck:
    """One ``CanView`` question the planner asked.

    Attributes:
        server: the would-be receiver.
        role: ``"slave"``, ``"semi master"`` or ``"regular master"``.
        profile: the view checked.
        allowed: the verdict.
        covering_rule: the first covering rule when allowed (``None``
            for duck-typed policies).
    """

    __slots__ = ("server", "role", "profile", "allowed", "covering_rule")

    def __init__(
        self,
        server: str,
        role: str,
        profile: RelationProfile,
        allowed: bool,
        covering_rule: Optional[Authorization],
    ) -> None:
        self.server = server
        self.role = role
        self.profile = profile
        self.allowed = allowed
        self.covering_rule = covering_rule

    def __repr__(self) -> str:
        verdict = "ALLOW" if self.allowed else "DENY"
        return f"ViewCheck({self.server} as {self.role}: {verdict})"


class JoinExplanation:
    """Every check performed at one join node.

    Attributes:
        node_id: the join.
        checks: the :class:`ViewCheck` records, in the planner's order.
        admitted: ``(server, mode)`` pairs that became candidates.
    """

    __slots__ = ("node_id", "checks", "admitted")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.checks: List[ViewCheck] = []
        self.admitted: List[Tuple[str, str]] = []

    def denials(self) -> List[ViewCheck]:
        """The failed checks (what killed the alternatives)."""
        return [check for check in self.checks if not check.allowed]


def explain_planning(
    policy, plan: QueryTreePlan, trace=None
) -> Tuple[Dict[int, JoinExplanation], bool]:
    """Recompute and record every planner check for ``plan``.

    Returns ``(explanations by join node id, feasible)``.  The
    recomputation mirrors ``Find_candidates`` exactly: profiles via
    Figure 4, views via Figure 5, slave-before-master ordering,
    semi-before-regular admission.

    With ``trace`` (a :class:`~repro.obs.trace.TraceContext`), covering
    rules are read from — and recorded into — the trace's
    covering-authorization cache, so an explanation following an audited
    execution reuses the very rules the audit stamped instead of
    re-probing the policy (and a test pins the two together).
    """
    explanations: Dict[int, JoinExplanation] = {}
    profiles: Dict[int, RelationProfile] = {}
    candidates: Dict[int, List[Tuple[str, int]]] = {}
    feasible = True

    def check(
        explanation: JoinExplanation, server: str, role: str, profile: RelationProfile
    ) -> bool:
        allowed = can_view(policy, profile, server)
        rule = None
        if allowed and isinstance(policy, Policy):
            rule = first_covering_authorization(policy, profile, server, trace=trace)
        explanation.checks.append(ViewCheck(server, role, profile, allowed, rule))
        return allowed

    for node in plan:
        node_id = node.node_id
        if isinstance(node, LeafNode):
            if node.server is None:
                raise PlanError(f"{node.relation.name!r} has no storing server")
            profiles[node_id] = RelationProfile.of_base_relation(node.relation)
            candidates[node_id] = [(node.server, 0)]
            continue
        if isinstance(node, UnaryNode):
            child = node.left.node_id
            if node.operator == "project":
                profiles[node_id] = profiles[child].project(node.projection_attributes)
            else:
                profiles[node_id] = profiles[child].select(node.predicate.attributes)
            candidates[node_id] = list(candidates[child])
            continue
        assert isinstance(node, JoinNode)
        left_id, right_id = node.left.node_id, node.right.node_id
        left_profile, right_profile = profiles[left_id], profiles[right_id]
        profiles[node_id] = left_profile.join(right_profile, node.path)
        explanation = JoinExplanation(node_id)
        explanations[node_id] = explanation
        j_left = node.path.attributes & left_profile.attributes
        j_right = node.path.attributes & right_profile.attributes
        right_slave_view = left_profile.project(j_left)
        left_slave_view = right_profile.project(j_right)
        right_master_view = right_profile.project(j_right).join(left_profile, node.path)
        left_master_view = left_profile.project(j_left).join(right_profile, node.path)

        admitted: List[Tuple[str, int]] = []

        def admit_side(
            slave_pool, master_pool, slave_view, master_view, full_view
        ) -> None:
            slave_found = False
            for server, _count in sorted(slave_pool, key=lambda c: -c[1]):
                if check(explanation, server, "slave", slave_view):
                    slave_found = True
                    break
            for server, count in sorted(master_pool, key=lambda c: -c[1]):
                if slave_found and check(explanation, server, "semi master", master_view):
                    admitted.append((server, count + 1))
                    explanation.admitted.append((server, "semi"))
                elif check(explanation, server, "regular master", full_view):
                    admitted.append((server, count + 1))
                    explanation.admitted.append((server, "regular"))

        admit_side(
            candidates[left_id], candidates[right_id],
            left_slave_view, right_master_view, left_profile,
        )
        admit_side(
            candidates[right_id], candidates[left_id],
            right_slave_view, left_master_view, right_profile,
        )
        candidates[node_id] = admitted
        if not admitted:
            feasible = False
            break
    return explanations, feasible


def render_explanation(
    policy, plan: QueryTreePlan, explanations: Dict[int, JoinExplanation]
) -> str:
    """Human-readable rendering, one block per join."""
    lines: List[str] = []
    for node_id in sorted(explanations):
        node = plan.node(node_id)
        explanation = explanations[node_id]
        lines.append(f"join n{node_id} {node.label()}:")
        for check in explanation.checks:
            verdict = "ALLOW" if check.allowed else "deny "
            lines.append(
                f"  [{verdict}] {check.server} as {check.role}: {check.profile}"
            )
            if check.covering_rule is not None:
                lines.append(f"            covered by {check.covering_rule}")
        if explanation.admitted:
            summary = ", ".join(f"{s} ({m})" for s, m in explanation.admitted)
            lines.append(f"  candidates: {summary}")
        else:
            lines.append("  candidates: NONE — plan infeasible here")
    return "\n".join(lines)


def consistent_with_planner(policy, plan: QueryTreePlan) -> bool:
    """Whether the explanation's admissions match the real planner's
    candidate lists (used by tests to pin the two together)."""
    explanations, feasible = explain_planning(policy, plan)
    planner = SafePlanner(policy)
    try:
        _, trace = planner.plan(plan)
    except Exception:
        return not feasible
    for node in plan.joins():
        explained = sorted(s for s, _ in explanations[node.node_id].admitted)
        actual = sorted(trace.decision(node.node_id).candidates.servers())
        if explained != actual:
            return False
    return feasible
