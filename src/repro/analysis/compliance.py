"""Policy hygiene: which rules a query workload actually exercises.

Authorization policies rot: rules accumulate for queries long retired,
and every unused grant is standing exposure.  This module folds the
audit trails of executed queries into a :class:`PolicyUsageReport` —
per rule, how many transfers it covered, over which links — and lists
the rules no execution ever needed, ranked by how much they grant.

The accounting hangs off the ``authorized_by`` stamp the audit layer
attaches to every permitted transfer, so it reflects what actually
flowed, not what the planner considered.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.reporting import ascii_table
from repro.core.authorization import Authorization, Policy
from repro.engine.executor import ExecutionResult
from repro.engine.transfers import Transfer
from repro.exceptions import ReproError


class RuleUsage:
    """Usage statistics of one authorization.

    Attributes:
        rule: the authorization.
        transfer_count: transfers this rule covered.
        byte_total: payload bytes released under it.
        links: distinct (sender, receiver) pairs it covered.
    """

    __slots__ = ("rule", "transfer_count", "byte_total", "links")

    def __init__(self, rule: Authorization) -> None:
        self.rule = rule
        self.transfer_count = 0
        self.byte_total = 0
        self.links: Set[Tuple[str, str]] = set()

    def record(self, transfer: Transfer) -> None:
        """Account one covered transfer."""
        self.transfer_count += 1
        self.byte_total += transfer.byte_size
        self.links.add((transfer.sender, transfer.receiver))

    def __repr__(self) -> str:
        return (
            f"RuleUsage({self.rule}: {self.transfer_count} transfers, "
            f"{self.byte_total} B)"
        )


class PolicyUsageReport:
    """Aggregated rule usage over a set of executions.

    Args:
        policy: the policy whose rules are being tracked; rules outside
            it (e.g. from a different closure) are rejected, catching
            mixed-up audit trails early.
    """

    def __init__(self, policy: Policy) -> None:
        self._policy = policy
        self._usage: Dict[Authorization, RuleUsage] = {}
        self._executions = 0
        self._uncovered_local = 0

    def record_execution(self, result: ExecutionResult) -> None:
        """Fold one audited execution into the report.

        Raises:
            ReproError: if the execution was not audited, or a transfer
                was covered by a rule outside the tracked policy.
        """
        if result.audit is None:
            raise ReproError(
                "cannot build a usage report from an unaudited execution"
            )
        self._executions += 1
        for transfer in result.transfers:
            rule = transfer.authorized_by
            if rule is None:
                # Local hand-offs and duck-typed policies carry no rule.
                self._uncovered_local += 1
                continue
            if rule not in self._policy:
                raise ReproError(
                    f"transfer covered by a rule outside the tracked policy: {rule}"
                )
            self._usage.setdefault(rule, RuleUsage(rule)).record(transfer)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def executions_recorded(self) -> int:
        """How many executions were folded in."""
        return self._executions

    def usage_of(self, rule: Authorization) -> RuleUsage:
        """Usage of one rule (zeroed if never exercised)."""
        return self._usage.get(rule, RuleUsage(rule))

    def exercised_rules(self) -> List[RuleUsage]:
        """Rules that covered at least one transfer, busiest first."""
        return sorted(
            self._usage.values(),
            key=lambda u: (-u.transfer_count, -u.byte_total, str(u.rule)),
        )

    def unused_rules(self) -> List[Authorization]:
        """Rules never exercised, widest grants first — the review
        queue for a least-privilege pass."""
        unused = [rule for rule in self._policy if rule not in self._usage]
        return sorted(
            unused, key=lambda r: (-len(r.attributes), str(r))
        )

    def coverage_fraction(self) -> float:
        """Exercised rules / total rules (0.0 on an empty policy)."""
        if not len(self._policy):
            return 0.0
        return len(self._usage) / len(self._policy)

    def describe(self) -> str:
        """Usage table plus the unused-rule review queue."""
        rows = [
            [str(u.rule), u.transfer_count, u.byte_total, len(u.links)]
            for u in self.exercised_rules()
        ]
        lines = [
            f"{self._executions} executions, "
            f"{len(self._usage)}/{len(self._policy)} rules exercised "
            f"({self.coverage_fraction():.0%})",
            ascii_table(["rule", "transfers", "bytes", "links"], rows),
        ]
        unused = self.unused_rules()
        if unused:
            lines.append("never exercised:")
            lines.extend(f"  {rule}" for rule in unused)
        return "\n".join(lines)


def usage_report(
    policy: Policy, results: Iterable[ExecutionResult]
) -> PolicyUsageReport:
    """Build a report over several executions in one call."""
    report = PolicyUsageReport(policy)
    for result in results:
        report.record_execution(result)
    return report
