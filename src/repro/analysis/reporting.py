"""Rendering helpers: Figure 7 style traces, Figure 3 style policies,
and the plain ASCII tables used by the benchmark harness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algebra.attributes import format_attribute_set
from repro.core.authorization import Policy
from repro.core.planner import PlannerTrace


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A minimal fixed-width table with a header separator.

    >>> print(ascii_table(["a", "b"], [[1, "x"]]))
    a | b
    --+--
    1 | x
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths)).rstrip()
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_trace_table(trace: PlannerTrace, labels: Optional[dict] = None) -> str:
    """Render a planning trace in the layout of the paper's Figure 7.

    Left block: ``Find_candidates`` visit order with the candidate list
    and the recorded slave (as in the paper, only a slave actually
    recorded for a semi-join admission is shown).  Right block:
    ``Assign_ex`` order with the committed executor.

    Args:
        trace: a trace from :meth:`repro.core.planner.SafePlanner.plan`.
        labels: optional mapping ``node_id -> display name`` (e.g. to
            match the paper's ``n_0..n_6`` numbering).
    """
    labels = labels or {}

    def name(node_id: int) -> str:
        return labels.get(node_id, f"n{node_id}")

    find_rows: List[List[str]] = []
    for node_id in trace.find_order:
        decision = trace.decision(node_id)
        candidates = ", ".join(repr(c) for c in decision.candidates)
        slaves = []
        if decision.left_slave is not None:
            slaves.append(decision.left_slave.server)
        if decision.right_slave is not None:
            slaves.append(decision.right_slave.server)
        find_rows.append([name(node_id), candidates, "/".join(slaves)])
    assign_rows: List[List[str]] = []
    for node_id, pushed in trace.assign_order:
        decision = trace.decision(node_id)
        executor = str(decision.executor) if decision.executor else "?"
        assign_rows.append([name(node_id), executor, pushed or "NULL"])
    return (
        "Find_candidates\n"
        + ascii_table(["Node", "Candidates", "Slave"], find_rows)
        + "\n\nAssign_ex\n"
        + ascii_table(["Node", "Executor", "Pushed"], assign_rows)
    )


def render_policy_table(policy: Policy) -> str:
    """Render a policy in the layout of the paper's Figure 3."""
    rows = []
    for index, rule in enumerate(policy, start=1):
        rows.append(
            [
                index,
                format_attribute_set(rule.attributes),
                str(rule.join_path),
                rule.server,
            ]
        )
    return ascii_table(["#", "Attributes", "Join Path", "Server"], rows)


def render_profile_report(profile) -> str:
    """EXPLAIN ANALYZE rendering of one
    :class:`~repro.profiling.QueryProfile`: estimated vs actual side by
    side, with misestimation flags.

    Two tables — the operator tree (estimated vs observed cardinality,
    observed join selectivity, per-operator time on the run's clock) and
    the transfers (estimated vs shipped bytes with the actual/estimate
    ratio) — followed by block-throughput and summary footer lines.
    Transfers whose actual bytes overshot the estimate by the profile's
    misestimate factor are flagged ``!!``; operators whose cardinality
    did the same are flagged ``!``.  Deterministic under a pinned clock
    (the CLI's ``analyze`` output is golden-file tested).
    """
    operator_rows = []
    for op in profile.sorted_operators():
        kind = f"{op.kind} {op.relation}" if op.relation else op.kind
        est = "" if op.est_rows is None else f"{op.est_rows:.1f}"
        sel = "" if op.selectivity is None else f"{op.selectivity:.4f}"
        flag = ""
        if op.est_rows is not None and op.rows > profile.misestimate_factor * max(
            op.est_rows, 1.0
        ):
            flag = "!"
        operator_rows.append(
            [
                f"n{op.node_id}",
                kind,
                op.server,
                est,
                op.rows,
                sel,
                f"{op.elapsed:.3f}",
                flag,
            ]
        )
    flagged = {
        (f["node_id"], f["sender"], f["receiver"], f["actual_bytes"])
        for f in profile.misestimates
    }
    transfer_rows = []
    for t in profile.transfers:
        est = "" if t.est_bytes is None else f"{t.est_bytes:.1f}"
        ratio = (
            "" if t.est_bytes is None else f"{t.bytes / max(t.est_bytes, 1.0):.2f}x"
        )
        flag = "!!" if (t.node_id, t.sender, t.receiver, t.bytes) in flagged else ""
        transfer_rows.append(
            [
                f"n{t.node_id}",
                f"{t.sender}->{t.receiver}",
                t.kind,
                est,
                f"{t.bytes:.1f}",
                t.rows,
                ratio,
                flag,
            ]
        )
    lines = [
        "operators",
        ascii_table(
            ["Node", "Op", "Server", "Est rows", "Rows", "Selectivity", "Time", ""],
            operator_rows,
        ),
        "",
        "transfers",
    ]
    if transfer_rows:
        lines.append(
            ascii_table(
                ["Node", "Link", "Kind", "Est B", "Actual B", "Rows", "Ratio", ""],
                transfer_rows,
            )
        )
    else:
        lines.append("(all flows local — nothing shipped)")
    if profile.block_counts:
        blocks = " ".join(
            f"{kind}={counts[0]}/{counts[1]}"
            for kind, counts in sorted(profile.block_counts.items())
        )
        lines.append("")
        lines.append(f"blocks (batches/rows): {blocks}")
    lines.append(
        f"summary: estimated {profile.estimated_bytes:.1f} B, "
        f"actual {profile.actual_bytes:.1f} B (plan flows) | "
        f"{profile.canview_probes} canview probes | "
        f"{len(profile.misestimates)} misestimates | "
        f"elapsed {profile.elapsed:.3f}"
    )
    return "\n".join(lines)


#: Version of the ``BENCH_*.json`` layout; bump when sections change
#: shape incompatibly.  Consumers select on it instead of sniffing keys.
BENCH_SCHEMA_VERSION = 1

#: Producer stamp written into every bench file.
BENCH_GENERATED_BY = "repro-benchmarks"


#: The always-present keys of a bench file's ``"plan_cache"`` section
#: (mirrors :data:`repro.core.plancache.PLAN_CACHE_KEYS`).
_PLAN_CACHE_KEYS = (
    "hits",
    "misses",
    "revalidations",
    "revalidation_failures",
    "evictions",
    "coalesced",
    "entries",
)

#: The always-present keys of a bench file's ``"latency"`` section.
#: Serving benches (ABL14 onward) report tail latency through one
#: shared shape so dashboards can diff files without sniffing keys.
_LATENCY_KEYS = ("p50", "p95", "p99")

#: The always-present keys of a bench file's ``"batch_sweep"`` section:
#: one column per canonical batch size the vectorized benches sweep
#: (ABL15 onward).  Values are probes/sec at that batch size,
#: zero-filled when a size was not measured.
_BATCH_SWEEP_KEYS = ("1", "64", "4096")

#: The always-present keys of a bench file's ``"profile"`` section
#: (mirrors :meth:`repro.profiling.QueryProfile.summary_dict`).  Count
#: keys are integers, byte/elapsed keys floats; ABL17 and future
#: profiled benches share this one shape.
_PROFILE_INT_KEYS = ("operators", "transfers", "canview_probes", "misestimates")
_PROFILE_FLOAT_KEYS = ("estimated_bytes", "actual_bytes", "elapsed")


def latency_percentiles(samples):
    """``{p50, p95, p99}`` of a latency sample list, zero-filled when
    empty — the exact shape ``write_bench_json(latency=...)`` accepts.

    Percentiles use the true nearest-rank method on the sorted samples
    (rank ``⌈q·N⌉``, 1-based), so tiny sample sets stay deterministic —
    no interpolation, a single sample reports itself at every
    percentile, and the p50 of an odd-length series is its median.  The
    earlier ``round()``-based rank suffered banker's rounding: p50 of
    five samples picked the *second* element instead of the third.
    """
    import math

    ordered = sorted(samples)
    if not ordered:
        return {key: 0.0 for key in _LATENCY_KEYS}

    def rank(q):
        index = min(len(ordered), max(1, math.ceil(q * len(ordered)))) - 1
        return float(ordered[index])

    return {"p50": rank(0.50), "p95": rank(0.95), "p99": rank(0.99)}


def write_bench_json(
    name,
    payload,
    directory=None,
    metrics=None,
    plan_cache=None,
    latency=None,
    batch_sweep=None,
    profile=None,
):
    """Merge one benchmark's results into ``BENCH_<NAME>.json``.

    Each bench test contributes a section keyed by its own name, so a
    module whose tests run in any order (or one at a time under ``-k``)
    still produces a complete, stable file.  The output is deterministic:
    keys sorted, no timestamps, floats as produced by the seeded runs.
    Every file carries a ``"schema"`` version and a ``"generated_by"``
    stamp; older files are upgraded in place on the next merge.

    Args:
        name: bench identifier, e.g. ``"ABL11"`` — the file becomes
            ``BENCH_ABL11.json``.
        payload: dict of sections to merge in (section name -> results).
        directory: where to write; defaults to the current working
            directory (the repo root under the pytest harness).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            whose snapshot is merged in as a ``"metrics"`` section.
        plan_cache: optional plan-cache counters — a
            :class:`~repro.core.plancache.PlanCache`, a snapshot dict,
            or ``None`` — merged in as a ``"plan_cache"`` section whose
            keys (hits/misses/revalidations/revalidation_failures/
            evictions/coalesced/entries) are always all present,
            zero-filled when absent from the input.
        latency: optional latency percentiles — a dict with any of
            ``p50``/``p95``/``p99`` (e.g. from
            :func:`latency_percentiles`) — merged in as a ``"latency"``
            section whose three keys are always all present, zero-filled
            when absent from the input.  ABL14 and future serving
            benches share this one shape.
        batch_sweep: optional batch-size sweep — a dict mapping batch
            size (int or str) to probes/sec — merged in as a
            ``"batch_sweep"`` section whose canonical columns
            (``"1"``/``"64"``/``"4096"``) are always all present,
            zero-filled when absent from the input.  ABL15 and future
            vectorized benches share this one shape.
        profile: optional query-profile summary — a
            :class:`~repro.profiling.QueryProfile`, its
            ``summary_dict()``, or ``None`` — merged in as a
            ``"profile"`` section whose keys (operators/transfers/
            canview_probes/misestimates as ints, estimated_bytes/
            actual_bytes/elapsed as floats) are always all present,
            zero-filled when absent from the input.  ABL17 and future
            profiled benches share this one shape.

    Returns:
        The path written.
    """
    import json
    import os

    path = os.path.join(directory or os.getcwd(), f"BENCH_{name}.json")
    data = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
        if not isinstance(data, dict):
            data = {}
    data.update(payload)
    if metrics is not None:
        data["metrics"] = metrics.snapshot()
    if plan_cache is not None:
        snapshot = (
            plan_cache.snapshot() if hasattr(plan_cache, "snapshot") else dict(plan_cache)
        )
        data["plan_cache"] = {
            key: int(snapshot.get(key, 0)) for key in _PLAN_CACHE_KEYS
        }
    if latency is not None:
        data["latency"] = {
            key: float(latency.get(key, 0.0)) for key in _LATENCY_KEYS
        }
    if batch_sweep is not None:
        normalized = {str(key): value for key, value in batch_sweep.items()}
        data["batch_sweep"] = {
            key: float(normalized.get(key, 0.0)) for key in _BATCH_SWEEP_KEYS
        }
    if profile is not None:
        summary = (
            profile.summary_dict()
            if hasattr(profile, "summary_dict")
            else dict(profile)
        )
        section = {key: int(summary.get(key, 0)) for key in _PROFILE_INT_KEYS}
        section.update(
            {key: float(summary.get(key, 0.0)) for key in _PROFILE_FLOAT_KEYS}
        )
        data["profile"] = section
    data["schema"] = BENCH_SCHEMA_VERSION
    data["generated_by"] = BENCH_GENERATED_BY
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
