"""What-if analysis: the smallest grants that unlock an infeasible query.

When the planner reports ``InfeasiblePlanError``, the policy author's
next question is *what would I have to authorize to make this run?* —
and they want the least disclosive answer.  This module computes it:

* :func:`missing_grants_for_join` — for one join (operand profiles +
  holders), every Figure 5 mode with the exact rules it lacks;
* :func:`suggest_repair` — a greedy bottom-up pass over a whole plan
  choosing, per join, the mode that needs the least *additional*
  exposure (new (server, attribute) pairs granted), and returning the
  rule set that provably makes the plan feasible.

The suggested rules are exactly-covering authorizations
``[profile.exposed, profile.join_path] -> receiver`` for each missing
flow — never broader than the strategy needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra.tree import JoinNode, LeafNode, PlanNode, QueryTreePlan, UnaryNode
from repro.core.access import can_view
from repro.core.authorization import Authorization, Policy
from repro.core.flows import JoinExecution, join_executions
from repro.core.profile import RelationProfile
from repro.exceptions import PlanError


class ModeRepair:
    """One execution mode of one join, with the rules it lacks.

    Attributes:
        node_id: the join node.
        mode_tag: the Figure 5 mode.
        master: result holder if this mode is chosen.
        missing: exactly-covering rules required, in flow order (empty
            when the mode is already safe).
        exposure_cost: new (receiver, attribute) pairs the rules grant.
    """

    __slots__ = ("node_id", "mode_tag", "master", "missing", "exposure_cost")

    def __init__(
        self,
        node_id: int,
        mode_tag: str,
        master: str,
        missing: Tuple[Authorization, ...],
        exposure_cost: int,
    ) -> None:
        self.node_id = node_id
        self.mode_tag = mode_tag
        self.master = master
        self.missing = missing
        self.exposure_cost = exposure_cost

    @property
    def is_safe(self) -> bool:
        """Whether the mode needs no new grants."""
        return not self.missing

    def __repr__(self) -> str:
        return (
            f"ModeRepair(n{self.node_id} {self.mode_tag}: "
            f"{len(self.missing)} missing, cost {self.exposure_cost})"
        )


class RepairPlan:
    """A complete repair: per-join mode choices and the combined grants.

    Attributes:
        choices: one :class:`ModeRepair` per join, post-order.
        grants: deduplicated rules to add, in first-needed order.
    """

    __slots__ = ("choices", "grants")

    def __init__(self, choices: List[ModeRepair], grants: List[Authorization]) -> None:
        self.choices = choices
        self.grants = grants

    @property
    def is_already_feasible(self) -> bool:
        """Whether no grants are needed at all."""
        return not self.grants

    def augmented_policy(self, policy: Policy) -> Policy:
        """A copy of ``policy`` with the suggested grants added."""
        augmented = policy.copy()
        augmented.extend_ignoring_duplicates(self.grants)
        return augmented

    def describe(self) -> str:
        """Human-readable repair summary."""
        lines = []
        for choice in self.choices:
            status = "ok" if choice.is_safe else f"+{len(choice.missing)} grants"
            lines.append(
                f"join n{choice.node_id}: {choice.mode_tag} at {choice.master} ({status})"
            )
        if self.grants:
            lines.append("grants to add:")
            for rule in self.grants:
                lines.append(f"  {rule}")
        else:
            lines.append("no grants needed")
        return "\n".join(lines)


def missing_grants_for_execution(
    policy, execution: JoinExecution, node_id: int
) -> ModeRepair:
    """The rules one mode lacks under ``policy``."""
    missing: List[Authorization] = []
    cost = 0
    for receiver, profile in execution.required_views():
        if can_view(policy, profile, receiver):
            continue
        missing.append(
            Authorization(profile.exposed_attributes, profile.join_path, receiver)
        )
        cost += len(profile.exposed_attributes)
    return ModeRepair(
        node_id, execution.mode.tag, execution.master, tuple(missing), cost
    )


def missing_grants_for_join(
    policy,
    left_profile: RelationProfile,
    right_profile: RelationProfile,
    left_holder: str,
    right_holder: str,
    conditions,
    node_id: int = -1,
) -> List[ModeRepair]:
    """Every Figure 5 mode of one join with its missing rules, ordered
    cheapest (least new exposure) first; already-safe modes lead."""
    repairs = [
        missing_grants_for_execution(policy, execution, node_id)
        for execution in join_executions(
            left_profile, right_profile, left_holder, right_holder, conditions
        )
    ]
    repairs.sort(key=lambda r: (r.exposure_cost, r.mode_tag))
    return repairs


def suggest_repair(policy, plan: QueryTreePlan) -> RepairPlan:
    """Greedy bottom-up repair of a whole plan.

    Walks the plan in post-order; at each join, evaluates all four modes
    against the policy *plus the grants already suggested*, picks the
    cheapest, and commits its master as the result holder for the joins
    above.  The returned grants provably make the plan feasible (the
    greedy path becomes a safe assignment; tests assert the planner
    succeeds on the augmented policy).

    Raises:
        PlanError: on structurally broken plans (unplaced leaves).
    """
    working = policy.copy() if isinstance(policy, Policy) else None
    effective = working if working is not None else policy
    grants: List[Authorization] = []
    choices: List[ModeRepair] = []
    profiles: Dict[int, RelationProfile] = {}
    holders: Dict[int, str] = {}

    for node in plan:
        if isinstance(node, LeafNode):
            if node.server is None:
                raise PlanError(
                    f"relation {node.relation.name!r} has no storing server"
                )
            profiles[node.node_id] = RelationProfile.of_base_relation(node.relation)
            holders[node.node_id] = node.server
        elif isinstance(node, UnaryNode):
            child_profile = profiles[node.left.node_id]
            if node.operator == "project":
                profiles[node.node_id] = child_profile.project(
                    node.projection_attributes
                )
            else:
                profiles[node.node_id] = child_profile.select(
                    node.predicate.attributes
                )
            holders[node.node_id] = holders[node.left.node_id]
        elif isinstance(node, JoinNode):
            left_id, right_id = node.left.node_id, node.right.node_id
            profiles[node.node_id] = profiles[left_id].join(
                profiles[right_id], node.path
            )
            if holders[left_id] == holders[right_id]:
                # Local join: free and safe, nothing to repair.
                holders[node.node_id] = holders[left_id]
                continue
            repairs = missing_grants_for_join(
                effective,
                profiles[left_id],
                profiles[right_id],
                holders[left_id],
                holders[right_id],
                node.path,
                node_id=node.node_id,
            )
            chosen = repairs[0]
            choices.append(chosen)
            holders[node.node_id] = chosen.master
            for rule in chosen.missing:
                grants.append(rule)
                if working is not None and rule not in working:
                    working.add(rule)
    # Deduplicate grants preserving order (non-Policy backends get the
    # raw list; duplicates are harmless there).
    deduplicated: List[Authorization] = []
    for rule in grants:
        if rule not in deduplicated:
            deduplicated.append(rule)
    return RepairPlan(choices, deduplicated)
