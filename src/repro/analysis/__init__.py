"""Reporting, exposure and what-if analysis helpers."""

from repro.analysis.reporting import (
    ascii_table,
    render_policy_table,
    render_trace_table,
)
from repro.analysis.exposure import (
    ExposureReport,
    ServerExposure,
    compare_exposure,
    exposure_of_assignment,
)
from repro.analysis.whatif import (
    ModeRepair,
    RepairPlan,
    missing_grants_for_join,
    suggest_repair,
)
from repro.analysis.compliance import PolicyUsageReport, RuleUsage, usage_report
from repro.analysis.explain import (
    JoinExplanation,
    ViewCheck,
    explain_planning,
    render_explanation,
)
from repro.analysis.revocation import (
    RuleImpact,
    revocation_impact,
    safe_revocations,
)

__all__ = [
    "ascii_table",
    "render_trace_table",
    "render_policy_table",
    "ExposureReport",
    "ServerExposure",
    "exposure_of_assignment",
    "compare_exposure",
    "ModeRepair",
    "RepairPlan",
    "missing_grants_for_join",
    "suggest_repair",
    "PolicyUsageReport",
    "RuleUsage",
    "usage_report",
    "JoinExplanation",
    "ViewCheck",
    "explain_planning",
    "render_explanation",
    "RuleImpact",
    "revocation_impact",
    "safe_revocations",
]
