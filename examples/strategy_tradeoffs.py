"""Strategy trade-offs: exposure, bytes, and latency are different axes.

For one query this example enumerates *every* safe strategy and scores
each three ways:

* **exposure** — which servers learn which foreign attributes
  (`repro.analysis.exposure`);
* **bytes** — measured communication volume of a tuple-level run;
* **latency** — simulated makespan on a high-latency network
  (`repro.engine.timeline`).

The rankings disagree — the byte-cheapest strategy serializes two
semi-join legs that a latency-bound deployment cannot afford — and the
cost-aware planner (`repro.core.costplanner`) is shown picking the
right strategy for each network.

Run:  python examples/strategy_tradeoffs.py
"""

from repro.analysis.exposure import exposure_of_assignment
from repro.analysis.reporting import ascii_table
from repro.baselines.exhaustive import enumerate_safe_assignments
from repro.core.costplanner import EXHAUSTIVE, CostAwareSafePlanner
from repro.distributed.network import NetworkModel
from repro.engine.coster import CostModel, TableStats
from repro.engine.data import Table
from repro.engine.executor import DistributedExecutor
from repro.engine.timeline import simulate_timeline
from repro.sql import parse_query
from repro.algebra.builder import build_plan
from repro.core.closure import close_policy
from repro.workloads import generate_instances, medical_catalog, medical_policy

# Under Figure 3 this query admits exactly two safe strategies: a
# regular join at S_N (rule 10 lets it absorb the projected Hospital
# data) and a semi-join mastered by S_H (rule 6 covers the returned
# view, rule 10 covers the probe) — a genuine trade-off.
QUERY = (
    "SELECT Citizen, HealthAid, Patient, Disease "
    "FROM Hospital JOIN Nat_registry ON Patient = Citizen"
)


def main() -> None:
    catalog = medical_catalog()
    policy = close_policy(medical_policy(), catalog)
    instances = generate_instances(seed=13, citizens=250)
    tables = {
        name: Table.from_rows(catalog.relation(name).attributes, rows)
        for name, rows in instances.items()
    }
    plan = build_plan(catalog, parse_query(QUERY, catalog))
    # An asymmetric network: the hospital's uplink toward the registry
    # is congested (say, a saturated site-to-site VPN), while the
    # registry's downlink back is fast.  The regular join must push all
    # its data through the congested link; the semi-join pushes only the
    # small probe through it and receives the bulk over the fast link.
    slow_network = NetworkModel(default_latency=10.0, default_bandwidth=100.0)
    slow_network.set_link("S_H", "S_N", latency=10.0, bandwidth=0.05)

    print("=== Every safe strategy, scored three ways ===")
    rows = []
    strategies = []
    for assignment in enumerate_safe_assignments(policy, plan):
        result = DistributedExecutor(assignment, tables).run()
        join = plan.joins()[0]
        executor = str(assignment.executor(join.node_id))
        exposure = exposure_of_assignment(assignment, catalog)
        makespan = simulate_timeline(
            assignment, result.transfers, slow_network
        ).makespan
        rows.append(
            [
                executor,
                exposure.total_exposure_score(),
                result.transfers.total_bytes(),
                f"{makespan:.0f}",
            ]
        )
        strategies.append((executor, result.transfers.total_bytes(), makespan))
    print(
        ascii_table(
            ["join executor", "exposure score", "bytes", "makespan (congested net)"],
            rows,
        )
    )
    cheapest_bytes = min(strategies, key=lambda s: s[1])
    fastest = min(strategies, key=lambda s: s[2])
    print(f"\nbyte-cheapest strategy  : {cheapest_bytes[0]}")
    print(f"latency-fastest strategy: {fastest[0]}")
    if cheapest_bytes[0] != fastest[0]:
        print("-> the two objectives pick different strategies")

    print("\n=== The cost-aware planner adapts to the network ===")
    stats = {name: TableStats.of_table(table) for name, table in tables.items()}
    spec = parse_query(QUERY, catalog)
    for label, model in (
        ("uniform network (cost = bytes)", None),
        ("congested S_H -> S_N uplink", CostModel(slow_network)),
    ):
        planner = CostAwareSafePlanner(
            policy, stats, cost_model=model, assignment_search=EXHAUSTIVE
        )
        outcome = planner.plan(catalog, spec)
        join = outcome.plan.joins()[0]
        print(
            f"{label}: join runs as "
            f"{outcome.assignment.executor(join.node_id)} "
            f"(estimated cost {outcome.estimated_cost:.0f})"
        )


if __name__ == "__main__":
    main()
