"""A trade coalition: selective sharing, confinement, and policy hygiene.

The paper's introduction motivates the model with dynamic coalitions of
independent parties.  This example runs one — a port authority, customs
agency, shipping line and freight insurer — through a day of analytics:

1. feasible cross-party queries execute with full audit;
2. sensitive results (premiums, duties) compute fine but are *confined*
   to their owning party — delivery elsewhere fails verification;
3. a genuinely blocked query (berth-to-client linkage) is diagnosed
   with the what-if tool, which names the exact minimal grant;
4. a compliance report over the day's executions shows which
   authorizations actually carried data and which are dead weight.

Run:  python examples/coalition_compliance.py
"""

from repro.analysis.compliance import usage_report
from repro.analysis.exposure import exposure_of_assignment
from repro.analysis.whatif import suggest_repair
from repro.algebra.builder import build_plan
from repro.core.safety import verify_assignment
from repro.distributed.system import DistributedSystem
from repro.exceptions import InfeasiblePlanError, UnsafeAssignmentError
from repro.workloads.coalition import (
    berth_client_query,
    cargo_risk_query,
    coalition_catalog,
    coalition_policy,
    duty_query,
    exposure_query,
    generate_coalition_instances,
    inspection_query,
    premium_query,
)


def main() -> None:
    system = DistributedSystem(coalition_catalog(), coalition_policy())
    system.load_instances(generate_coalition_instances(seed=23))
    print("=== The coalition ===")
    print(system.describe())

    # --- 1. the day's feasible analytics -------------------------------
    executed = []
    print("\n=== Cross-party analytics ===")
    for label, spec in (
        ("port inspection scheduling", inspection_query()),
        ("insurer volume exposure", exposure_query()),
        ("insurer cargo-class risk", cargo_risk_query()),
    ):
        result = system.execute(spec)
        executed.append(result)
        print(
            f"{label}: {len(result.table)} rows at {result.result_server}, "
            f"{len(result.transfers)} transfers, {result.audit.summary()}"
        )

    # --- 2. confinement -------------------------------------------------
    print("\n=== Confined results ===")
    for label, spec, nosy_party in (
        ("premium analytics", premium_query(), "S_carrier"),
        ("duty analytics", duty_query(), "S_carrier"),
    ):
        tree, assignment, _ = system.plan(spec)
        result = system.execute(spec)
        executed.append(result)
        print(f"{label}: computes at {assignment.result_server()}")
        try:
            verify_assignment(system.policy, assignment, recipient=nosy_party)
        except UnsafeAssignmentError:
            print(f"  delivering the result to {nosy_party}: DENIED")

    # --- 3. the blocked query, diagnosed --------------------------------
    print("\n=== A blocked query, diagnosed ===")
    try:
        system.plan(berth_client_query())
    except InfeasiblePlanError as error:
        print(f"berth-to-client linkage: {error}")
    plan = build_plan(system.catalog, berth_client_query())
    repair = suggest_repair(system.policy, plan)
    print("what-if says the cheapest unlock is:")
    print(repair.describe())

    # --- 4. what the insurer actually learned ---------------------------
    print("\n=== Insurer exposure across the cargo-risk query ===")
    _, assignment, _ = system.plan(cargo_risk_query())
    report = exposure_of_assignment(assignment, system.catalog)
    print(report.describe())
    foreign = report.foreign_attributes_of("S_insurer")
    assert "Duty" not in foreign and "Decl_id" not in foreign
    print("(Duty and Decl_id never reached the insurer)")

    # --- 5. policy hygiene ----------------------------------------------
    print("\n=== Compliance: rule usage over the day ===")
    print(usage_report(system.policy, executed).describe())

    # --- 6. revocation review: what can be withdrawn safely? ------------
    from repro.analysis.revocation import safe_revocations
    from repro.workloads.coalition import coalition_authorization

    print("\n=== Revocation review over the day's queries ===")
    workload_plans = [
        build_plan(system.catalog, spec)
        for spec in (
            inspection_query(),
            exposure_query(),
            cargo_risk_query(),
            premium_query(),
            duty_query(),
        )
    ]
    explicit = coalition_policy()
    free = safe_revocations(explicit, workload_plans)
    print(f"{len(free)}/{len(explicit)} explicit rules could be revoked "
          "without affecting any of today's queries:")
    for rule in free:
        print(f"  {rule}")
    print(
        "(note: each party's grant on its *own* relation always shows as "
        "revocable — the model makes self-access implicit, so such rules "
        "only matter as chase inputs)"
    )
    # Sanity: rule 4 (customs' view of Arrivals) is load-bearing — the
    # inspection query replans differently without it.
    assert coalition_authorization(4) not in free


if __name__ == "__main__":
    main()
