"""Fault injection, retries and authorization-safe failover, end to end.

A seeded fault matrix over two planning strategies:

* the Figure 6 safe planner on the medical workload, where retries
  absorb lossy links;
* the third-party planner on a two-coordinator federation, where a
  crashed coordinator forces a failover re-plan onto the alternate —
  re-verified and re-audited, never relaxed.

Each cell runs 3 seeds x a fault scenario and asserts the invariants
the robustness subsystem guarantees: completed runs return the exact
fault-free result with a clean audit, the same seed reproduces the
same schedule, and when nothing safe survives the query degrades
loudly instead of running unsafely.

Run:  python examples/fault_tolerance.py
"""

from repro import (
    DegradedExecutionError,
    DistributedSystem,
    FaultInjector,
    Policy,
    RetryPolicy,
)
from repro.testing import grant, quick_catalog
from repro.workloads import generate_instances, medical_catalog, medical_policy

SEEDS = (1, 2, 3)
RETRY = RetryPolicy(max_attempts=4, base_delay=0.5)

MEDICAL_SQL = (
    "SELECT Patient, Physician, Plan, HealthAid "
    "FROM Insurance JOIN Nat_registry ON Holder = Citizen "
    "JOIN Hospital ON Citizen = Patient"
)
COALITION_SQL = "SELECT a, b, c, d FROM R JOIN T ON a = c"


def medical_system() -> DistributedSystem:
    system = DistributedSystem(medical_catalog(), medical_policy())
    system.load_instances(generate_instances(seed=7))
    return system


def coordinator_system() -> DistributedSystem:
    """Mutually-distrusting owners; joins must run at TP1 or TP2."""
    catalog = quick_catalog("R(a, b) @ S1", "T(c, d) @ S2", edges=["a = c"])
    rules = []
    for party in ("TP1", "TP2"):
        rules += [
            grant(party, "a b"),
            grant(party, "c d"),
            grant(party, "a b c d", "a = c"),
        ]
    system = DistributedSystem(
        catalog, Policy(rules), apply_closure=True, third_parties=["TP1", "TP2"]
    )
    system.load_instances(
        {
            "R": [{"a": i % 5, "b": i} for i in range(30)],
            "T": [{"c": i % 5, "d": i * 2} for i in range(30)],
        }
    )
    return system


def lossy_links(system: DistributedSystem, sql: str, label: str) -> None:
    """Strategy x seeds: drops absorbed by retry/backoff."""
    baseline = system.execute(sql)
    print(f"[{label}] fault-free: {baseline.summary()}")
    for seed in SEEDS:
        faults = FaultInjector(seed=seed, drop_probability=0.3)
        result = system.execute(sql, faults=faults, retry=RETRY)
        assert result.table == baseline.table, "retries changed the result"
        assert result.audit is not None and result.audit.all_authorized()
        replay = FaultInjector(seed=seed, drop_probability=0.3)
        again = system.execute(sql, faults=replay, retry=RETRY)
        assert again.transfers.total_retries() == result.transfers.total_retries()
        assert replay.clock == faults.clock, "same seed must replay identically"
        print(f"[{label}] seed {seed}, 30% drops: {result.summary()}")


def crashed_coordinator(system: DistributedSystem) -> None:
    """Strategy x seeds: failover re-plans around a dead coordinator."""
    baseline = system.execute(COALITION_SQL)
    primary = baseline.result_server
    print(f"[coordinator] fault-free at {primary}: {baseline.summary()}")
    for seed in SEEDS:
        faults = FaultInjector(seed=seed)
        faults.crash(primary)
        result = system.execute(COALITION_SQL, faults=faults, retry=RETRY)
        assert result.failovers == 1 and result.result_server != primary
        assert result.table == baseline.table
        assert result.audit is not None and result.audit.all_authorized()
        print(
            f"[coordinator] seed {seed}, {primary} down: rescued at "
            f"{result.result_server} — {result.summary()}"
        )
    # Both coordinators gone: availability degrades, confidentiality holds.
    faults = FaultInjector(seed=SEEDS[0])
    faults.crash("TP1")
    faults.crash("TP2")
    try:
        system.execute(COALITION_SQL, faults=faults, retry=RETRY)
    except DegradedExecutionError as error:
        print(f"[coordinator] both down: degraded as required ({error})")
    else:
        raise AssertionError("expected DegradedExecutionError")


def main() -> None:
    lossy_links(medical_system(), MEDICAL_SQL, "medical")
    crashed_coordinator(coordinator_system())
    print("fault matrix complete: 3 seeds x 2 strategies, all invariants held")


if __name__ == "__main__":
    main()
