"""The paper, end to end: every worked example on one page.

Walks through the ICDCS 2008 paper's running scenario:

* Figure 3 — the authorization table, rendered;
* Section 3.1 — what each kind of rule (plain, connectivity-constrained,
  instance-restricted) does and does not allow;
* Section 3.2 — the Disease_list counterexample and its chase rescue;
* Figure 7 — the planning trace of Example 5.1, rendered in the paper's
  layout;
* the executed strategy's transfers, with the covering rule per release.

Run:  python examples/medical_collaboration.py
"""

from repro import DistributedSystem, can_view
from repro.algebra.joins import JoinPath
from repro.analysis.reporting import render_policy_table, render_trace_table
from repro.core.access import explain_denial
from repro.core.authorization import Authorization
from repro.core.closure import close_policy
from repro.core.profile import RelationProfile
from repro.workloads import generate_instances, medical_catalog, medical_policy

PAPER_LABELS = {6: "n_0", 5: "n_1", 2: "n_2", 4: "n_3", 0: "n_4", 1: "n_5", 3: "n_6"}

QUERY = (
    "SELECT Patient, Physician, Plan, HealthAid "
    "FROM Insurance JOIN Nat_registry ON Holder = Citizen "
    "JOIN Hospital ON Citizen = Patient"
)


def show_policy() -> None:
    print("=== Figure 3: the authorization table ===")
    print(render_policy_table(medical_policy()))


def show_rule_semantics() -> None:
    policy = medical_policy()
    print("\n=== Section 3.1: rule semantics ===")

    treatment_view = RelationProfile(
        {"Holder", "Plan", "Treatment"},
        JoinPath.of(("Holder", "Patient"), ("Disease", "Illness")),
    )
    print(
        "rule 3 (connectivity constraint): S_I may learn its holders' "
        f"treatments without the illness -> {can_view(policy, treatment_view, 'S_I')}"
    )
    with_disease = RelationProfile(
        {"Holder", "Plan", "Treatment", "Disease"},
        JoinPath.of(("Holder", "Patient"), ("Disease", "Illness")),
    )
    print(
        "  ...but adding Disease to the view is denied -> "
        f"{can_view(policy, with_disease, 'S_I')}"
    )

    plans_of_patients = RelationProfile(
        {"Holder", "Plan"}, JoinPath.of(("Patient", "Holder"))
    )
    print(
        "rule 5 (instance-based restriction): S_H may see plans of its "
        f"patients only -> {can_view(policy, plans_of_patients, 'S_H')}"
    )
    all_plans = RelationProfile({"Holder", "Plan"})
    print(
        "  ...the unrestricted Insurance relation is denied -> "
        f"{can_view(policy, all_plans, 'S_H')}"
    )


def show_disease_list_counterexample() -> None:
    policy = medical_policy()
    catalog = medical_catalog()
    print("\n=== Section 3.2: join paths leak associations ===")
    filtered = RelationProfile(
        {"Illness", "Treatment"}, JoinPath.of(("Illness", "Disease"))
    )
    print(
        "S_D asking for its own Disease_list filtered by Hospital "
        f"occurrences -> {can_view(policy, filtered, 'S_D')}"
    )
    print(explain_denial(policy, filtered, "S_D"))

    extended = policy.copy()
    extended.add(Authorization({"Patient", "Disease", "Physician"}, None, "S_D"))
    closed = close_policy(extended, catalog)
    print(
        "\nafter granting S_D the Hospital relation, the chase derives "
        f"the join view -> {can_view(closed, filtered, 'S_D')}"
    )


def show_planning_and_execution() -> None:
    system = DistributedSystem(medical_catalog(), medical_policy())
    system.load_instances(generate_instances(seed=7, citizens=120))
    tree, assignment, trace = system.plan(QUERY)
    print("\n=== Figure 7: the planning trace of Example 5.1 ===")
    print(render_trace_table(trace, PAPER_LABELS))

    result = system.execute(QUERY)
    print("\n=== Executed strategy: every release and its covering rule ===")
    for transfer in result.transfers:
        print(f"{transfer.sender} -> {transfer.receiver}: {transfer.profile}")
        print(f"   volume : {transfer.row_count} rows / {transfer.byte_size} B")
        print(f"   covered: {transfer.authorized_by}")
    print(f"\nresult: {len(result.table)} rows at {result.result_server}")


def main() -> None:
    show_policy()
    show_rule_semantics()
    show_disease_list_counterexample()
    show_planning_and_execution()


if __name__ == "__main__":
    main()
