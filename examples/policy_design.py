"""Policy engineering: finding the minimal grants that unlock a query.

A policy author wants a collaborative query to run, but wants to grant
as little as possible.  This example shows the debugging loop the
library supports:

1. try to plan — the planner reports the exact node with no candidate;
2. inspect the views that failed with ``explain_denial``;
3. add the narrowest covering rule and repeat;
4. compare the resulting closed policy with the open-policy
   (denial-based) formulation of the same intent.

Run:  python examples/policy_design.py
"""

from repro import (
    Authorization,
    DistributedSystem,
    InfeasiblePlanError,
    Policy,
)
from repro.algebra.joins import JoinPath
from repro.algebra.schema import Catalog, RelationSchema
from repro.core.access import explain_denial
from repro.core.openpolicy import Denial, OpenPolicy
from repro.core.planner import SafePlanner
from repro.core.profile import RelationProfile
from repro.core.safety import verify_assignment
from repro.workloads import medical_catalog

QUERY = (
    "SELECT Physician, HealthAid FROM Hospital "
    "JOIN Nat_registry ON Patient = Citizen"
)


def iterate_policy() -> Policy:
    catalog = medical_catalog()
    path = JoinPath.of(("Patient", "Citizen"))
    policy = Policy()
    attempt = 0
    print("=== Iterating toward the minimal policy ===")
    while True:
        attempt += 1
        system = DistributedSystem(catalog, policy, apply_closure=False)
        try:
            tree, assignment, _ = system.plan(QUERY)
            print(f"\nattempt {attempt}: feasible!")
            print(assignment.describe())
            return policy
        except InfeasiblePlanError as error:
            print(f"\nattempt {attempt}: {error}")
        if attempt == 1:
            # The probe view a semi-join slave would need.
            probe = RelationProfile({"Patient"})
            print(explain_denial(policy, probe, "S_N"))
            print("-> grant S_N the probe view (Patient values only)")
            policy.add(Authorization({"Patient"}, None, "S_N"))
        elif attempt == 2:
            # The master's return view: the join of Hospital's
            # projection with Nat_registry.
            master_view = RelationProfile(
                {"Patient", "Physician", "Citizen", "HealthAid"},
                JoinPath.of(("Patient", "Citizen")),
            )
            print(explain_denial(policy, master_view, "S_H"))
            print("-> grant S_H the semi-join master view")
            policy.add(
                Authorization(
                    {"Patient", "Physician", "Citizen", "HealthAid"},
                    JoinPath.of(("Patient", "Citizen")),
                    "S_H",
                )
            )
        else:
            raise SystemExit("unexpected: more grants needed")


def compare_with_open_policy(closed: Policy) -> None:
    print("\n=== The same intent as an open policy ===")
    catalog = medical_catalog()
    # Default-allow, with denials protecting exactly what the closed
    # policy withheld: raw Disease data and Insurance data for everyone.
    open_policy = OpenPolicy(
        [
            Denial({"Disease"}, None, "S_N"),
            Denial({"Disease"}, None, "S_I"),
            Denial({"Holder", "Plan"}, None, "S_H"),
        ]
    )
    from repro.algebra.builder import build_plan
    from repro.sql import parse_query

    plan = build_plan(catalog, parse_query(QUERY, catalog))
    planner = SafePlanner(open_policy)
    assignment, _ = planner.plan(plan)
    verify_assignment(open_policy, assignment)
    print("open-policy plan:")
    print(assignment.describe())
    print(
        "\nNote the trade-off: the closed policy names exactly what may "
        "flow; the open policy permits everything not named — the same "
        "query runs, but so would many others."
    )


def main() -> None:
    policy = iterate_policy()
    print("\nfinal closed policy:")
    print(policy.describe())
    compare_with_open_policy(policy)


if __name__ == "__main__":
    main()
