"""Third-party coordination: a federated audit hub (footnote 3).

Two competing organizations — an insurer and a hospital chain — must
answer a joint regulatory query, but neither trusts the other with its
relation.  A regulator-operated audit server ``S_audit`` is trusted with
both.  The base algorithm correctly refuses every direct strategy; the
third-party planner routes both operands to the hub, which computes the
join (and is the only party ever seeing the association).

Also demonstrates the *proxy* analysis: arrangements where the hub
stands in for one operand instead of coordinating both.

Run:  python examples/federated_audit_hub.py
"""

from repro import (
    Authorization,
    DistributedSystem,
    InfeasiblePlanError,
    Policy,
)
from repro.algebra.joins import JoinPath
from repro.algebra.schema import Catalog, RelationSchema
from repro.core.profile import RelationProfile
from repro.core.thirdparty import proxy_options

AUDIT_HUB = "S_audit"

QUERY = (
    "SELECT Plan, Procedure_code FROM Contracts "
    "JOIN Admissions ON Member = Admitted"
)


def build_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_relation(
        RelationSchema("Contracts", ["Member", "Plan"], server="S_insurer")
    )
    catalog.add_relation(
        RelationSchema(
            "Admissions", ["Admitted", "Procedure_code"], server="S_hospital"
        )
    )
    catalog.add_join_edge("Member", "Admitted")
    return catalog


def build_policy() -> Policy:
    # Mutually distrustful operators: no cross grants at all.  Only the
    # audit hub may receive each side's relation.
    return Policy(
        [
            Authorization({"Member", "Plan"}, None, AUDIT_HUB),
            Authorization({"Admitted", "Procedure_code"}, None, AUDIT_HUB),
        ]
    )


def main() -> None:
    catalog = build_catalog()
    policy = build_policy()

    print("=== Without the hub: the query is infeasible ===")
    closed_system = DistributedSystem(catalog, policy)
    try:
        closed_system.plan(QUERY)
    except InfeasiblePlanError as error:
        print(f"planner refuses: {error}")

    print("\n=== With the audit hub as third-party coordinator ===")
    system = DistributedSystem(catalog, policy, third_parties=[AUDIT_HUB])
    system.load_instances(
        {
            "Contracts": [
                {"Member": f"m{i}", "Plan": plan}
                for i, plan in enumerate(["gold", "silver", "gold", "bronze"] * 25)
            ],
            "Admissions": [
                {"Admitted": f"m{i * 3}", "Procedure_code": f"p{i % 7}"}
                for i in range(30)
            ],
        }
    )
    tree, assignment, _ = system.plan(QUERY)
    print(assignment.describe())
    join = tree.joins()[0]
    print(f"coordinator of the join: {assignment.coordinator(join.node_id)}")

    result = system.execute(QUERY)
    print(f"\nresult: {len(result.table)} rows, held by {result.result_server}")
    print(result.transfers.describe())
    print(result.audit.summary())

    print("\n=== Proxy analysis: what if the hub held only one side? ===")
    contracts = RelationProfile({"Member", "Plan"})
    admissions = RelationProfile({"Admitted", "Procedure_code"})
    path = JoinPath.of(("Member", "Admitted"))
    # Give the hospital the right to see the *joined* view (but still
    # not the raw Contracts relation): now a proxy arrangement works
    # with the hub merely relaying the insurer's side.
    richer = build_policy()
    richer.add(
        Authorization(
            {"Member", "Plan", "Admitted", "Procedure_code"}, path, "S_hospital"
        )
    )
    richer.add(Authorization({"Admitted"}, None, AUDIT_HUB))
    options = proxy_options(
        richer, contracts, admissions, "S_insurer", "S_hospital", path, [AUDIT_HUB]
    )
    if not options:
        print("no proxy arrangement is safe under this policy")
    for option in options:
        print(f"- {option}")
        for flow in option.flows:
            print(f"    {flow.sender} -> {flow.receiver}: {flow.profile}")


if __name__ == "__main__":
    main()
