"""Quickstart: plan and execute a query under release authorizations.

Builds the paper's medical distributed system (Figure 1 schema,
Figure 3 policy), loads synthetic instances, and runs the Example 2.2
query end-to-end: SQL -> minimized plan -> safe executor assignment ->
audited distributed execution.

Run:  python examples/quickstart.py
"""

from repro import DistributedSystem
from repro.workloads import generate_instances, medical_catalog, medical_policy

QUERY = (
    "SELECT Patient, Physician, Plan, HealthAid "
    "FROM Insurance JOIN Nat_registry ON Holder = Citizen "
    "JOIN Hospital ON Citizen = Patient"
)


def main() -> None:
    # 1. Assemble the system: schemas + placement + authorizations.
    system = DistributedSystem(medical_catalog(), medical_policy())
    print("=== Distributed system ===")
    print(system.describe())

    # 2. Load deterministic synthetic instances.
    system.load_instances(generate_instances(seed=7, citizens=120))

    # 3. Plan: which server executes each operator, and how joins run.
    tree, assignment, _ = system.plan(QUERY)
    print("\n=== Minimized query tree plan (Figure 2) ===")
    print(tree.render())
    print("\n=== Safe executor assignment ===")
    print(assignment.describe())

    # 4. Execute, auditing every transfer against the policy.
    result = system.execute(QUERY)
    print("\n=== Execution ===")
    print(f"result: {len(result.table)} rows, held by {result.result_server}")
    print(result.transfers.describe())
    print(result.audit.summary())

    # 5. Peek at the first few result rows.
    print("\n=== Sample rows ===")
    for row in result.table.row_dicts()[:5]:
        print(row)


if __name__ == "__main__":
    main()
